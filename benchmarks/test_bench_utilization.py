"""Benchmark: utilization, energy, and fairness study (paper §II-B2 remark).

Not a table or figure of the paper, but a quantification of its claim that a
yield-maximizing scheduler leaves idle nodes that can be powered down on an
under-subscribed cluster.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

pytestmark = pytest.mark.bench

from repro.experiments.utilization_study import run_utilization_study


@pytest.mark.benchmark(group="utilization")
def test_utilization_energy_study(benchmark, bench_config, report_artifact):
    config = replace(bench_config, num_traces=1)
    algorithms = ("fcfs", "easy", "greedy-pmtn", "dynmcb8-asap-per-600")

    result = benchmark.pedantic(
        lambda: run_utilization_study(
            config, load=0.3, penalty_seconds=300.0, algorithms=algorithms
        ),
        rounds=1,
        iterations=1,
    )
    report_artifact("utilization", result.format())

    for name in algorithms:
        profile = result.profile_for(name)
        assert 0.0 <= profile.mean_busy_nodes <= result.num_nodes
        assert 0.0 <= profile.energy.savings_fraction <= 1.0
    # At an offered load of 0.3 a sizeable fraction of node-hours is idle, so
    # idle power-down must yield non-trivial savings for every algorithm.
    assert all(p.energy.savings_fraction > 0.05 for p in result.profiles)
