"""Shared configuration for the benchmark harness.

Every benchmark regenerates one artifact of the paper's evaluation section
(Figure 1a, Figure 1b, Table I, Table II, and the §V timing study) at a
reduced scale and prints the corresponding rows/series so that the shape can
be compared against the paper.  The printed output is also appended to
``benchmarks/results/`` so it survives pytest's output capturing.

Scale knobs: set the environment variable ``REPRO_BENCH_SCALE`` to ``quick``
(smallest, CI-friendly), ``default`` (a few minutes, the default), or
``paper`` (the full campaign of the paper; CPU-days).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.cluster import Cluster
from repro.experiments.config import ExperimentConfig, paper_scale

RESULTS_DIR = Path(__file__).parent / "results"


def _bench_config() -> ExperimentConfig:
    scale = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    if scale == "paper":
        return paper_scale()
    if scale == "quick":
        return ExperimentConfig(
            cluster=Cluster(32, 4, 8.0),
            num_traces=1,
            num_jobs=50,
            load_levels=(0.3, 0.7),
            hpc2n_weeks=1,
            hpc2n_jobs_per_week=60,
        )
    return ExperimentConfig(
        cluster=Cluster(64, 4, 8.0),
        num_traces=2,
        num_jobs=100,
        load_levels=(0.1, 0.3, 0.5, 0.7, 0.9),
        hpc2n_weeks=1,
        hpc2n_jobs_per_week=400,
    )


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Experiment configuration shared by all benchmarks in the session."""
    return _bench_config()


@pytest.fixture(scope="session")
def report_artifact():
    """Print an artifact's text and persist it under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _report(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _report
