"""Benchmark: extension schedulers vs. the paper's best algorithm.

Not a paper artifact — this quantifies the follow-up mechanisms the paper's
conclusion sketches (long-job throttling, user priorities) plus the
conservative-backfilling baseline, using the same degradation-factor
methodology as Table I.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

pytestmark = pytest.mark.bench

from repro.experiments.extensions import EXTENSION_ALGORITHMS, run_extensions_comparison


@pytest.mark.benchmark(group="extensions")
def test_extensions_comparison(benchmark, bench_config, report_artifact):
    config = replace(
        bench_config,
        num_traces=min(bench_config.num_traces, 2),
        load_levels=(0.5, 0.7),
    )

    result = benchmark.pedantic(
        lambda: run_extensions_comparison(config, penalty_seconds=300.0),
        rounds=1,
        iterations=1,
    )
    report_artifact("extensions", result.format())

    # Every DFRS-based extension must stay far ahead of the batch baselines,
    # and the throttled/weighted variants must stay in the same league as the
    # paper's winner (they change CPU shares, not placements).
    stats = result.stats
    for name in EXTENSION_ALGORITHMS:
        assert name in stats
    winner = stats["dynmcb8-asap-per-600"].average
    assert stats["dynmcb8-asap-throttled-per-600"].average <= 10 * winner
    assert stats["dynmcb8-asap-weighted-per-600"].average <= 10 * winner
    assert stats["easy"].average >= winner
