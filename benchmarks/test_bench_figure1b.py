"""Benchmark E2: Figure 1(b) — degradation factor vs. load, 5-minute penalty.

Reproduces the right panel of Figure 1: the same sweep as Figure 1(a) but
with the pessimistic 5-minute rescheduling penalty charged for every
preemption/resume cycle and migration.  Expected shape (paper §V): DYNMCB8 is
no longer the best (it pays for its churn); the periodic variants win at
non-trivial loads; the greedy preemptive algorithms remain competitive at low
load; batch scheduling stays orders of magnitude behind.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench

from repro.experiments.figure1 import run_figure1


@pytest.mark.benchmark(group="figure1")
def test_figure1b_five_minute_penalty(benchmark, bench_config, report_artifact):
    result = benchmark.pedantic(
        lambda: run_figure1(bench_config, penalty_seconds=300.0),
        rounds=1,
        iterations=1,
    )
    report_artifact("figure1b_five_minute_penalty", result.format())

    series = result.series()
    loads = list(bench_config.load_levels)
    # DFRS with preemption still beats batch scheduling despite the penalty.
    for load in loads:
        batch_best = min(series["fcfs"][load], series["easy"][load])
        dfrs_best = min(
            series[name][load]
            for name in series
            if name not in ("fcfs", "easy", "greedy")
        )
        assert dfrs_best <= batch_best
    # The penalty costs the aggressive DYNMCB8 its Figure 1(a) lead: averaged
    # over the sweep it is no longer the best DFRS algorithm.
    def mean_over_loads(name):
        return sum(series[name][load] for load in loads) / len(loads)

    periodic_mean = min(
        mean_over_loads(name)
        for name in series
        if name.startswith("dynmcb8-") and "per" in name
    )
    assert periodic_mean <= mean_over_loads("dynmcb8") * 1.5
