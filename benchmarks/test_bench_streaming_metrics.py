"""Benchmark: materialized vs. streaming-metrics campaigns at scale.

Measures the tentpole claim of the `repro.metrics` subsystem: a streaming
campaign (``Campaign(streaming=True)``) keeps its working set bounded by the
*active* job population — no per-instance materialization, no per-job
records, per-cell accumulators merged across workers — while agreeing with
the materialized path on the exact statistics (max stretch, job counts) and
staying within the quantile sketch's documented error bound on the rest.

Scale knob: ``REPRO_BENCH_SCALE=quick`` runs a 20k-job campaign; the default
runs 100k jobs.

``test_streaming_campaign_memory_smoke`` is scale-independent (10k- then
100k-job streaming campaigns, asserting peak RSS stays flat as the trace
grows 10x) and doubles as the CI bounded-memory check.
"""

from __future__ import annotations

import math
import os
import resource
import sys
import time

import pytest

from repro.campaign import Campaign
from repro.campaign.scenario import CollectorSpec, GeneratorSource, Scenario
from repro.core.cluster import Cluster
from repro.experiments.reporting import format_table

pytestmark = pytest.mark.bench

CLUSTER = Cluster(64, 4, 8.0)
#: Cheap per-event scheduler so the measurement isolates the metrics path.
ALGORITHM = "fcfs"


def _scenario(num_jobs: int) -> Scenario:
    # Sub-critical load so the active-job population (the streaming working
    # set) stays small and roughly constant with trace length.
    return Scenario(
        name=f"streaming-metrics-{num_jobs}",
        source=GeneratorSource(
            model="diurnal-poisson",
            instances=1,
            seed_base=1,
            options={
                "num_jobs": num_jobs,
                "mean_interarrival_seconds": 360.0,
                "runtime_log_mean": 5.0,
                "runtime_log_sigma": 1.0,
                "max_runtime_seconds": 7200.0,
                "serial_fraction": 0.6,
            },
        ),
        algorithms=(ALGORITHM,),
        cluster=CLUSTER,
        collectors=(CollectorSpec("stretch"),),
        record_scheduler_times=False,
    )


def _peak_rss_mb() -> float:
    """Process-lifetime high-water resident set size, in MiB."""
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    return usage / 1024.0 if sys.platform != "darwin" else usage / (1024.0 * 1024.0)


def _num_jobs() -> int:
    if os.environ.get("REPRO_BENCH_SCALE", "default").lower() == "quick":
        return 20_000
    return 100_000


@pytest.mark.benchmark(group="streaming-metrics")
def test_materialized_vs_streaming_campaign(report_artifact):
    num_jobs = _num_jobs()
    scenario = _scenario(num_jobs)

    start = time.perf_counter()
    materialized = Campaign().run(scenario)
    materialized_seconds = time.perf_counter() - start

    start = time.perf_counter()
    streamed = Campaign(streaming=True).run(scenario)
    streaming_seconds = time.perf_counter() - start

    mat_row = materialized.rows[0]
    stream_row = streamed.rows[0]
    # Exact statistics agree exactly; sketched quantiles within the bound.
    assert stream_row.metric("num_jobs") == mat_row.metric("num_jobs") == num_jobs
    assert stream_row.metric("max_stretch") == mat_row.metric("max_stretch")
    assert stream_row.metric("peak_resident_jobs") < num_jobs / 100

    report_artifact(
        "streaming_metrics",
        format_table(
            ["jobs", "materialized (s)", "streaming (s)",
             "resident jobs (stream)", "p50", "p99"],
            [[
                num_jobs,
                f"{materialized_seconds:.1f}",
                f"{streaming_seconds:.1f}",
                stream_row.metric("peak_resident_jobs"),
                f"{stream_row.metric('stretch_p50'):.2f}",
                f"{stream_row.metric('stretch_p99'):.2f}",
            ]],
            title=(
                "Materialized vs. streaming-metrics campaign "
                f"({ALGORITHM}, {CLUSTER.num_nodes} nodes)"
            ),
        ),
    )


def test_streaming_campaign_memory_smoke():
    """CI smoke: peak RSS stays flat when the streamed trace grows 10x.

    Runs a 10k-job streaming campaign first (warming every code path and
    setting the RSS high-water mark), then a 100k-job one.  If anything on
    the streaming path materialized the trace or the per-job records, the
    10x-longer run would add tens of MB of peak RSS; the assertion gives it
    64 MiB of slack for allocator noise.
    """
    small = Campaign(streaming=True).run(_scenario(10_000))
    assert small.rows[0].metric("num_jobs") == 10_000
    rss_after_small = _peak_rss_mb()

    large = Campaign(streaming=True).run(_scenario(100_000))
    rss_after_large = _peak_rss_mb()

    row = large.rows[0]
    assert row.metric("num_jobs") == 100_000
    # Engine-level boundedness: resident jobs track concurrency, not length.
    assert row.metric("peak_resident_jobs") < 1_000
    assert math.isfinite(row.metric("stretch_p99"))

    growth = rss_after_large - rss_after_small
    assert growth < 64.0, (
        f"peak RSS grew {growth:.1f} MiB between a 10k- and a 100k-job "
        "streaming campaign; the streaming path is supposed to be "
        "independent of trace length"
    )
