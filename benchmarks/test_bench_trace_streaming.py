"""Benchmark: materialized vs. streaming trace intake at scale.

Measures the tentpole claim of the `repro.traces` subsystem: the streaming
path (`Simulator.run_stream` fed by a generator `JobSource`) produces
byte-identical results to materializing the whole trace first, while keeping
only O(active jobs) resident in the engine tables — the
``peak_resident_jobs`` counter — instead of O(total jobs).

Scale knob: ``REPRO_BENCH_SCALE=quick`` runs a 20k-job trace; the default
runs the 100k- and 1M-job sweep from the issue (the 1M-job pair takes a few
minutes — that is the point).

``test_streaming_memory_smoke`` is scale-independent (always a 100k-job
trace, streaming only, ~15 s) and doubles as the CI streaming-memory check.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.experiments.reporting import format_table
from repro.schedulers.registry import create_scheduler
from repro.traces import DiurnalPoissonTraceSource

pytestmark = pytest.mark.bench

CLUSTER = Cluster(64, 4, 8.0)
#: Cheap per-event scheduler so the measurement isolates trace intake.
ALGORITHM = "fcfs"
CONFIG = SimulationConfig(record_scheduler_times=False)


def _source(num_jobs: int) -> DiurnalPoissonTraceSource:
    # Sub-critical load so the active-job population (and therefore the
    # streaming working set) stays small and roughly constant with length.
    return DiurnalPoissonTraceSource(
        num_jobs=num_jobs,
        seed=1,
        mean_interarrival_seconds=360.0,
        runtime_log_mean=5.0,
        runtime_log_sigma=1.0,
        max_runtime_seconds=7200.0,
        serial_fraction=0.6,
    )


def _trace_sizes():
    if os.environ.get("REPRO_BENCH_SCALE", "default").lower() == "quick":
        return (20_000,)
    return (100_000, 1_000_000)


@pytest.mark.benchmark(group="trace-streaming")
def test_streaming_vs_materialized_intake(report_artifact):
    rows = []
    for num_jobs in _trace_sizes():
        source = _source(num_jobs)

        start = time.perf_counter()
        materialized_jobs = list(source.jobs(CLUSTER))
        materialize_seconds = time.perf_counter() - start
        materialized_sim = Simulator(CLUSTER, create_scheduler(ALGORITHM), CONFIG)
        start = time.perf_counter()
        materialized = materialized_sim.run(materialized_jobs)
        materialized_seconds = time.perf_counter() - start
        del materialized_jobs

        streaming_sim = Simulator(CLUSTER, create_scheduler(ALGORITHM), CONFIG)
        start = time.perf_counter()
        streamed = streaming_sim.run_stream(source.jobs(CLUSTER))
        streaming_seconds = time.perf_counter() - start

        # The whole point: identical observable results ...
        assert streamed.jobs == materialized.jobs
        assert streamed.makespan == materialized.makespan
        assert streamed.idle_node_seconds == materialized.idle_node_seconds
        # ... with O(active jobs) instead of O(total jobs) resident state.
        assert materialized_sim.peak_resident_jobs == num_jobs
        assert streaming_sim.peak_resident_jobs < num_jobs / 100

        rows.append(
            [
                num_jobs,
                f"{materialize_seconds + materialized_seconds:.1f}",
                f"{streaming_seconds:.1f}",
                materialized_sim.peak_resident_jobs,
                streaming_sim.peak_resident_jobs,
            ]
        )

    report_artifact(
        "trace_streaming",
        format_table(
            ["jobs", "materialized (s)", "streaming (s)",
             "resident jobs (mat.)", "resident jobs (stream)"],
            rows,
            title=(
                "Materialized vs. streaming trace intake "
                f"({ALGORITHM}, {CLUSTER.num_nodes} nodes)"
            ),
        ),
    )


def test_streaming_memory_smoke():
    """CI smoke: a 100k-job generated trace keeps O(active jobs) resident.

    Scale-independent on purpose — this is the acceptance check that the
    streaming path's working set is bounded by concurrency, not length.
    """
    num_jobs = 100_000
    simulator = Simulator(CLUSTER, create_scheduler(ALGORITHM), CONFIG)
    result = simulator.run_stream(_source(num_jobs).jobs(CLUSTER))
    assert len(result.jobs) == num_jobs
    assert simulator.peak_resident_jobs < 1_000, (
        f"streaming path kept {simulator.peak_resident_jobs} jobs resident; "
        "expected O(active jobs), orders of magnitude below the trace length"
    )
