"""Benchmark E4: Table II — preemption and migration costs under high load.

Reproduces Table II: for the algorithms that preempt and/or migrate, the
bandwidth consumed by preemptions/migrations (GB/s), the occurrence rates per
hour, and the occurrences per job, on the scaled synthetic traces with load
at least 0.7 and the 5-minute penalty.  Expected shape (paper §V): GREEDY-PMTN
never migrates, GREEDY-PMTN-MIGR preempts less but migrates a little, DYNMCB8
has by far the highest migration churn, the periodic variants stay moderate,
and DYNMCB8-STRETCH-PER trades fewer preemptions for more migrations than
DYNMCB8-PER.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench

from repro.experiments.table2 import TABLE2_ALGORITHMS, run_table2


@pytest.mark.benchmark(group="table2")
def test_table2_preemption_migration_costs(benchmark, bench_config, report_artifact):
    result = benchmark.pedantic(
        lambda: run_table2(bench_config, penalty_seconds=300.0),
        rounds=1,
        iterations=1,
    )
    report_artifact("table2_costs", result.format())

    metrics = result.metrics
    assert set(metrics) == set(TABLE2_ALGORITHMS)
    # GREEDY-PMTN never migrates (the 0.00 column of Table II).
    assert metrics["greedy-pmtn"]["migr_per_job"].maximum == pytest.approx(0.0)
    # DYNMCB8 migrates at least as much per job as the periodic variants.
    assert (
        metrics["dynmcb8"]["migr_per_job"].average
        >= metrics["dynmcb8-per-600"]["migr_per_job"].average * 0.5
    )
    # Everybody that preempts reports non-negative bandwidth numbers.
    for algorithm, values in metrics.items():
        for name, stats in values.items():
            assert stats.average >= 0.0
            assert stats.maximum >= stats.average - 1e-9
