"""Benchmark E6: engine event-loop scaling and parallel runner speedup.

Two claims are measured here:

1. **O(active jobs) event loop** — the refactored engine (active-job table,
   lazily invalidated completion-time heap, busy-node refcounts) against the
   seed's full-dictionary-scan loop (``legacy_event_loop=True``) on Lublin
   traces of increasing length.  The legacy loop touches every job ever
   submitted at every event, so its total work grows quadratically with the
   trace; the refactored loop only touches active jobs.  The acceptance bar
   is a >= 3x speedup on the largest trace.

2. **Parallel experiment runner** — the ``workers=N`` fan-out of the
   *instances x algorithms* grid must produce results identical to the
   serial loop while scaling across CPUs.

Scale knob: ``REPRO_BENCH_SCALE=quick`` shrinks the traces for CI-style
runs; the default exercises the full 1k/5k/10k-job sweep from the issue
(the 10k-job legacy run alone takes a few minutes — that is the point).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.core.penalties import ReschedulingPenaltyModel
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_instance, run_instances
from repro.schedulers.registry import create_scheduler
from repro.workloads.lublin import LublinWorkloadGenerator

pytestmark = pytest.mark.bench

#: Cheap per-event scheduler so the measurement isolates the engine loop.
ALGORITHM = "easy"
#: Required speedup of the O(active) loop on the largest trace.
MIN_SPEEDUP = 3.0


def _trace_sizes():
    if os.environ.get("REPRO_BENCH_SCALE", "default").lower() == "quick":
        return (500, 1000, 2000)
    return (1000, 5000, 10000)


def _simulate(workload, *, legacy):
    simulator = Simulator(
        workload.cluster,
        create_scheduler(ALGORITHM),
        SimulationConfig(
            penalty_model=ReschedulingPenaltyModel(300.0),
            legacy_event_loop=legacy,
            record_scheduler_times=False,
        ),
    )
    start = time.perf_counter()
    result = simulator.run(workload.jobs)
    return result, time.perf_counter() - start


@pytest.mark.benchmark(group="engine-scaling")
def test_engine_event_loop_scaling(report_artifact):
    cluster = Cluster(128, 4, 8.0)
    generator = LublinWorkloadGenerator(cluster)
    sizes = _trace_sizes()
    rows = []
    speedups = {}
    for num_jobs in sizes:
        workload = generator.generate(num_jobs, seed=2010, name=f"scaling-{num_jobs}")
        legacy_result, legacy_seconds = _simulate(workload, legacy=True)
        fast_result, fast_seconds = _simulate(workload, legacy=False)
        # The refactor must not change a single observable number.
        assert fast_result.makespan == legacy_result.makespan
        assert fast_result.idle_node_seconds == legacy_result.idle_node_seconds
        assert [
            (r.spec.job_id, r.completion_time) for r in fast_result.jobs
        ] == [(r.spec.job_id, r.completion_time) for r in legacy_result.jobs]
        speedups[num_jobs] = legacy_seconds / fast_seconds
        rows.append(
            [num_jobs, legacy_seconds, fast_seconds, speedups[num_jobs]]
        )
    report_artifact(
        "engine_scaling",
        format_table(
            ["jobs", "legacy loop (s)", "O(active) loop (s)", "speedup"],
            rows,
            title=(
                f"Engine event-loop scaling ({ALGORITHM}, 128 nodes, "
                "300-second penalty)"
            ),
            float_format="{:.2f}",
        ),
    )
    largest = sizes[-1]
    assert speedups[largest] >= MIN_SPEEDUP, (
        f"O(active) event loop is only {speedups[largest]:.1f}x faster than "
        f"the legacy full scan on the {largest}-job trace (need >= {MIN_SPEEDUP}x)"
    )
    # The gap must widen with trace length — that is what distinguishes an
    # O(active) loop from a constant-factor win.
    assert speedups[sizes[-1]] > speedups[sizes[0]]


@pytest.mark.benchmark(group="engine-scaling")
def test_parallel_runner_scaling(report_artifact):
    cluster = Cluster(64, 4, 8.0)
    generator = LublinWorkloadGenerator(cluster)
    quick = os.environ.get("REPRO_BENCH_SCALE", "default").lower() == "quick"
    num_instances = 4 if quick else 8
    num_jobs = 150 if quick else 300
    workloads = [
        generator.generate(num_jobs, seed=2010 + i, name=f"par-{i}")
        for i in range(num_instances)
    ]
    algorithms = ["fcfs", "easy"]
    cpus = os.cpu_count() or 1
    # Always exercise a real pool (even on one CPU the results-identical
    # check is meaningful); only expect a speedup when CPUs exist to scale
    # across.
    workers = max(2, min(cpus, num_instances))

    start = time.perf_counter()
    serial = [
        run_instance(w, algorithms, penalty_seconds=300.0) for w in workloads
    ]
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_instances(
        workloads, algorithms, penalty_seconds=300.0, workers=workers
    )
    parallel_seconds = time.perf_counter() - start

    for a, b in zip(serial, parallel):
        assert a.workload_name == b.workload_name
        assert a.max_stretches() == b.max_stretches()
        for name in algorithms:
            assert a.results[name].makespan == b.results[name].makespan

    speedup = serial_seconds / parallel_seconds
    report_artifact(
        "parallel_runner_scaling",
        format_table(
            ["workers", "serial (s)", "parallel (s)", "speedup"],
            [[workers, serial_seconds, parallel_seconds, speedup]],
            title=(
                f"Parallel runner: {num_instances} instances x "
                f"{len(algorithms)} algorithms"
            ),
            float_format="{:.2f}",
        ),
    )
    if cpus > 1:
        # Loose lower bound: pool start-up and result pickling eat into the
        # ideal N-x scaling, but the fan-out must clearly beat serial.
        assert speedup > 1.3
