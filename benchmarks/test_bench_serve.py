"""Benchmark: scheduler-as-a-service replay throughput (``BENCH_serve.json``).

Replays a sub-critical diurnal-Poisson trace through a
:class:`~repro.serve.service.SchedulerService` under the max-throughput
:class:`~repro.core.clock.SimulatedClock` and records sustained
placements/sec, admission outcomes, and queue-latency quantiles for a
representative algorithm spread (rigid batch, event-driven DFRS, periodic
DFRS).  The committed ``BENCH_serve.json`` at the repo root is the perf
trajectory artifact: regenerate it with

    REPRO_BENCH_SCALE=default PYTHONPATH=src python -m pytest \\
        benchmarks/test_bench_serve.py -m bench -q

Scale knob: ``REPRO_BENCH_SCALE=quick`` replays 2k jobs (CI-friendly);
``default`` replays the issue's 10k jobs; ``paper`` 50k.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.cluster import Cluster
from repro.experiments.reporting import format_table
from repro.serve import bench_payload, run_loadtest
from repro.traces import DiurnalPoissonTraceSource

pytestmark = pytest.mark.bench

CLUSTER = Cluster(64, 4, 8.0)
ALGORITHMS = ("fcfs", "greedy-pmtn-migr", "dynmcb8-asap-per-600")

#: Where the committed placements/sec artifact lives (repo root, next to
#: ``devtools-baseline.json`` — ``benchmarks/results/`` is gitignored).
ARTIFACT_PATH = Path(__file__).parent.parent / "BENCH_serve.json"


def _num_jobs() -> int:
    scale = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    if scale == "quick":
        return 2_000
    if scale == "paper":
        return 50_000
    return 10_000


def _trace(num_jobs: int) -> DiurnalPoissonTraceSource:
    # Sub-critical arrivals (the streaming-metrics bench recipe): the
    # backlog stays bounded, so throughput measures the serving layer and
    # scheduler, not a quadratic pile-up.
    return DiurnalPoissonTraceSource(
        num_jobs=num_jobs,
        seed=1,
        mean_interarrival_seconds=360.0,
        runtime_log_mean=5.0,
        runtime_log_sigma=1.0,
        max_runtime_seconds=7200.0,
        serial_fraction=0.6,
    )


@pytest.mark.benchmark(group="serve-loadtest")
def test_serve_replay_throughput(report_artifact):
    num_jobs = _num_jobs()
    trace = _trace(num_jobs)
    workload = f"diurnal-poisson-{num_jobs}"
    entries = []
    rows = []
    for algorithm in ALGORITHMS:
        report = run_loadtest(CLUSTER, algorithm, trace)
        assert report.submitted == report.accepted == num_jobs
        assert report.completions == num_jobs
        assert report.placements_per_wall_sec > 0.0
        entries.append(
            bench_payload(report, workload=workload, nodes=CLUSTER.num_nodes)
        )
        rows.append(
            [
                algorithm,
                f"{report.placements}",
                f"{report.wall_seconds:.2f}",
                f"{report.placements_per_wall_sec:.0f}",
                f"{report.queue_latency.get('p50', 0.0):.1f}",
                f"{report.queue_latency.get('p99', 0.0):.1f}",
            ]
        )
    artifact = {
        "benchmark": "serve-loadtest",
        "scale": os.environ.get("REPRO_BENCH_SCALE", "default").lower(),
        "entries": entries,
    }
    ARTIFACT_PATH.write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    report_artifact(
        "serve_loadtest",
        format_table(
            ["algorithm", "placements", "wall s", "placements/s", "p50 s", "p99 s"],
            rows,
            title=f"Service replay throughput ({workload}, {CLUSTER.num_nodes} nodes)",
        ),
    )
