"""Benchmark: core engine event-loop throughput (``BENCH_engine.json``).

Drives :meth:`~repro.core.engine.Simulator.run` over a materialized
sub-critical diurnal-Poisson workload and records sustained events/sec for
a representative algorithm spread (rigid batch, event-driven DFRS, periodic
DFRS), once with telemetry disabled and once with the ``stats`` sink, so
the committed artifact pins both raw engine speed and the cost of turning
instrumentation on.  The disabled/enabled ratio is asserted against
``OVERHEAD_BOUND`` at the best-of-repeats scale — the observability seam
must stay effectively free.  The committed ``BENCH_engine.json`` at the
repo root is the perf trajectory artifact: regenerate it with

    REPRO_BENCH_SCALE=default PYTHONPATH=src python -m pytest \\
        benchmarks/test_bench_engine_throughput.py -m bench -q

Scale knob: ``REPRO_BENCH_SCALE=quick`` runs 10k jobs only (CI-friendly);
``default`` adds the 100k-job scale; ``paper`` adds 1M.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from time import perf_counter

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.experiments.reporting import format_table
from repro.schedulers import create_scheduler
from repro.traces import DiurnalPoissonTraceSource

pytestmark = pytest.mark.bench

CLUSTER = Cluster(64, 4, 8.0)
ALGORITHMS = ("fcfs", "greedy-pmtn-migr", "dynmcb8-asap-per-600")

#: Telemetry may cost at most 10% of the disabled-path wall time (asserted
#: on best-of-repeats timings, which damp scheduler-noise spikes).
OVERHEAD_BOUND = 1.10

#: Where the committed events/sec artifact lives (repo root, next to
#: ``BENCH_serve.json`` — ``benchmarks/results/`` is gitignored).
ARTIFACT_PATH = Path(__file__).parent.parent / "BENCH_engine.json"


def _scales() -> tuple:
    scale = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    if scale == "quick":
        return (10_000,)
    if scale == "paper":
        return (10_000, 100_000, 1_000_000)
    return (10_000, 100_000)


def _repeats(num_jobs: int) -> int:
    # Best-of-3 at the small scale keeps the overhead ratio stable enough
    # to assert on; the larger scales are long enough to self-average.
    return 3 if num_jobs <= 10_000 else 1


def _trace(num_jobs: int) -> DiurnalPoissonTraceSource:
    # Sub-critical arrivals (the serve-bench recipe): the backlog stays
    # bounded, so events/sec measures the event loop and scheduler, not a
    # quadratic queue pile-up.
    return DiurnalPoissonTraceSource(
        num_jobs=num_jobs,
        seed=1,
        mean_interarrival_seconds=360.0,
        runtime_log_mean=5.0,
        runtime_log_sigma=1.0,
        max_runtime_seconds=7200.0,
        serial_fraction=0.6,
    )


def _run_once(algorithm, jobs, telemetry):
    engine = Simulator(
        CLUSTER,
        create_scheduler(algorithm),
        SimulationConfig(telemetry=telemetry),
    )
    start = perf_counter()
    result = engine.run(jobs)
    return {
        "wall_seconds": perf_counter() - start,
        "events": engine.events_processed,
        "makespan": result.makespan,
    }


def _measure(algorithm, jobs, repeats):
    """Best-of-``repeats`` wall time, disabled vs. instrumented.

    Repeats are interleaved (off, on, off, on, ...) after an untimed
    warm-up, so machine drift lands on both sides of the overhead ratio
    instead of biasing one.
    """
    best = {}
    if repeats > 1:
        _run_once(algorithm, jobs, None)
    for _ in range(repeats):
        for mode, telemetry in (("off", None), ("on", {"type": "stats"})):
            sample = _run_once(algorithm, jobs, telemetry)
            if mode not in best or sample["wall_seconds"] < best[mode]["wall_seconds"]:
                best[mode] = sample
    return best["off"], best["on"]


@pytest.mark.benchmark(group="engine-throughput")
def test_engine_throughput(report_artifact):
    entries = []
    rows = []
    for num_jobs in _scales():
        jobs = list(_trace(num_jobs).jobs(CLUSTER))
        workload = f"diurnal-poisson-{num_jobs}"
        repeats = _repeats(num_jobs)
        for algorithm in ALGORITHMS:
            off, on = _measure(algorithm, jobs, repeats)
            # Telemetry must never change simulated results...
            assert on["makespan"] == off["makespan"]
            assert on["events"] == off["events"]
            overhead = on["wall_seconds"] / off["wall_seconds"]
            # ...and must stay effectively free where repeats damp noise.
            if repeats >= 3:
                assert overhead <= OVERHEAD_BOUND, (
                    f"{algorithm}/{workload}: telemetry overhead "
                    f"{overhead:.3f}x exceeds {OVERHEAD_BOUND}x"
                )
            events_per_sec = off["events"] / off["wall_seconds"]
            entries.append(
                {
                    "workload": workload,
                    "algorithm": algorithm,
                    "nodes": CLUSTER.num_nodes,
                    "num_jobs": num_jobs,
                    "events": off["events"],
                    "wall_seconds": round(off["wall_seconds"], 3),
                    "events_per_wall_sec": round(events_per_sec, 1),
                    "telemetry_wall_seconds": round(on["wall_seconds"], 3),
                    "telemetry_overhead": round(overhead, 3),
                    "repeats": repeats,
                }
            )
            rows.append(
                [
                    workload,
                    algorithm,
                    f"{off['events']}",
                    f"{off['wall_seconds']:.2f}",
                    f"{events_per_sec:.0f}",
                    f"{overhead:.3f}",
                ]
            )
    artifact = {
        "benchmark": "engine-throughput",
        "overhead_bound": OVERHEAD_BOUND,
        "scale": os.environ.get("REPRO_BENCH_SCALE", "default").lower(),
        "entries": entries,
    }
    ARTIFACT_PATH.write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    report_artifact(
        "engine_throughput",
        format_table(
            ["workload", "algorithm", "events", "wall s", "events/s", "telemetry x"],
            rows,
            title=f"Engine event-loop throughput ({CLUSTER.num_nodes} nodes)",
        ),
    )
