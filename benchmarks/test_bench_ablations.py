"""Ablation benchmarks for the design choices called out in DESIGN.md §4.

These go beyond the paper's tables and quantify three choices the paper makes
without a dedicated experiment:

* **Packing heuristic** — MCB8's resource balancing vs. plain first-fit /
  best-fit decreasing, measured as the minimum yield achievable on identical
  packing instances (the paper justifies MCB8 by citing prior work).
* **Priority exponent** — the square in ``max(30, flow)/vt²`` vs. a linear
  exponent (the paper reports the square is "markedly" better but shows no
  numbers).
* **Scheduling period** — T ∈ {60, 600, 3600} for DYNMCB8-ASAP-PER (§III-B
  states T = 600 is a good compromise).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

import numpy as np
import pytest

pytestmark = pytest.mark.bench

from repro.core.cluster import Cluster
from repro.experiments.reporting import format_table
from repro.experiments.runner import generate_synthetic_instances, run_instance
from repro.packing.first_fit import best_fit_decreasing_pack, first_fit_decreasing_pack
from repro.packing.mcb8 import mcb8_pack
from repro.packing.yield_search import PackingJob, maximize_min_yield
from repro.schedulers.dfrs import priority as priority_module
from repro.workloads.lublin import LublinWorkloadGenerator
from repro.workloads.memory import MemoryRequirementModel


def _packing_instances(num_instances: int, jobs_per_instance: int, seed: int):
    """Random packing instances drawn from the paper's job distributions."""
    rng = np.random.default_rng(seed)
    memory_model = MemoryRequirementModel()
    instances: List[List[PackingJob]] = []
    for _ in range(num_instances):
        jobs = []
        for job_id in range(jobs_per_instance):
            tasks = int(rng.choice([1, 2, 4, 8]))
            cpu = 0.25 if tasks == 1 else 1.0
            jobs.append(
                PackingJob(
                    job_id=job_id,
                    num_tasks=tasks,
                    cpu_need=cpu,
                    mem_requirement=memory_model.memory_requirement(rng),
                )
            )
        instances.append(jobs)
    return instances


@pytest.mark.benchmark(group="ablation")
def test_ablation_packing_heuristic(benchmark, report_artifact):
    """MCB8 should achieve a minimum yield at least as high as FFD/BFD."""
    instances = _packing_instances(num_instances=25, jobs_per_instance=24, seed=9)
    packers = {
        "mcb8": mcb8_pack,
        "first-fit-decreasing": first_fit_decreasing_pack,
        "best-fit-decreasing": best_fit_decreasing_pack,
    }

    def run_all() -> Dict[str, List[float]]:
        yields: Dict[str, List[float]] = {name: [] for name in packers}
        for jobs in instances:
            for name, packer in packers.items():
                result = maximize_min_yield(jobs, 16, packer=packer)
                yields[name].append(result.yield_value if result.success else 0.0)
        return yields

    yields = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [name, float(np.mean(values)), float(np.min(values))]
        for name, values in yields.items()
    ]
    report_artifact(
        "ablation_packing",
        format_table(
            ["packer", "mean min-yield", "worst min-yield"],
            rows,
            title="Ablation: packing heuristic vs. achievable minimum yield",
        ),
    )
    assert np.mean(yields["mcb8"]) >= np.mean(yields["first-fit-decreasing"]) - 0.02
    assert np.mean(yields["mcb8"]) >= np.mean(yields["best-fit-decreasing"]) - 0.02


@pytest.mark.benchmark(group="ablation")
def test_ablation_priority_exponent(benchmark, bench_config, report_artifact):
    """Compare the squared priority against a linear one on real runs."""
    config = replace(
        bench_config,
        num_traces=min(bench_config.num_traces, 2),
        load_levels=(0.7,),
        algorithms=("greedy-pmtn",),
    )

    def run_all():
        return {
            "exponent=2 (paper)": _run_priority_ablation(config, 2.0),
            "exponent=1": _run_priority_ablation(config, 1.0),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[name, value] for name, value in results.items()]
    report_artifact(
        "ablation_priority_exponent",
        format_table(
            ["priority function", "mean max stretch (greedy-pmtn, load 0.7)"],
            rows,
            title="Ablation: priority exponent",
        ),
    )
    for value in results.values():
        assert value >= 1.0


def _run_priority_ablation(config, exponent: float) -> float:
    """Mean max stretch of GREEDY-PMTN with a patched priority exponent."""
    import repro.schedulers.dfrs.greedy_pmtn as greedy_pmtn_module

    original_inc = greedy_pmtn_module.sort_by_increasing_priority
    original_dec = greedy_pmtn_module.sort_by_decreasing_priority
    try:
        greedy_pmtn_module.sort_by_increasing_priority = (
            lambda views: priority_module.sort_by_increasing_priority(
                views, exponent=exponent
            )
        )
        greedy_pmtn_module.sort_by_decreasing_priority = (
            lambda views: priority_module.sort_by_decreasing_priority(
                views, exponent=exponent
            )
        )
        stretches = []
        for workload in generate_synthetic_instances(config, load=0.7):
            outcome = run_instance(workload, config.algorithms, penalty_seconds=300.0)
            stretches.append(outcome.results["greedy-pmtn"].max_stretch)
        return float(np.mean(stretches))
    finally:
        greedy_pmtn_module.sort_by_increasing_priority = original_inc
        greedy_pmtn_module.sort_by_decreasing_priority = original_dec


@pytest.mark.benchmark(group="ablation")
def test_ablation_scheduling_period(benchmark, bench_config, report_artifact):
    """T = 600 s should be competitive with both T = 60 and T = 3600 (§III-B)."""
    config = replace(
        bench_config,
        num_traces=min(bench_config.num_traces, 2),
        load_levels=(0.7,),
        algorithms=(
            "dynmcb8-asap-per-60",
            "dynmcb8-asap-per-600",
            "dynmcb8-asap-per-3600",
        ),
    )

    def run_all():
        stretches: Dict[str, List[float]] = {name: [] for name in config.algorithms}
        for workload in generate_synthetic_instances(config, load=0.7):
            outcome = run_instance(workload, config.algorithms, penalty_seconds=300.0)
            for name, result in outcome.results.items():
                stretches[name].append(result.max_stretch)
        return {name: float(np.mean(values)) for name, values in stretches.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[name, value] for name, value in results.items()]
    report_artifact(
        "ablation_period",
        format_table(
            ["algorithm", "mean max stretch (load 0.7, 5-min penalty)"],
            rows,
            title="Ablation: scheduling period T for DYNMCB8-ASAP-PER",
        ),
    )
    for value in results.values():
        assert value >= 1.0
