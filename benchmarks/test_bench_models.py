"""Benchmark: models-seam engine overhead (model-free vs modeled runs).

Two claims:

1. **No default-path regression** — threading the overhead/execution-time
   model hooks through the engine must not slow down a model-free run: the
   ``None`` checks on the charge sites and at admission are the only cost.
   The proxy is a model-free run vs the same run with explicit default
   models (``none``/``exact``, which the scenario layer would demote):
   results must be *identical* and the runtime ratio bounded well below
   noise-free regressions.

2. **Bounded modeled overhead** — an active memory-linear model consulted
   at every preemption/migration/resume instant costs a bounded constant
   factor, not an asymptotic blow-up.

Scale knob: ``REPRO_BENCH_SCALE=quick`` shrinks the traces for CI runs.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.experiments.reporting import format_table
from repro.models import (
    ExactExecutionTimeModel,
    MemoryLinearOverheadModel,
    NoOverheadModel,
)
from repro.schedulers.registry import create_scheduler
from repro.workloads.lublin import LublinWorkloadGenerator

pytestmark = pytest.mark.bench

#: Both the default-model and the active-model run do strictly more work
#: than the model-free run; the 3x envelope catches asymptotic regressions
#: (the observed overhead is a few percent), not constant factors.
MAX_MODEL_OVERHEAD = 3.0

CLUSTER = Cluster(32, 4, 8.0)


def _num_jobs() -> int:
    if os.environ.get("REPRO_BENCH_SCALE", "default").lower() == "quick":
        return 80
    return 150


def _simulate(algorithm: str, config: SimulationConfig):
    workload = LublinWorkloadGenerator(CLUSTER).generate(_num_jobs(), seed=2010)
    simulator = Simulator(CLUSTER, create_scheduler(algorithm), config)
    start = time.perf_counter()
    result = simulator.run(workload.jobs)
    elapsed = time.perf_counter() - start
    assert result.num_jobs == _num_jobs()
    return elapsed, result


def _configs():
    return {
        "model-free": SimulationConfig(record_scheduler_times=False),
        "default-models": SimulationConfig(
            record_scheduler_times=False,
            overhead_model=NoOverheadModel(),
            execution_time_model=ExactExecutionTimeModel(),
        ),
        "memory-linear": SimulationConfig(
            record_scheduler_times=False,
            overhead_model=MemoryLinearOverheadModel(seconds_per_gb=0.1),
        ),
    }


def test_models_overhead(report_artifact):
    rows = []
    for algorithm in ("greedy-pmtn-migr", "dynmcb8-asap-per-600"):
        configs = _configs()
        # Warm once (imports, numpy caches), then measure.
        _simulate(algorithm, configs["model-free"])
        seconds = {}
        results = {}
        for label, config in configs.items():
            best = None
            for _ in range(2):
                elapsed, result = _simulate(algorithm, config)
                best = elapsed if best is None else min(best, elapsed)
            seconds[label] = best
            results[label] = result

        # Explicit default models are byte-identical to no models at all.
        assert results["default-models"].jobs == results["model-free"].jobs
        assert results["default-models"].costs == results["model-free"].costs
        # The active model actually charged something on these preempting
        # algorithms — the bench measures a live code path, not a no-op.
        assert results["memory-linear"].costs.overhead_seconds > 0.0

        base = max(seconds["model-free"], 1e-9)
        row = [algorithm, f"{seconds['model-free']:.3f}"]
        for label in ("default-models", "memory-linear"):
            ratio = seconds[label] / base
            row.extend([f"{seconds[label]:.3f}", f"{ratio:.2f}"])
            assert ratio < MAX_MODEL_OVERHEAD, (
                f"{algorithm}: {label} run {ratio:.2f}x slower than "
                f"model-free (bound {MAX_MODEL_OVERHEAD}x)"
            )
        rows.append(row)

    text = format_table(
        ["algorithm", "model-free (s)", "default models (s)", "ratio",
         "memory-linear (s)", "ratio"],
        rows,
        title=(
            f"Models-seam engine overhead ({_num_jobs()} Lublin jobs, "
            f"32 nodes)"
        ),
    )
    report_artifact("models_overhead", text)
