"""Benchmark: long-haul serve soak (``BENCH_soak.json``).

Runs the :mod:`repro.obs.soak` harness — live service, real socket,
accelerated wall clock, periodic ``metrics``/``metrics-prom`` scrapes —
against a sub-critical diurnal-Poisson feed and asserts the health
invariants hold: flat RSS, sustained placement rate, bounded queue depth.
The committed ``BENCH_soak.json`` at the repo root is the soak-health
artifact: regenerate it with

    REPRO_BENCH_SCALE=default PYTHONPATH=src python -m pytest \\
        benchmarks/test_bench_soak.py -m bench -q

Scale knob: ``REPRO_BENCH_SCALE=quick`` soaks ~15 wall seconds
(CI-friendly), ``default`` ~45 s, ``paper`` ~300 s.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig
from repro.experiments.reporting import format_table
from repro.obs.soak import SoakConfig, run_soak
from repro.traces import DiurnalPoissonTraceSource

pytestmark = pytest.mark.bench

CLUSTER = Cluster(64, 4, 8.0)
ALGORITHM = "greedy-pmtn-migr"

ARTIFACT_PATH = Path(__file__).parent.parent / "BENCH_soak.json"


def _wall_seconds() -> float:
    scale = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    if scale == "quick":
        return 15.0
    if scale == "paper":
        return 300.0
    return 45.0


def _trace() -> DiurnalPoissonTraceSource:
    # Sub-critical arrivals with bounded runtimes: the soak measures the
    # serving stack's endurance, not a backlog pile-up, and the bounded
    # runtime keeps the post-budget drain short.
    return DiurnalPoissonTraceSource(
        num_jobs=1_000_000,
        seed=7,
        mean_interarrival_seconds=360.0,
        runtime_log_mean=5.0,
        runtime_log_sigma=1.0,
        max_runtime_seconds=7200.0,
        serial_fraction=0.6,
    )


@pytest.mark.benchmark(group="serve-soak")
def test_serve_soak_health(report_artifact):
    wall = _wall_seconds()
    config = SoakConfig(
        acceleration=7200.0,
        wall_seconds=wall,
        scrape_interval_seconds=1.0,
        max_drain_seconds=wall,
        max_rss_slope_mb_per_min=30.0,
        min_placements_per_sec=1.0,
        max_queue_depth=10_000,
    )
    report = run_soak(
        CLUSTER,
        ALGORITHM,
        _trace(),
        config=config,
        engine_config=SimulationConfig(streaming_metrics=True),
    )
    assert report.samples, "soak produced no health samples"
    assert report.prometheus is not None and "repro_serve_" in report.prometheus
    assert report.submitted > 0 and report.placements > 0
    assert report.healthy, f"soak unhealthy: {report.violations}"
    payload = report.bench_payload()
    payload["scale"] = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    ARTIFACT_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    rows = [
        [
            report.algorithm,
            f"{report.wall_seconds:.1f}",
            f"{report.sim_seconds:.0f}",
            f"{report.submitted}",
            f"{report.placements_per_wall_sec:.1f}",
            f"{report.rss_slope_mb_per_min:+.2f}",
            f"{report.max_queue_depth_seen}",
        ]
    ]
    report_artifact(
        "serve_soak",
        format_table(
            [
                "algorithm",
                "wall s",
                "sim s",
                "jobs",
                "placements/s",
                "rss MB/min",
                "max queue",
            ],
            rows,
            title=f"Serve soak health ({CLUSTER.num_nodes} nodes, "
            f"x{config.acceleration:g} clock)",
        ),
    )
