"""Benchmark E1: Figure 1(a) — degradation factor vs. load, no penalty.

Reproduces the left panel of Figure 1: the average stretch degradation factor
of every algorithm as a function of the offered load when preemptions and
migrations are free.  Expected shape (paper §V): DYNMCB8 is the best
(degradation ≈ 1), the periodic MCB8 variants follow, the preemptive greedy
algorithms are an order of magnitude behind, and FCFS/EASY/GREEDY trail by
orders of magnitude.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench

from repro.experiments.figure1 import run_figure1


@pytest.mark.benchmark(group="figure1")
def test_figure1a_no_penalty(benchmark, bench_config, report_artifact):
    result = benchmark.pedantic(
        lambda: run_figure1(bench_config, penalty_seconds=0.0),
        rounds=1,
        iterations=1,
    )
    report_artifact("figure1a_no_penalty", result.format())

    series = result.series()
    batch_best = {
        load: min(series["fcfs"][load], series["easy"][load])
        for load in bench_config.load_levels
    }
    dfrs_names = [name for name in series if name not in ("fcfs", "easy", "greedy")]
    dfrs_best = {
        load: min(series[name][load] for name in dfrs_names)
        for load in bench_config.load_levels
    }
    # The paper's headline: DFRS (with preemption) beats batch scheduling at
    # every load level, usually by orders of magnitude.
    for load in bench_config.load_levels:
        assert dfrs_best[load] <= batch_best[load]
