"""Benchmark E5: §V scheduling-time study — DFRS is cheap enough in practice.

Reproduces the feasibility argument of §V: the time DYNMCB8 needs to compute
an allocation is orders of magnitude smaller than typical job inter-arrival
times.  Absolute numbers depend on the host (the paper used a 3.2 GHz Xeon);
the reproduced claim is the relationship, not the milliseconds.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench

from repro.experiments.timing import run_timing_study


@pytest.mark.benchmark(group="timing")
def test_scheduling_time_study(benchmark, bench_config, report_artifact):
    result = benchmark.pedantic(
        lambda: run_timing_study(bench_config, algorithm="dynmcb8"),
        rounds=1,
        iterations=1,
    )
    report_artifact("scheduling_time", result.format())

    assert result.num_observations > 0
    # Allocation computation is far below the mean inter-arrival time.
    assert result.mean_seconds < result.mean_interarrival_seconds / 10.0
    # Small events (<= 10 jobs in the system) are usually instantaneous.
    assert result.small_event_fast_fraction >= 0.25
