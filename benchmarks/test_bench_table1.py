"""Benchmark E3: Table I — degradation statistics per workload family.

Reproduces Table I: average / standard deviation / maximum degradation factor
for every algorithm on (i) the scaled synthetic traces, (ii) the unscaled
synthetic traces, and (iii) the real-world (HPC2N-like) 1-week segments, all
with the 5-minute rescheduling penalty.  Expected shape (paper §V): FCFS and
EASY in the hundreds, GREEDY better but still bad, GREEDY-PMTN(-MIGR) in the
single digits to tens, the periodic MCB8 variants in the single digits, and
DYNMCB8-ASAP-PER the best on the maximum (worst-trace) statistic.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench

from repro.experiments.table1 import run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_degradation_statistics(benchmark, bench_config, report_artifact):
    result = benchmark.pedantic(
        lambda: run_table1(bench_config, penalty_seconds=300.0),
        rounds=1,
        iterations=1,
    )
    report_artifact("table1_degradation", result.format())

    scaled = result.columns["scaled"]
    # Batch scheduling is the worst family on the scaled synthetic traces.
    batch_avg = min(scaled["fcfs"].average, scaled["easy"].average)
    dfrs_preemptive = [
        name for name in scaled if name not in ("fcfs", "easy", "greedy")
    ]
    best_dfrs_avg = min(scaled[name].average for name in dfrs_preemptive)
    assert best_dfrs_avg <= batch_avg
    # Every column reports a best algorithm with average degradation >= 1.
    for column in result.columns.values():
        assert min(stats.average for stats in column.values()) >= 1.0 - 1e-9
