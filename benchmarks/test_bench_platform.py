"""Benchmark: platform-seam engine overhead (homogeneous vs heterogeneous).

Two claims:

1. **No homogeneous regression** — threading per-node capacity vectors and
   the availability mask through the engine, schedulers, and packers must
   not slow down the default path: clusters without capacity vectors take
   the literal-1.0 branches everywhere.  Measured as the runtime ratio of
   the same simulation before/after the platform seam cannot be measured
   in-tree, so the proxy is homogeneous-cluster runtime vs an equal-size
   heterogeneous cluster: the homogeneous run must not be slower than the
   heterogeneous one beyond noise, and a generous absolute bound guards
   against the capacity plumbing leaking into the hot path.

2. **Bounded heterogeneous overhead** — the capacity-aware arithmetic
   (normalised loads, per-bin capacities in MCB8) costs a bounded constant
   factor, not an asymptotic blow-up.

Scale knob: ``REPRO_BENCH_SCALE=quick`` shrinks the traces for CI runs.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.experiments.reporting import format_table
from repro.platform import NodeClass, NodeClassesPlatform
from repro.schedulers.registry import create_scheduler
from repro.workloads.lublin import LublinWorkloadGenerator

pytestmark = pytest.mark.bench

#: The heterogeneous run exercises normalised placement and capacity-aware
#: packing on every event; a 3x envelope is far above the observed ~1.1-1.5x
#: and exists to catch asymptotic regressions, not constant factors.
MAX_HET_OVERHEAD = 3.0


def _num_jobs() -> int:
    # At the default Lublin load a 32-node cluster saturates, so the active
    # population — and the per-event packing cost — grows superlinearly
    # with trace length; these sizes keep the full matrix in CI range.
    if os.environ.get("REPRO_BENCH_SCALE", "default").lower() == "quick":
        return 80
    return 150


def _simulate(cluster, algorithm: str) -> float:
    workload = LublinWorkloadGenerator(cluster).generate(_num_jobs(), seed=2010)
    simulator = Simulator(
        cluster,
        create_scheduler(algorithm),
        SimulationConfig(record_scheduler_times=False),
    )
    start = time.perf_counter()
    result = simulator.run(workload.jobs)
    elapsed = time.perf_counter() - start
    assert result.num_jobs == _num_jobs()
    return elapsed


def test_platform_overhead(report_artifact):
    homogeneous = Cluster(32, 4, 8.0)
    # CPU-skewed classes: memory stays at the reference size so every Lublin
    # job (widths up to the cluster, memory up to a full node) stays
    # feasible — the point here is timing, not feasibility pruning.
    heterogeneous = NodeClassesPlatform(
        classes=(
            NodeClass("fast", 8, cpu=2.0),
            NodeClass("standard", 16, cpu=1.0),
            NodeClass("slow", 8, cpu=0.5),
        )
    ).build_cluster()
    assert heterogeneous.num_nodes == homogeneous.num_nodes

    rows = []
    for algorithm in ("greedy", "dynmcb8-asap-per-600"):
        # Warm once (imports, numpy caches), then measure.
        _simulate(homogeneous, algorithm)
        homogeneous_seconds = min(
            _simulate(homogeneous, algorithm) for _ in range(2)
        )
        heterogeneous_seconds = min(
            _simulate(heterogeneous, algorithm) for _ in range(2)
        )
        ratio = heterogeneous_seconds / max(homogeneous_seconds, 1e-9)
        rows.append(
            [algorithm, f"{homogeneous_seconds:.3f}",
             f"{heterogeneous_seconds:.3f}", f"{ratio:.2f}"]
        )
        # The heterogeneous capacity arithmetic must stay a bounded constant
        # factor over the unit-capacity fast path.
        assert ratio < MAX_HET_OVERHEAD, (
            f"{algorithm}: heterogeneous run {ratio:.2f}x slower than "
            f"homogeneous (bound {MAX_HET_OVERHEAD}x)"
        )

    text = format_table(
        ["algorithm", "homogeneous (s)", "heterogeneous (s)", "ratio"],
        rows,
        title=f"Platform-seam engine overhead ({_num_jobs()} Lublin jobs, 32 nodes)",
    )
    report_artifact("platform_overhead", text)
