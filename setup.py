"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` keeps working on minimal offline environments
that lack the ``wheel`` package required by PEP 660 editable builds.  The
``src`` layout is restated here so legacy ``setup.py``-driven installs also
resolve the packages correctly.
"""

from setuptools import find_packages, setup

setup(
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
