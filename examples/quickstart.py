#!/usr/bin/env python3
"""Quickstart: simulate one synthetic workload under DFRS and batch scheduling.

This is the 5-minute tour of the library:

1. describe a cluster,
2. generate a Lublin synthetic workload annotated with CPU needs and memory
   requirements (paper §IV-C),
3. scale it to a target offered load,
4. run it under EASY backfilling (batch baseline, perfect runtime estimates)
   and under DYNMCB8-ASAP-PER (the paper's best DFRS algorithm) with the
   pessimistic 5-minute rescheduling penalty,
5. compare maximum bounded stretches — the paper's headline metric.

Run with::

    python examples/quickstart.py [--jobs 120] [--nodes 32] [--load 0.7]
"""

from __future__ import annotations

import argparse

from repro import Cluster, LublinWorkloadGenerator, run_instance, scale_to_load
from repro.experiments.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=120, help="number of jobs")
    parser.add_argument("--nodes", type=int, default=32, help="cluster size")
    parser.add_argument("--load", type=float, default=0.7, help="offered load")
    parser.add_argument("--seed", type=int, default=42, help="random seed")
    args = parser.parse_args()

    # 1. A homogeneous cluster of quad-core nodes with 8 GB of memory each.
    cluster = Cluster(num_nodes=args.nodes, cores_per_node=4, node_memory_gb=8.0)

    # 2-3. A synthetic workload, rescaled to the requested offered load.
    workload = LublinWorkloadGenerator(cluster).generate(args.jobs, seed=args.seed)
    workload = scale_to_load(workload, args.load)
    stats = workload.statistics()
    print(
        f"Workload: {stats['num_jobs']} jobs, offered load {stats['load']:.2f}, "
        f"{stats['serial_fraction']:.0%} serial, "
        f"median runtime {stats['median_runtime']:.0f}s"
    )

    # 4. Simulate under a batch baseline and under the best DFRS algorithm.
    algorithms = ["easy", "dynmcb8-asap-per-600"]
    outcome = run_instance(workload, algorithms, penalty_seconds=300.0)

    # 5. Report the metrics the paper reports.
    rows = []
    for name, result in outcome.results.items():
        rows.append(
            [
                name,
                result.max_stretch,
                result.mean_stretch,
                result.mean_turnaround,
                result.preemptions_per_job(),
                result.migrations_per_job(),
            ]
        )
    print()
    print(
        format_table(
            ["algorithm", "max stretch", "mean stretch", "mean turnaround (s)",
             "pmtn/job", "migr/job"],
            rows,
            title="EASY backfilling vs. DYNMCB8-ASAP-PER (5-minute penalty)",
        )
    )
    factors = outcome.degradation_factors()
    best = min(factors, key=factors.get)
    print(f"\nBest algorithm on this instance: {best}")
    for name, factor in sorted(factors.items(), key=lambda item: item[1]):
        print(f"  {name:24s} degradation factor {factor:8.2f}")


if __name__ == "__main__":
    main()
