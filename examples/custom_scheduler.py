#!/usr/bin/env python3
"""Write your own DFRS scheduling policy and race it against the paper's.

The simulation engine treats schedulers as pure policies: at every event they
receive a read-only :class:`~repro.core.context.SchedulingContext` and return
an :class:`~repro.core.allocation.AllocationDecision`.  This example shows the
full recipe:

1. subclass :class:`repro.schedulers.base.Scheduler`,
2. place tasks under the memory constraint (here: least-loaded node first),
3. hand out CPU with the fair-share rule ``1 / max(1, Λ)`` and the
   average-yield improvement heuristic — both reusable from
   :mod:`repro.schedulers.dfrs.yield_opt`,
4. run it head-to-head against GREEDY-PMTN and DYNMCB8-ASAP-PER.

The toy policy below ("RoundRobinShares") never preempts or migrates: jobs
that cannot be placed immediately simply wait for the next event.  It is a
deliberately simple starting point for experimentation, not a recommendation.

Run with::

    python examples/custom_scheduler.py [--jobs 100] [--nodes 24] [--load 0.7]
"""

from __future__ import annotations

import argparse

from repro import Cluster, LublinWorkloadGenerator, scale_to_load
from repro.core import SimulationConfig, Simulator, ReschedulingPenaltyModel
from repro.core.allocation import AllocationDecision
from repro.core.context import SchedulingContext
from repro.experiments.reporting import format_table
from repro.schedulers import create_scheduler
from repro.schedulers.base import Scheduler
from repro.schedulers.dfrs.placement import greedy_place_job, usage_from_placements
from repro.schedulers.dfrs.yield_opt import (
    build_allocations,
    fair_yields,
    improve_average_yield,
)


class RoundRobinShares(Scheduler):
    """Start jobs in submission order on the least-loaded nodes; never preempt."""

    name = "round-robin-shares"

    def schedule(self, context: SchedulingContext) -> AllocationDecision:
        decision = AllocationDecision()

        # Keep every running job where it is.
        placements = {
            view.job_id: view.assignment for view in context.running_jobs()
        }

        # Admit pending jobs greedily, oldest first, under the memory constraint.
        usage = usage_from_placements(placements, context.jobs, context.cluster)
        for view in sorted(
            context.pending_jobs(), key=lambda v: (v.submit_time, v.job_id)
        ):
            nodes = greedy_place_job(view, usage)
            if nodes is not None:
                placements[view.job_id] = tuple(nodes)

        # Fair CPU shares plus the paper's average-yield improvement heuristic.
        yields = fair_yields(placements, context.jobs, context.cluster)
        yields = improve_average_yield(placements, yields, context.jobs, context.cluster)
        decision.running = build_allocations(placements, yields)
        return decision


def run(workload, scheduler, penalty_seconds: float):
    simulator = Simulator(
        workload.cluster,
        scheduler,
        SimulationConfig(penalty_model=ReschedulingPenaltyModel(penalty_seconds)),
    )
    return simulator.run(workload.jobs)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=100, help="number of jobs")
    parser.add_argument("--nodes", type=int, default=24, help="cluster size")
    parser.add_argument("--load", type=float, default=0.7, help="offered load")
    parser.add_argument("--penalty", type=float, default=300.0, help="rescheduling penalty (s)")
    parser.add_argument("--seed", type=int, default=11, help="random seed")
    args = parser.parse_args()

    cluster = Cluster(num_nodes=args.nodes, cores_per_node=4, node_memory_gb=8.0)
    workload = LublinWorkloadGenerator(cluster).generate(args.jobs, seed=args.seed)
    workload = scale_to_load(workload, args.load)
    print(f"Workload: {workload.num_jobs} jobs at offered load {workload.load():.2f}\n")

    contenders = {
        "round-robin-shares (custom)": RoundRobinShares(),
        "greedy-pmtn": create_scheduler("greedy-pmtn"),
        "dynmcb8-asap-per-600": create_scheduler("dynmcb8-asap-per-600"),
    }
    rows = []
    for label, scheduler in contenders.items():
        result = run(workload, scheduler, args.penalty)
        rows.append(
            [
                label,
                result.max_stretch,
                result.mean_stretch,
                result.preemptions_per_job(),
                result.migrations_per_job(),
            ]
        )
    print(
        format_table(
            ["policy", "max stretch", "mean stretch", "pmtn/job", "migr/job"],
            rows,
            title=f"Custom policy vs. paper algorithms ({args.penalty:.0f}-second penalty)",
        )
    )
    print(
        "\nThe custom policy usually loses on max stretch because it cannot\n"
        "preempt: once a long job occupies memory, later short jobs must wait.\n"
        "That is precisely the paper's argument for preemption (§III-A)."
    )


if __name__ == "__main__":
    main()
