#!/usr/bin/env python3
"""Load sweep: a miniature Figure 1 on your terminal.

Generates a handful of synthetic traces, scales each of them to a range of
offered loads, runs every algorithm of the paper, and prints the average
stretch degradation factor per (algorithm, load) — the quantity plotted in
Figure 1 — together with a crude ASCII rendering of the two regimes the paper
discusses (with and without the 5-minute rescheduling penalty).

Run with::

    python examples/load_sweep.py [--traces 2] [--jobs 80] [--nodes 32]
"""

from __future__ import annotations

import argparse

from repro import Cluster
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure1 import run_figure1
from repro.schedulers.registry import PAPER_ALGORITHMS


def ascii_series(series, loads, width: int = 40) -> str:
    """Render one algorithm's degradation factors as a crude bar chart."""
    import math

    lines = []
    peak = max(max(values.values()) for values in series.values())
    log_peak = math.log10(max(peak, 10.0))
    for name, values in series.items():
        bars = []
        for load in loads:
            value = values[load]
            length = int(round(width * math.log10(max(value, 1.0)) / log_peak))
            bars.append(f"{load:>4.1f} |" + "#" * length + f" {value:.1f}")
        lines.append(f"{name}")
        lines.extend("  " + bar for bar in bars)
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=80)
    parser.add_argument("--nodes", type=int, default=32)
    parser.add_argument("--loads", type=str, default="0.3,0.6,0.9")
    args = parser.parse_args()

    loads = tuple(float(part) for part in args.loads.split(","))
    config = ExperimentConfig(
        cluster=Cluster(args.nodes, 4, 8.0),
        num_traces=args.traces,
        num_jobs=args.jobs,
        load_levels=loads,
        algorithms=tuple(PAPER_ALGORITHMS),
    )

    for penalty, label in ((0.0, "Figure 1(a): no rescheduling penalty"),
                           (300.0, "Figure 1(b): 5-minute rescheduling penalty")):
        print("=" * 72)
        print(label)
        print("=" * 72)
        result = run_figure1(config, penalty_seconds=penalty)
        print(result.format())
        print()
        print(ascii_series(result.series(), loads))
        print()


if __name__ == "__main__":
    main()
