#!/usr/bin/env python3
"""Run the ablation and extension studies that go beyond the paper's tables.

Four questions the paper answers only in prose, quantified at laptop scale:

1. **Does MCB8's balancing matter?**  Compare every registered packing
   heuristic on the same random instances (``run_packing_ablation``).
2. **Is T = 600 s the right period?**  Sweep the scheduling period of
   DYNMCB8-ASAP-PER (``run_period_sweep``).
3. **Do the future-work extensions help?**  Long-job throttling, user
   priorities (weighted yields), and conservative backfilling vs. the paper's
   best algorithm (``run_extensions_comparison``).
4. **What does it cost in energy?**  Utilization and idle power-down savings
   per algorithm (``run_utilization_study``).

Run with::

    python examples/ablations_and_extensions.py [--nodes 32] [--jobs 80]
"""

from __future__ import annotations

import argparse

from repro import Cluster, ExperimentConfig
from repro.experiments import (
    run_extensions_comparison,
    run_packing_ablation,
    run_period_sweep,
    run_utilization_study,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=32, help="cluster size")
    parser.add_argument("--jobs", type=int, default=80, help="jobs per trace")
    parser.add_argument("--traces", type=int, default=1, help="traces per load level")
    parser.add_argument("--seed", type=int, default=2010, help="base random seed")
    args = parser.parse_args()

    config = ExperimentConfig(
        cluster=Cluster(args.nodes, 4, 8.0),
        num_traces=args.traces,
        num_jobs=args.jobs,
        load_levels=(0.5, 0.7),
        seed_base=args.seed,
        hpc2n_weeks=1,
        hpc2n_jobs_per_week=args.jobs,
    )

    print("1. Packing-heuristic ablation")
    ablation = run_packing_ablation(num_nodes=16, num_instances=15, jobs_per_instance=20)
    print(ablation.format())
    print(f"Best packer by mean achieved yield: {ablation.ranking()[0]}")

    print("\n2. Scheduling-period sensitivity (DYNMCB8-ASAP-PER)")
    sweep = run_period_sweep(
        config, periods=(60.0, 600.0, 3600.0), load=0.7, penalty_seconds=300.0
    )
    print(sweep.format())
    print(f"Best period on these traces: {sweep.best_period():.0f} s")

    print("\n3. Extension schedulers vs. the paper's best algorithm")
    extensions = run_extensions_comparison(config, penalty_seconds=300.0)
    print(extensions.format())
    print(f"Best algorithm: {extensions.best_algorithm()}")

    print("\n4. Utilization and energy")
    study = run_utilization_study(
        config,
        load=0.5,
        penalty_seconds=300.0,
        algorithms=("easy", "greedy-pmtn", "dynmcb8-asap-per-600"),
    )
    print(study.format())


if __name__ == "__main__":
    main()
