#!/usr/bin/env python3
"""Quantify the paper's "turn off idle nodes" remark (§II-B2).

DFRS packs work onto fewer nodes than batch scheduling at the same offered
load, so more nodes sit idle and can be powered down.  This example attaches
a :class:`~repro.core.observers.UtilizationRecorder` to each simulation, turns
the recorded samples into step series, and reports:

* the time-weighted mean and peak number of busy nodes,
* the energy consumed under a three-state node power model, always-on vs.
  idle power-down,
* per-job stretch fairness (Jain index), to show the energy saving does not
  come at the price of starving anyone.

Run with::

    python examples/energy_and_utilization.py [--load 0.3] [--nodes 32]
"""

from __future__ import annotations

import argparse

from repro import Cluster, LublinWorkloadGenerator, scale_to_load
from repro.analysis import (
    NodePowerModel,
    busy_nodes_series,
    energy_from_recorder,
    energy_report_table,
    fairness_report_table,
    stretch_fairness,
)
from repro.core import (
    ReschedulingPenaltyModel,
    SimulationConfig,
    Simulator,
    UtilizationRecorder,
)
from repro.schedulers import create_scheduler


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=100, help="number of jobs")
    parser.add_argument("--nodes", type=int, default=32, help="cluster size")
    parser.add_argument("--load", type=float, default=0.3, help="offered load")
    parser.add_argument("--penalty", type=float, default=300.0, help="rescheduling penalty (s)")
    parser.add_argument("--seed", type=int, default=5, help="random seed")
    args = parser.parse_args()

    cluster = Cluster(num_nodes=args.nodes, cores_per_node=4, node_memory_gb=8.0)
    workload = LublinWorkloadGenerator(cluster).generate(args.jobs, seed=args.seed)
    workload = scale_to_load(workload, args.load)
    print(
        f"Workload: {workload.num_jobs} jobs, offered load {workload.load():.2f}, "
        f"{cluster.num_nodes} nodes\n"
    )

    power_model = NodePowerModel(busy_watts=300.0, idle_watts=180.0, off_watts=10.0)
    algorithms = ["fcfs", "easy", "greedy-pmtn", "dynmcb8-asap-per-600"]

    energy_reports = []
    fairness_reports = []
    for name in algorithms:
        recorder = UtilizationRecorder()
        simulator = Simulator(
            cluster,
            create_scheduler(name),
            SimulationConfig(penalty_model=ReschedulingPenaltyModel(args.penalty)),
            observers=[recorder],
        )
        result = simulator.run(workload.jobs)
        busy = busy_nodes_series(recorder)
        print(
            f"{name:24s} max stretch {result.max_stretch:10.2f}   "
            f"busy nodes: mean {busy.mean():5.1f}, peak {busy.max():4.0f}, "
            f"fraction of time fully idle {busy.fraction_at_or_below(0.0):.0%}"
        )
        energy_reports.append(
            energy_from_recorder(recorder, cluster, algorithm=name, model=power_model)
        )
        fairness_reports.append(stretch_fairness(result))

    print("\n" + energy_report_table(energy_reports))
    print("\n" + fairness_report_table(fairness_reports))
    print(
        "\nReading guide: all algorithms leave a similar amount of idle node-hours\n"
        "at this low load (the work is the same), but DFRS reaches a far lower\n"
        "maximum stretch for the same energy budget — and with idle power-down\n"
        "the under-subscribed cluster saves a large fraction of its energy."
    )


if __name__ == "__main__":
    main()
