#!/usr/bin/env python3
"""Memory pressure study: when does fractional scheduling stop paying off?

The paper's motivation (§I) is that most HPC jobs use a small fraction of a
node's memory, which is what makes co-location — and therefore DFRS —
possible.  This example quantifies that argument by sweeping the memory
model: the same job mix is annotated with increasingly memory-hungry tasks
and simulated under EASY (batch) and two DFRS algorithms.  As the memory
requirement grows towards a full node, co-location opportunities vanish and
the DFRS advantage shrinks — exactly the trade-off the introduction appeals
to.

Run with::

    python examples/memory_pressure_study.py [--jobs 80] [--nodes 32]
"""

from __future__ import annotations

import argparse

from repro import Cluster, run_instance, scale_to_load
from repro.experiments.reporting import format_table
from repro.workloads.lublin import LublinWorkloadGenerator
from repro.workloads.memory import MemoryRequirementModel

ALGORITHMS = ["easy", "greedy-pmtn", "dynmcb8-asap-per-600"]

#: Memory scenarios: from the paper's distribution to pathological pressure.
SCENARIOS = {
    "paper (55% of jobs at 10%)": MemoryRequirementModel(),
    "moderate (25% or 50% per task)": MemoryRequirementModel(
        small_probability=0.5, small_requirement=0.25, large_multipliers=(2,)
    ),
    "heavy (all jobs 50%)": MemoryRequirementModel(
        small_probability=1.0, small_requirement=0.50, large_multipliers=(2,)
    ),
    "full node (all jobs 100%)": MemoryRequirementModel(
        small_probability=1.0, small_requirement=1.00, large_multipliers=(1,)
    ),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=80)
    parser.add_argument("--nodes", type=int, default=32)
    parser.add_argument("--load", type=float, default=0.7)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--penalty", type=float, default=300.0)
    args = parser.parse_args()

    cluster = Cluster(args.nodes, 4, 8.0)
    rows = []
    for label, memory_model in SCENARIOS.items():
        generator = LublinWorkloadGenerator(cluster, memory_model=memory_model)
        workload = scale_to_load(
            generator.generate(args.jobs, seed=args.seed), args.load
        )
        outcome = run_instance(workload, ALGORITHMS, penalty_seconds=args.penalty)
        stretches = outcome.max_stretches()
        advantage = stretches["easy"] / min(
            stretches["greedy-pmtn"], stretches["dynmcb8-asap-per-600"]
        )
        for name in ALGORITHMS:
            rows.append([label, name, stretches[name]])
        rows.append([label, "-> batch/DFRS max-stretch ratio", advantage])

    print(
        format_table(
            ["memory scenario", "algorithm", "max stretch"],
            rows,
            title=(
                "Memory pressure vs. the DFRS advantage "
                f"(load {args.load}, {args.penalty:.0f}-second penalty)"
            ),
        )
    )
    print(
        "\nReading: the larger the per-task memory requirement, the fewer "
        "co-location opportunities exist, and the smaller the batch/DFRS gap "
        "becomes — the paper's motivating observation in reverse."
    )


if __name__ == "__main__":
    main()
