"""The :class:`Platform` contract, its registry, and the standard platforms.

A *platform* is a named, declarative description of the machine a scenario
runs on: how many nodes, how fast and how big each node is, and (optionally)
when nodes fail and recover.  It mirrors the :mod:`repro.traces` design — a
small contract with a canonical ``to_dict``/``from_dict`` spec form and a
``type``-dispatching registry — so a platform can be written in a
``repro-dfrs run`` spec file exactly like a workload source can.

Two platforms are provided:

* :class:`HomogeneousPlatform` wraps today's :class:`~repro.core.cluster.
  Cluster` **byte-identically**: its cluster carries no capacity vectors, so
  every engine, scheduler, and packing code path takes the original
  homogeneous arithmetic.
* :class:`NodeClassesPlatform` describes a heterogeneous machine as an
  ordered list of :class:`NodeClass` entries (count, relative CPU speed,
  relative memory size); its cluster carries per-node capacity vectors and
  nodes are laid out class by class in declaration order.  A single all-ones
  class canonicalises to the homogeneous cluster, so "heterogeneous in shape
  but not in fact" costs nothing.

Either platform may carry a :class:`~repro.platform.events.NodeEventSource`
(``events``) plus a ``failure_policy`` telling the engine what happens to
the tasks of a failed node:

* ``"resubmit"`` (default) — jobs with a task on the node are killed and
  requeued from scratch (progress lost, no state saved);
* ``"migrate"`` — jobs are checkpointed to storage exactly like a scheduler
  preemption (progress kept, preemption cost charged, resume penalty paid
  when a scheduler later restarts them elsewhere).  This policy needs a
  scheduler that resumes paused jobs (the pmtn/dynmcb8 families).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.cluster import Cluster
from ..exceptions import ConfigurationError
from .events import NodeEventSource, node_event_source_from_dict

__all__ = [
    "FAILURE_POLICIES",
    "DEFAULT_BUSY_WATTS",
    "DEFAULT_IDLE_WATTS",
    "Platform",
    "HomogeneousPlatform",
    "NodeClass",
    "NodeClassesPlatform",
    "register_platform",
    "platform_from_dict",
    "available_platforms",
]

#: Engine policies for tasks running on a node when it fails.
FAILURE_POLICIES = ("resubmit", "migrate")

#: Reference-node power draw (watts), used for node classes that declare no
#: watts of their own on a platform where at least one class does.
DEFAULT_BUSY_WATTS = 300.0
DEFAULT_IDLE_WATTS = 180.0


class Platform:
    """Abstract declarative description of the simulated machine."""

    kind: str = "abstract"
    #: True when ``to_dict()`` round-trips through :func:`platform_from_dict`.
    spec_expressible: bool = True
    #: Optional availability trace (set by the concrete dataclasses).
    events: Optional[NodeEventSource] = None
    #: What the engine does to tasks on a failed node (see module docstring).
    failure_policy: str = "resubmit"

    def build_cluster(self) -> Cluster:
        """The :class:`~repro.core.cluster.Cluster` this platform describes."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """Canonical spec dictionary (with a ``type`` field)."""
        raise NotImplementedError

    def node_class_names(self) -> Optional[Tuple[str, ...]]:
        """Per-node class-name tuple, or ``None`` when classless.

        Overhead models with per-class parameters (e.g. checkpoint bandwidth
        per node class) consult this through
        :attr:`repro.core.engine.SimulationConfig.node_class_names`.
        """
        return None

    def power_vectors(self) -> Optional[Tuple[Tuple[float, float], ...]]:
        """Per-node ``(busy_watts, idle_watts)`` draw, or ``None``.

        ``None`` (the default) disables energy accounting entirely — the
        engine's default path is untouched.
        """
        return None

    def _events_spec(self) -> Dict[str, Any]:
        """The shared tail of the spec form: events + failure policy."""
        if self.events is None:
            return {}
        return {
            "events": self.events.to_dict(),
            "failure_policy": self.failure_policy,
        }

    def _check_failure_policy(self) -> None:
        if self.failure_policy not in FAILURE_POLICIES:
            raise ConfigurationError(
                f"failure_policy must be one of {', '.join(FAILURE_POLICIES)}; "
                f"got {self.failure_policy!r}"
            )


def _coerce_events(events: Any) -> Optional[NodeEventSource]:
    """Accept an event source object or its spec dictionary."""
    if events is None or isinstance(events, NodeEventSource):
        return events
    if isinstance(events, Mapping):
        return node_event_source_from_dict(events)
    raise ConfigurationError(
        f"platform events must be a NodeEventSource or a spec mapping, "
        f"got {type(events).__name__}"
    )


# --------------------------------------------------------------------------- #
# Registry                                                                     #
# --------------------------------------------------------------------------- #
_PLATFORM_TYPES: Dict[str, Callable[..., Platform]] = {}


def register_platform(kind: str, factory: Callable[..., Platform]) -> None:
    """Register a platform type under its spec ``type`` name."""
    if kind in _PLATFORM_TYPES:
        raise ConfigurationError(f"platform type {kind!r} already registered")
    _PLATFORM_TYPES[kind] = factory


def available_platforms() -> List[str]:
    """Registered spec-expressible platform type names, sorted."""
    return sorted(_PLATFORM_TYPES)


def platform_from_dict(data: Mapping[str, Any]) -> Platform:
    """Build a platform from its spec dictionary (inverse of ``to_dict``)."""
    payload = dict(data)
    kind = payload.pop("type", None)
    if kind is None:
        raise ConfigurationError("platform spec needs a 'type' field")
    try:
        factory = _PLATFORM_TYPES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown platform type {kind!r}; known types: "
            f"{', '.join(available_platforms())}"
        ) from None
    try:
        return factory(**payload)
    except TypeError as error:
        raise ConfigurationError(
            f"invalid options for platform {kind!r}: {error}"
        ) from None


# --------------------------------------------------------------------------- #
# Homogeneous adapter                                                          #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class HomogeneousPlatform(Platform):
    """The paper's homogeneous cluster as a platform.

    ``build_cluster`` returns a plain :class:`~repro.core.cluster.Cluster`
    with no capacity vectors, so every downstream code path is byte-identical
    to constructing the cluster directly.
    """

    nodes: int = 128
    cores_per_node: int = 4
    node_memory_gb: float = 8.0
    events: Optional[NodeEventSource] = None
    failure_policy: str = "resubmit"

    kind = "homogeneous"

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", _coerce_events(self.events))
        self._check_failure_policy()
        # Validate the cluster parameters eagerly (same errors as Cluster).
        self.build_cluster()

    def build_cluster(self) -> Cluster:
        return Cluster(self.nodes, self.cores_per_node, self.node_memory_gb)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "type": self.kind,
            "nodes": self.nodes,
            "cores_per_node": self.cores_per_node,
            "node_memory_gb": self.node_memory_gb,
        }
        data.update(self._events_spec())
        return data


# --------------------------------------------------------------------------- #
# Heterogeneous node classes                                                   #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class NodeClass:
    """One group of identical nodes inside a :class:`NodeClassesPlatform`.

    ``cpu`` is the class's CPU capacity relative to the reference node (2.0 =
    twice the fluid CPU of a reference node); ``memory`` is its memory
    capacity relative to the reference node's ``node_memory_gb``.
    """

    name: str
    count: int
    cpu: float = 1.0
    memory: float = 1.0
    #: Optional power draw of one node of this class (watts).  ``None``
    #: (the default) leaves the class out of energy accounting: the platform
    #: only reports power vectors when at least one class declares watts, and
    #: classes without them fall back to the reference draw (300 W busy /
    #: 180 W idle).  Both fields are serialised only when set, so platforms
    #: without power declarations keep their existing spec form and hash.
    busy_watts: Optional[float] = None
    idle_watts: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("node class needs a non-empty name")
        if self.count < 1:
            raise ConfigurationError(
                f"node class {self.name!r}: count must be >= 1, got {self.count}"
            )
        if self.cpu <= 0:
            raise ConfigurationError(
                f"node class {self.name!r}: cpu must be > 0, got {self.cpu}"
            )
        if self.memory <= 0:
            raise ConfigurationError(
                f"node class {self.name!r}: memory must be > 0, got {self.memory}"
            )
        for label, watts in (("busy_watts", self.busy_watts),
                             ("idle_watts", self.idle_watts)):
            if watts is not None and watts < 0:
                raise ConfigurationError(
                    f"node class {self.name!r}: {label} must be >= 0, "
                    f"got {watts}"
                )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "count": self.count,
            "cpu": self.cpu,
            "memory": self.memory,
        }
        if self.busy_watts is not None:
            data["busy_watts"] = self.busy_watts
        if self.idle_watts is not None:
            data["idle_watts"] = self.idle_watts
        return data

    @classmethod
    def of(cls, spec: Any) -> "NodeClass":
        if isinstance(spec, NodeClass):
            return spec
        if isinstance(spec, Mapping):
            payload = dict(spec)
            try:
                return cls(**payload)
            except TypeError as error:
                raise ConfigurationError(
                    f"invalid node class spec {spec!r}: {error}"
                ) from None
        raise ConfigurationError(
            f"cannot interpret node class spec {spec!r}"
        )


@dataclass(frozen=True)
class NodeClassesPlatform(Platform):
    """Heterogeneous cluster described as an ordered list of node classes.

    Nodes are laid out class by class in declaration order, so node indices
    ``0 .. count_0-1`` belong to the first class, and so on (see
    :meth:`class_of_node`).  ``node_memory_gb`` is the physical memory of the
    capacity-1.0 *reference* node, which keeps the preemption/migration byte
    accounting consistent across classes.
    """

    classes: Tuple[NodeClass, ...] = ()
    cores_per_node: int = 4
    node_memory_gb: float = 8.0
    events: Optional[NodeEventSource] = None
    failure_policy: str = "resubmit"

    kind = "node-classes"

    def __post_init__(self) -> None:
        if not self.classes:
            raise ConfigurationError(
                "NodeClassesPlatform needs at least one node class"
            )
        object.__setattr__(
            self, "classes", tuple(NodeClass.of(spec) for spec in self.classes)
        )
        names = [node_class.name for node_class in self.classes]
        if len(names) != len(set(names)):
            raise ConfigurationError("node class names must be unique")
        object.__setattr__(self, "events", _coerce_events(self.events))
        self._check_failure_policy()
        self.build_cluster()

    @property
    def num_nodes(self) -> int:
        return sum(node_class.count for node_class in self.classes)

    def class_of_node(self, node: int) -> NodeClass:
        """The class owning node index ``node`` (classes laid out in order)."""
        cursor = node
        for node_class in self.classes:
            if cursor < node_class.count:
                return node_class
            cursor -= node_class.count
        raise ConfigurationError(
            f"node index {node} out of range [0, {self.num_nodes})"
        )

    def node_class_names(self) -> Optional[Tuple[str, ...]]:
        names: List[str] = []
        for node_class in self.classes:
            names.extend([node_class.name] * node_class.count)
        return tuple(names)

    def power_vectors(self) -> Optional[Tuple[Tuple[float, float], ...]]:
        if all(
            node_class.busy_watts is None and node_class.idle_watts is None
            for node_class in self.classes
        ):
            return None
        vectors: List[Tuple[float, float]] = []
        for node_class in self.classes:
            busy = (
                node_class.busy_watts
                if node_class.busy_watts is not None
                else DEFAULT_BUSY_WATTS
            )
            idle = (
                node_class.idle_watts
                if node_class.idle_watts is not None
                else DEFAULT_IDLE_WATTS
            )
            vectors.extend([(busy, idle)] * node_class.count)
        return tuple(vectors)

    def build_cluster(self) -> Cluster:
        cpu: List[float] = []
        memory: List[float] = []
        for node_class in self.classes:
            cpu.extend([node_class.cpu] * node_class.count)
            memory.extend([node_class.memory] * node_class.count)
        # Cluster canonicalises all-ones vectors to None, so a single
        # reference-class platform produces the homogeneous cluster exactly.
        return Cluster(
            num_nodes=self.num_nodes,
            cores_per_node=self.cores_per_node,
            node_memory_gb=self.node_memory_gb,
            cpu_capacities=tuple(cpu),
            mem_capacities=tuple(memory),
        )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "type": self.kind,
            "classes": [node_class.to_dict() for node_class in self.classes],
            "cores_per_node": self.cores_per_node,
            "node_memory_gb": self.node_memory_gb,
        }
        data.update(self._events_spec())
        return data


def _node_classes_from_spec(
    classes: Sequence[Any] = (),
    cores_per_node: int = 4,
    node_memory_gb: float = 8.0,
    events: Optional[Mapping[str, Any]] = None,
    failure_policy: str = "resubmit",
) -> NodeClassesPlatform:
    return NodeClassesPlatform(
        classes=tuple(NodeClass.of(spec) for spec in classes),
        cores_per_node=int(cores_per_node),
        node_memory_gb=float(node_memory_gb),
        events=events,
        failure_policy=failure_policy,
    )


register_platform("homogeneous", HomogeneousPlatform)
register_platform("node-classes", _node_classes_from_spec)
