"""Heterogeneous and dynamic platform descriptions (the platform seam).

All new machine models plug in here, not into :mod:`repro.core.cluster`:

* :class:`Platform` is the contract — a declarative machine description with
  a canonical ``to_dict``/``from_dict`` spec form and a ``type``-dispatching
  registry, mirroring :class:`repro.traces.JobSource`;
* :class:`HomogeneousPlatform` wraps the paper's homogeneous cluster
  byte-identically; :class:`NodeClassesPlatform` describes heterogeneous
  machines as ordered node classes (count × relative CPU speed × relative
  memory size);
* :class:`NodeEventSource` streams timed node availability (failure/repair)
  events: synthetic :class:`ExponentialFailureSource` /
  :class:`WeibullFailureSource` models plus inline
  (:class:`TraceNodeEventSource`) and on-disk JSON
  (:class:`JsonNodeEventSource`) traces.

Scenarios reach all of it through the spec-expressible ``platform`` block
(:mod:`repro.campaign.scenario`); ``repro-dfrs platform inspect|validate``
is the file-level toolkit.
"""

from .base import (
    DEFAULT_BUSY_WATTS,
    DEFAULT_IDLE_WATTS,
    FAILURE_POLICIES,
    HomogeneousPlatform,
    NodeClass,
    NodeClassesPlatform,
    Platform,
    available_platforms,
    platform_from_dict,
    register_platform,
)
from .events import (
    NODE_EVENTS_JSON_FORMAT,
    ExponentialFailureSource,
    JsonNodeEventSource,
    NodeEvent,
    NodeEventSource,
    TraceNodeEventSource,
    WeibullFailureSource,
    available_node_event_sources,
    node_event_source_from_dict,
    register_node_event_source,
    write_node_events_json,
)

__all__ = [
    "FAILURE_POLICIES",
    "DEFAULT_BUSY_WATTS",
    "DEFAULT_IDLE_WATTS",
    "Platform",
    "HomogeneousPlatform",
    "NodeClass",
    "NodeClassesPlatform",
    "available_platforms",
    "platform_from_dict",
    "register_platform",
    "NODE_EVENTS_JSON_FORMAT",
    "NodeEvent",
    "NodeEventSource",
    "ExponentialFailureSource",
    "WeibullFailureSource",
    "TraceNodeEventSource",
    "JsonNodeEventSource",
    "available_node_event_sources",
    "node_event_source_from_dict",
    "register_node_event_source",
    "write_node_events_json",
]
