"""Timed node availability: failure/repair traces for dynamic platforms.

A :class:`NodeEventSource` is the platform-side sibling of
:class:`repro.traces.JobSource`: a named, deterministic, **re-iterable**
producer of a time-ordered stream of :class:`NodeEvent`s (node went down /
came back up) for a given cluster.  The engine consumes the stream once at
the start of a run (failure traces are tiny next to job traces — one entry
per failure, not per job) and turns it into ``NODE_DOWN``/``NODE_UP``
simulation events.

The contract:

* ``events(cluster)`` yields events with **non-decreasing times** and node
  indices inside the cluster; both are validated.
* Iterating twice yields the same stream (sources are pure descriptions;
  all randomness is seeded).
* ``to_dict()`` returns the canonical spec form; such dictionaries
  round-trip through :func:`node_event_source_from_dict` and can appear in
  ``repro-dfrs run`` spec files inside a scenario's ``platform`` block.

Two synthetic models cover the classic availability literature —
:class:`ExponentialFailureSource` (memoryless failures, the Poisson-process
baseline) and :class:`WeibullFailureSource` (shape < 1 captures the
infant-mortality / long-tail behaviour reported for real HPC failure traces)
— plus two trace forms: :class:`TraceNodeEventSource` (events inline in the
spec) and :class:`JsonNodeEventSource` (the ``repro-dfrs-node-events-v1``
JSON file format, content-fingerprinted into scenario hashes the same way
SWF workload files are).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.cluster import Cluster
from ..exceptions import ConfigurationError

__all__ = [
    "NodeEvent",
    "NodeEventSource",
    "ExponentialFailureSource",
    "WeibullFailureSource",
    "TraceNodeEventSource",
    "JsonNodeEventSource",
    "register_node_event_source",
    "node_event_source_from_dict",
    "available_node_event_sources",
    "write_node_events_json",
    "NODE_EVENTS_JSON_FORMAT",
]

#: Format tag of the node-event JSON trace files.
NODE_EVENTS_JSON_FORMAT = "repro-dfrs-node-events-v1"


@dataclass(frozen=True)
class NodeEvent:
    """One change of a node's availability: down (``up=False``) or repaired."""

    time: float
    node: int
    up: bool

    def __post_init__(self) -> None:
        if not math.isfinite(self.time) or self.time < 0:
            raise ConfigurationError(
                f"node event time must be finite and >= 0, got {self.time}"
            )
        if self.node < 0:
            raise ConfigurationError(
                f"node event index must be >= 0, got {self.node}"
            )

    @property
    def kind(self) -> str:
        return "up" if self.up else "down"


class NodeEventSource:
    """Abstract producer of a time-ordered node availability stream."""

    kind: str = "abstract"
    #: True when ``to_dict()`` round-trips through
    #: :func:`node_event_source_from_dict`.
    spec_expressible: bool = True

    def events(self, cluster: Cluster) -> Iterator[NodeEvent]:
        """Yield availability events in time order for ``cluster``."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """Canonical spec dictionary (with a ``type`` field)."""
        raise NotImplementedError

    def materialize(self, cluster: Cluster) -> List[NodeEvent]:
        """Collect and validate the full event stream for ``cluster``."""
        return list(self.events(cluster))


def _check_stream(
    events: Iterable[NodeEvent], cluster: Cluster, origin: str
) -> Iterator[NodeEvent]:
    """Validate ordering and node range while passing events through."""
    previous = -math.inf
    for position, event in enumerate(events):
        if event.time < previous:
            raise ConfigurationError(
                f"{origin}: node events must be time-ordered; event "
                f"{position} at t={event.time:.3f} follows t={previous:.3f}"
            )
        if event.node >= cluster.num_nodes:
            raise ConfigurationError(
                f"{origin}: event {position} names node {event.node} but the "
                f"cluster only has {cluster.num_nodes} nodes"
            )
        previous = event.time
        yield event


# --------------------------------------------------------------------------- #
# Registry                                                                     #
# --------------------------------------------------------------------------- #
_NODE_EVENT_TYPES: Dict[str, Callable[..., NodeEventSource]] = {}


def register_node_event_source(
    kind: str, factory: Callable[..., NodeEventSource]
) -> None:
    """Register an event-source type under its spec ``type`` name."""
    if kind in _NODE_EVENT_TYPES:
        raise ConfigurationError(
            f"node event source type {kind!r} already registered"
        )
    _NODE_EVENT_TYPES[kind] = factory


def available_node_event_sources() -> List[str]:
    """Registered spec-expressible event-source type names, sorted."""
    return sorted(_NODE_EVENT_TYPES)


def node_event_source_from_dict(data: Mapping[str, Any]) -> NodeEventSource:
    """Build an event source from its spec dictionary (inverse of ``to_dict``)."""
    payload = dict(data)
    # Content fingerprints are derived state, not constructor arguments.
    payload.pop("content", None)
    kind = payload.pop("type", None)
    if kind is None:
        raise ConfigurationError("node event source spec needs a 'type' field")
    try:
        factory = _NODE_EVENT_TYPES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown node event source type {kind!r}; known types: "
            f"{', '.join(available_node_event_sources())}"
        ) from None
    try:
        return factory(**payload)
    except TypeError as error:
        raise ConfigurationError(
            f"invalid options for node event source {kind!r}: {error}"
        ) from None


# --------------------------------------------------------------------------- #
# Synthetic failure/repair models                                              #
# --------------------------------------------------------------------------- #
def _merged_per_node(
    cluster: Cluster,
    per_node: Callable[[int], List[NodeEvent]],
) -> List[NodeEvent]:
    """Merge independently generated per-node streams into one time order.

    The sort is stable on ``(time, node)`` with down-before-up at exact ties
    of the same instant across nodes, which makes the merged stream fully
    deterministic.
    """
    merged: List[NodeEvent] = []
    for node in range(cluster.num_nodes):
        merged.extend(per_node(node))
    merged.sort(key=lambda event: (event.time, event.node, event.up))
    return merged


@dataclass(frozen=True)
class ExponentialFailureSource(NodeEventSource):
    """Independent exponential failure/repair processes per node.

    Every node alternates up intervals drawn from ``Exp(mtbf_seconds)`` and
    down intervals drawn from ``Exp(mttr_seconds)``, starting up at t = 0.
    ``horizon_seconds`` bounds failure *onsets*; the matching repair is
    always emitted (possibly past the horizon) so no node stays dead
    forever.  Node ``n`` uses the seed sequence ``(seed, n)``, so streams
    are deterministic, re-iterable, and node-decorrelated.
    """

    mtbf_seconds: float = 86400.0
    mttr_seconds: float = 3600.0
    horizon_seconds: float = 604800.0
    seed: int = 2010

    kind = "exponential"

    def __post_init__(self) -> None:
        if self.mtbf_seconds <= 0:
            raise ConfigurationError(
                f"mtbf_seconds must be > 0, got {self.mtbf_seconds}"
            )
        if self.mttr_seconds <= 0:
            raise ConfigurationError(
                f"mttr_seconds must be > 0, got {self.mttr_seconds}"
            )
        if self.horizon_seconds <= 0:
            raise ConfigurationError(
                f"horizon_seconds must be > 0, got {self.horizon_seconds}"
            )

    def _uptime(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mtbf_seconds))

    def _downtime(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mttr_seconds))

    def _node_stream(self, node: int) -> List[NodeEvent]:
        rng = np.random.default_rng([self.seed, node])
        events: List[NodeEvent] = []
        t = 0.0
        while True:
            t += self._uptime(rng)
            if t >= self.horizon_seconds:
                break
            events.append(NodeEvent(time=t, node=node, up=False))
            t += self._downtime(rng)
            events.append(NodeEvent(time=t, node=node, up=True))
        return events

    def events(self, cluster: Cluster) -> Iterator[NodeEvent]:
        merged = _merged_per_node(cluster, self._node_stream)
        return _check_stream(merged, cluster, self.kind)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "mtbf_seconds": self.mtbf_seconds,
            "mttr_seconds": self.mttr_seconds,
            "horizon_seconds": self.horizon_seconds,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class WeibullFailureSource(ExponentialFailureSource):
    """Weibull-distributed uptimes (exponential repairs).

    ``shape < 1`` gives the decreasing hazard rate (many early failures,
    long quiet tails) reported for real HPC availability traces;
    ``shape = 1`` degenerates to :class:`ExponentialFailureSource`.  The
    Weibull scale is derived from ``mtbf_seconds`` so the *mean* uptime
    matches the requested MTBF regardless of shape:
    ``scale = mtbf / Γ(1 + 1/shape)``.
    """

    shape: float = 0.7

    kind = "weibull"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.shape <= 0:
            raise ConfigurationError(f"shape must be > 0, got {self.shape}")
        # The gamma-corrected scale is a pure function of the frozen fields;
        # compute it once, not once per uptime draw.
        object.__setattr__(
            self,
            "_scale",
            self.mtbf_seconds / math.gamma(1.0 + 1.0 / self.shape),
        )

    def _uptime(self, rng: np.random.Generator) -> float:
        return float(self._scale * rng.weibull(self.shape))

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        data["type"] = self.kind
        data["shape"] = self.shape
        return data


# --------------------------------------------------------------------------- #
# Trace forms                                                                  #
# --------------------------------------------------------------------------- #
def _event_from_triple(triple: Sequence[Any], position: int) -> NodeEvent:
    if len(triple) != 3:
        raise ConfigurationError(
            f"node event {position} must be [time, node, 'down'|'up'], "
            f"got {list(triple)!r}"
        )
    time, node, kind = triple
    if kind not in ("down", "up"):
        raise ConfigurationError(
            f"node event {position}: kind must be 'down' or 'up', got {kind!r}"
        )
    return NodeEvent(time=float(time), node=int(node), up=(kind == "up"))


@dataclass(frozen=True)
class TraceNodeEventSource(NodeEventSource):
    """Availability events listed inline in the spec.

    ``events`` is a sequence of ``[time, node, "down"|"up"]`` triples in
    time order — the same rows as the JSON trace file format, but embedded
    directly, which is convenient for small hand-written scenarios and for
    tests.
    """

    events_list: Tuple[Tuple[float, int, str], ...] = ()

    kind = "trace"

    def __post_init__(self) -> None:
        canonical: List[Tuple[float, int, str]] = []
        for position, triple in enumerate(self.events_list):
            event = _event_from_triple(triple, position)
            canonical.append((event.time, event.node, event.kind))
        object.__setattr__(self, "events_list", tuple(canonical))
        times = [time for time, _, _ in self.events_list]
        if times != sorted(times):
            raise ConfigurationError(
                "inline node events must be listed in time order"
            )

    def events(self, cluster: Cluster) -> Iterator[NodeEvent]:
        stream = (
            _event_from_triple(triple, position)
            for position, triple in enumerate(self.events_list)
        )
        return _check_stream(stream, cluster, self.kind)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "events": [[time, node, kind] for time, node, kind in self.events_list],
        }


def _trace_from_spec(events: Sequence[Sequence[Any]] = ()) -> TraceNodeEventSource:
    return TraceNodeEventSource(events_list=tuple(tuple(row) for row in events))


@dataclass(frozen=True)
class JsonNodeEventSource(NodeEventSource):
    """Availability events stored in a ``repro-dfrs-node-events-v1`` file.

    The file is a JSON object ``{"format": "repro-dfrs-node-events-v1",
    "events": [[time, node, "down"|"up"], ...]}`` (see
    :func:`write_node_events_json`).  Like SWF workload files, the file
    content is fingerprinted into the canonical spec form so editing a trace
    in place invalidates campaign caches instead of serving stale rows.
    """

    path: str = ""

    kind = "json"

    def __post_init__(self) -> None:
        if not self.path:
            raise ConfigurationError("JsonNodeEventSource needs a trace file path")

    def _load(self) -> List[Tuple[float, int, str]]:
        path = Path(self.path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise ConfigurationError(
                f"cannot read node event trace {path}: {error}"
            ) from None
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"invalid node event trace {path}: {error}"
            ) from None
        if (
            not isinstance(payload, Mapping)
            or payload.get("format") != NODE_EVENTS_JSON_FORMAT
        ):
            raise ConfigurationError(
                f"{path} is not a {NODE_EVENTS_JSON_FORMAT} file"
            )
        rows = payload.get("events", ())
        if not isinstance(rows, Sequence):
            raise ConfigurationError(f"{path}: 'events' must be a list")
        return [tuple(row) for row in rows]

    def events(self, cluster: Cluster) -> Iterator[NodeEvent]:
        stream = (
            _event_from_triple(row, position)
            for position, row in enumerate(self._load())
        )
        return _check_stream(stream, cluster, f"{self.kind}:{self.path}")

    def _content_fingerprint(self) -> Optional[str]:
        cached = getattr(self, "_content_cache", None)
        if cached is None:
            try:
                cached = hashlib.sha256(
                    Path(self.path).read_bytes()
                ).hexdigest()[:16]
            except OSError:
                cached = ""
            object.__setattr__(self, "_content_cache", cached)
        return cached or None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"type": self.kind, "path": self.path}
        fingerprint = self._content_fingerprint()
        if fingerprint is not None:
            data["content"] = fingerprint
        return data


def write_node_events_json(
    events: Iterable[NodeEvent], path: Union[str, Path]
) -> Path:
    """Write events as a ``repro-dfrs-node-events-v1`` trace file."""
    target = Path(path)
    payload = {
        "format": NODE_EVENTS_JSON_FORMAT,
        "events": [[event.time, event.node, event.kind] for event in events],
    }
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target


register_node_event_source("exponential", ExponentialFailureSource)
register_node_event_source("weibull", WeibullFailureSource)
register_node_event_source("trace", _trace_from_spec)
register_node_event_source("json", JsonNodeEventSource)
