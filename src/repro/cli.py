"""Command-line interface: ``repro-dfrs <experiment> [options]``.

Subcommands regenerate each artifact of the paper's evaluation section at a
configurable scale and print the corresponding table or figure series:

* ``figure1`` — average degradation factor vs. load (``--penalty`` selects
  panel (a) with 0 or panel (b) with 300 seconds);
* ``table1``  — degradation statistics on scaled / unscaled / HPC2N-like
  workloads;
* ``table2``  — preemption and migration costs under high load;
* ``timing``  — scheduling-decision computation time (§V);
* ``compare`` — run a single generated trace under chosen algorithms and
  print per-algorithm stretch statistics (useful for quick exploration).

Ablation and extension studies beyond the paper's artifacts:

* ``period-sweep``     — scheduling-period sensitivity (T ∈ {60, 600, 3600});
* ``packing-ablation`` — MCB8 vs. the other registered packing heuristics;
* ``utilization``      — busy nodes, energy, and fairness per algorithm;
* ``extensions``       — throttled / weighted / conservative extensions vs.
  the paper's best algorithm;
* ``characterize``     — the §I workload statistics (memory/CPU under-use,
  width histogram) for a synthetic trace or any SWF file.

Campaign-layer subcommands:

* ``run``        — execute any scenario described in a JSON/TOML spec file
  (see :mod:`repro.campaign.spec`) with zero new driver code;
* ``algorithms`` — list the scheduler registry with its name grammar.

Platform subcommands (``repro-dfrs platform <command>``, see
:mod:`repro.platform`):

* ``platform inspect``  — node classes, per-class capacities, aggregate
  capacity, and a preview of the availability (failure/repair) trace of a
  platform spec — or of the ``platform`` block of a scenario spec;
* ``platform validate`` — build the platform, round-trip its canonical spec
  form through the registry, and fully check the availability trace
  (ordering, node ranges).

Trace subcommands (``repro-dfrs trace <command>``, see :mod:`repro.traces`):

* ``trace inspect``       — SWF header directives and stream statistics;
* ``trace characterize``  — the §I workload statistics for any trace file or
  trace-source spec (synthetic generators and transform chains included),
  computed in one bounded-memory streaming pass so gzipped million-job
  archives profile without blowing RAM;
* ``trace transform``     — materialize a trace-source spec (e.g. a
  transform chain over a generator) to an SWF or internal JSON trace file;
* ``trace convert``       — convert between SWF and the internal JSON trace
  format (``.gz`` handled transparently in both directions).

Every experiment subcommand honours ``--export-dir PATH`` (write the tidy
per-run rows and full campaign payloads as CSV/JSON).  The
simulation-backed subcommands also honour ``--cache-dir PATH`` (resume
interrupted campaigns from the on-disk run cache).  ``run`` and
``compare`` additionally honour ``--streaming-metrics`` (bounded-memory
execution: instances stream into the engine, per-job records reduce to
mergeable online statistics, rows merge per cell — see
:mod:`repro.metrics`); the paper-artifact drivers refuse the flag because
merged rows would change their per-instance aggregation semantics.
``packing-ablation`` runs no simulations and keeps no run cache.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional, Sequence

from .campaign.executor import Campaign, export_campaign_artifacts
from .campaign.spec import load_scenario
from .campaign.studies import compare_scenario
from .core.cluster import Cluster
from .devtools.cli import add_dev_subparser, run_dev_command
from .experiments.config import ExperimentConfig, default_scale
from .experiments.extensions import run_extensions_comparison
from .experiments.figure1 import run_figure1
from .experiments.packing_ablation import run_packing_ablation
from .experiments.period_sweep import run_period_sweep
from .experiments.reporting import format_table
from .experiments.table1 import run_table1
from .experiments.table2 import run_table2
from .experiments.timing import run_timing_study
from .experiments.utilization_study import run_utilization_study
from .obs.cli import (
    add_obs_subparser,
    add_profile_subparser,
    run_obs_command,
    run_profile_command,
)
from .schedulers.registry import algorithm_catalog
from .serve.cli import (
    add_serve_subparsers,
    run_loadtest_command,
    run_serve_command,
    run_soak_command,
)
from .workloads import (
    HPC2N_CLUSTER,
    characterization_table,
    characterize,
    parse_swf,
    size_histogram,
    swf_to_dfrs_jobs,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-dfrs`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-dfrs",
        description=(
            "Reproduce the evaluation of 'Dynamic Fractional Resource "
            "Scheduling for HPC Workloads' (IPDPS 2010)."
        ),
    )
    parser.add_argument(
        "--nodes", type=int, default=None, help="cluster size (default 128)"
    )
    parser.add_argument(
        "--num-traces", type=int, default=None, help="synthetic traces per load level"
    )
    parser.add_argument(
        "--num-jobs", type=int, default=None, help="jobs per synthetic trace"
    )
    parser.add_argument(
        "--loads",
        type=str,
        default=None,
        help="comma-separated offered-load levels, e.g. 0.1,0.5,0.9",
    )
    parser.add_argument(
        "--algorithms",
        type=str,
        default=None,
        help=(
            "comma-separated algorithm names "
            "(run 'repro-dfrs algorithms' for the full list)"
        ),
    )
    parser.add_argument(
        "--penalty",
        type=float,
        default=None,
        help="rescheduling penalty in seconds (0 or 300 in the paper)",
    )
    parser.add_argument("--seed", type=int, default=None, help="base random seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for the instance x algorithm fan-out "
            "(default 1 = serial, 0 = one per CPU); results are identical "
            "to a serial run"
        ),
    )
    parser.add_argument(
        "--export-dir",
        type=str,
        default=None,
        help=(
            "write the campaign artifacts behind the printed output "
            "(tidy per-run rows as CSV, full payload as JSON) to this directory"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help=(
            "resumable campaign run cache: finished cells are persisted here "
            "(keyed by scenario hash) and reloaded on rerun"
        ),
    )
    parser.add_argument(
        "--streaming-metrics",
        action="store_true",
        help=(
            "bounded-memory campaign execution (run/compare only): "
            "instances stream straight into the engine, per-job records "
            "are reduced to mergeable online statistics (exact max/mean, "
            "sketched p50/p90/p99), and each cell's rows are merged across "
            "instances; memory is independent of trace length"
        ),
    )

    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("figure1", help="degradation factor vs. load")
    subparsers.add_parser("table1", help="degradation statistics per workload family")
    subparsers.add_parser("table2", help="preemption and migration costs")
    subparsers.add_parser("timing", help="scheduling computation time study")
    compare = subparsers.add_parser(
        "compare", help="run one synthetic trace under several algorithms"
    )
    compare.add_argument("--load", type=float, default=0.7, help="offered load")

    period = subparsers.add_parser(
        "period-sweep", help="scheduling-period sensitivity study"
    )
    period.add_argument(
        "--base-algorithm",
        type=str,
        default="dynmcb8-asap-per",
        help="unsuffixed periodic algorithm name",
    )
    period.add_argument("--load", type=float, default=0.7, help="offered load")
    period.add_argument(
        "--periods",
        type=str,
        default="60,600,3600",
        help="comma-separated periods in seconds",
    )

    packing = subparsers.add_parser(
        "packing-ablation", help="compare packing heuristics on random instances"
    )
    packing.add_argument(
        "--pack-nodes", type=int, default=32, help="bins per packing instance"
    )
    packing.add_argument(
        "--pack-instances", type=int, default=25, help="number of packing instances"
    )
    packing.add_argument(
        "--pack-jobs", type=int, default=24, help="jobs per packing instance"
    )

    utilization = subparsers.add_parser(
        "utilization", help="busy nodes, energy, and fairness per algorithm"
    )
    utilization.add_argument("--load", type=float, default=0.5, help="offered load")

    subparsers.add_parser(
        "extensions", help="extension schedulers vs. the paper's best algorithm"
    )

    profile = subparsers.add_parser(
        "characterize",
        help="profile a workload (synthetic by default, or an SWF file) with the §I statistics",
    )
    profile.add_argument(
        "--swf", type=str, default=None, help="path to an SWF trace to profile instead"
    )
    profile.add_argument(
        "--load", type=float, default=None, help="rescale the synthetic trace to this load"
    )

    run = subparsers.add_parser(
        "run", help="execute a scenario described in a JSON/TOML spec file"
    )
    run.add_argument("spec", type=str, help="path to the scenario spec file")

    subparsers.add_parser(
        "algorithms", help="list the scheduler registry and its name grammar"
    )

    platform = subparsers.add_parser(
        "platform", help="inspect and validate platform specs (see repro.platform)"
    )
    platform_sub = platform.add_subparsers(dest="platform_command", required=True)
    platform_inspect = platform_sub.add_parser(
        "inspect",
        help="print a platform's node classes, capacities, and availability model",
    )
    platform_inspect.add_argument(
        "spec",
        type=str,
        help="platform spec JSON (a platform object, or a scenario spec with a 'platform' block)",
    )
    platform_inspect.add_argument(
        "--events",
        type=int,
        default=10,
        help="number of availability events to preview (default 10)",
    )
    platform_validate = platform_sub.add_parser(
        "validate",
        help="build the platform and fully check its availability trace",
    )
    platform_validate.add_argument(
        "spec", type=str, help="platform spec JSON (as for 'platform inspect')"
    )

    trace = subparsers.add_parser(
        "trace", help="inspect, characterize, transform, and convert traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_inspect = trace_sub.add_parser(
        "inspect", help="print SWF header directives and stream statistics"
    )
    trace_inspect.add_argument("path", type=str, help="trace file (.swf[.gz] or .json[.gz])")
    trace_char = trace_sub.add_parser(
        "characterize",
        help="workload statistics (§I) for a trace file or trace-source spec",
    )
    trace_char.add_argument(
        "path",
        type=str,
        help="trace file (.swf[.gz]/.json[.gz]) or trace-source spec JSON",
    )
    trace_transform = trace_sub.add_parser(
        "transform",
        help="materialize a trace-source spec (e.g. a transform chain) to a file",
    )
    trace_transform.add_argument(
        "source",
        type=str,
        help="trace-source spec JSON file, or a trace file to transform from",
    )
    trace_transform.add_argument(
        "--output",
        type=str,
        required=True,
        help="output trace path (.json or .swf, optionally .gz)",
    )
    trace_convert = trace_sub.add_parser(
        "convert", help="convert between SWF and the internal JSON trace format"
    )
    trace_convert.add_argument("input", type=str, help="input trace file")
    trace_convert.add_argument("output", type=str, help="output trace file")

    add_dev_subparser(subparsers)
    add_serve_subparsers(subparsers)
    add_profile_subparser(subparsers)
    add_obs_subparser(subparsers)
    return parser


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    config = default_scale()
    if args.nodes is not None:
        config = replace(config, cluster=Cluster(args.nodes, 4, 8.0))
    if args.num_traces is not None:
        config = replace(config, num_traces=args.num_traces)
    if args.num_jobs is not None:
        config = replace(config, num_jobs=args.num_jobs)
    if args.loads is not None:
        levels = tuple(float(part) for part in args.loads.split(",") if part.strip())
        config = replace(config, load_levels=levels)
    if args.algorithms is not None:
        names = tuple(part.strip() for part in args.algorithms.split(",") if part.strip())
        config = replace(config, algorithms=names)
    if args.penalty is not None:
        config = replace(config, penalty_seconds=args.penalty)
    if args.seed is not None:
        config = replace(config, seed_base=args.seed)
    if args.workers is not None:
        config = replace(config, workers=args.workers)
    return config


def _campaign_from_args(
    args: argparse.Namespace, config: ExperimentConfig
) -> Campaign:
    return Campaign(
        workers=config.workers,
        cache_dir=args.cache_dir,
        streaming=bool(getattr(args, "streaming_metrics", False)),
    )


def _run_compare(
    config: ExperimentConfig, load: float, campaign: Campaign
):
    outcome = campaign.run(compare_scenario(config, load=load))
    rows = []
    for record in outcome.rows:
        rows.append(
            [
                record.algorithm,
                record.metric("max_stretch"),
                record.metric("mean_stretch"),
                record.metric("mean_turnaround"),
                record.metric("pmtn_per_job"),
                record.metric("migr_per_job"),
            ]
        )
    workload_name = outcome.rows[0].workload if outcome.rows else "?"
    text = format_table(
        ["algorithm", "max stretch", "mean stretch", "mean turnaround (s)",
         "pmtn/job", "migr/job"],
        rows,
        title=(
            f"Single-trace comparison ({workload_name}, load {load}, "
            f"{config.penalty_seconds:.0f}-second penalty)"
        ),
    )
    return text, [outcome]


def _run_characterize(
    config: ExperimentConfig, swf_path: Optional[str], load: Optional[float]
):
    """Profile either an SWF trace or a generated synthetic trace.

    Returns ``(text, workload)`` so the export path reuses the workload
    instead of parsing/generating it a second time.
    """
    from .experiments.runner import generate_synthetic_instances

    if swf_path is not None:
        workload = swf_to_dfrs_jobs(parse_swf(swf_path), HPC2N_CLUSTER)
    else:
        workload = generate_synthetic_instances(
            replace(config, num_traces=1), load=load
        )[0]
    profile = characterize(workload)
    lines = [characterization_table([profile]), "", "job width histogram:"]
    total = profile.num_jobs
    for label, count in size_histogram(workload):
        bar = "#" * max(1, round(40 * count / total))
        lines.append(f"  {label:>9s} tasks  {count:6d}  {bar}")
    return "\n".join(lines), workload


def _trace_cluster(args: argparse.Namespace, default: Cluster) -> Cluster:
    """Cluster for trace operations: ``--nodes`` wins, then the default."""
    if args.nodes is not None:
        return Cluster(args.nodes, 4, 8.0)
    return default


def _load_trace_source(path_text: str):
    """Resolve a CLI trace argument to ``(JobSource, default_cluster)``.

    Accepts SWF files (``.swf``/``.swf.gz``), internal JSON traces (the
    ``repro-dfrs-trace-v1`` format), and trace-source spec dictionaries
    (``{"type": ...}`` JSON files, e.g. a transform chain).  JSON files are
    read and parsed exactly once — internal-format payloads are turned into
    an in-memory source directly instead of being re-read from disk.
    """
    from .exceptions import ConfigurationError
    from .traces import (
        TRACE_JSON_FORMAT,
        SwfTraceSource,
        WorkloadTraceSource,
        trace_json_payload_to_workload,
        trace_source_from_dict,
    )
    from .workloads import open_trace_text

    path = Path(path_text)
    if not path.exists():
        raise ConfigurationError(f"trace file not found: {path}")
    name = path.name.lower()
    if name.endswith((".swf", ".swf.gz")):
        return SwfTraceSource(path=str(path)), HPC2N_CLUSTER
    if not name.endswith((".json", ".json.gz")):
        raise ConfigurationError(
            f"cannot interpret {path}: expected .swf[.gz], .json[.gz], or a "
            "trace-source spec JSON file"
        )
    with open_trace_text(path, "rt") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and payload.get("format") == TRACE_JSON_FORMAT:
        workload = trace_json_payload_to_workload(
            payload, origin=str(path), name_fallback=path.stem
        )
        return WorkloadTraceSource(workload=workload), workload.cluster
    if isinstance(payload, dict):
        return trace_source_from_dict(payload), Cluster(128, 4, 8.0)
    raise ConfigurationError(
        f"{path}: expected a trace-source spec object, got {type(payload).__name__}"
    )


def _run_trace_inspect(args: argparse.Namespace) -> None:
    from .workloads import read_swf_header

    path = Path(args.path)
    lines: List[str] = [f"trace: {path}"]
    if path.name.lower().endswith((".swf", ".swf.gz")):
        header = read_swf_header(path)
        if header.directives:
            lines.append("header directives:")
            for key, value in header.directives:
                lines.append(f"  {key}: {value}")
        else:
            lines.append("header directives: (none)")
    source, default_cluster = _load_trace_source(args.path)
    cluster = _trace_cluster(args, default_cluster)
    workload = source.materialize(cluster)
    stats = workload.statistics()
    lines.append(
        f"cluster: {cluster.num_nodes} nodes x {cluster.cores_per_node} cores, "
        f"{cluster.node_memory_gb:g} GB"
    )
    lines.append(f"usable jobs: {stats['num_jobs']}")
    if stats["num_jobs"]:
        lines.append(f"span: {stats['span_seconds'] / 3600.0:.1f} hours")
        lines.append(f"offered load: {stats['load']:.3f}")
        lines.append(
            f"widths: mean {stats['mean_tasks']:.1f}, max {stats['max_tasks']}, "
            f"serial fraction {stats['serial_fraction']:.2f}"
        )
        lines.append(
            f"runtimes: mean {stats['mean_runtime']:.0f} s, "
            f"median {stats['median_runtime']:.0f} s"
        )
    print("\n".join(lines))


def _run_trace_characterize(args: argparse.Namespace) -> None:
    from .workloads import characterize_stream

    source, default_cluster = _load_trace_source(args.path)
    cluster = _trace_cluster(args, default_cluster)
    # Single streaming pass: statistics and the width histogram accumulate
    # online, so a gzipped million-job archive trace never needs to be
    # resident (the runtime median/p95 come from a 0.1 %-accuracy sketch).
    profile, histogram = characterize_stream(
        source.jobs(cluster), cluster, name=source.default_name()
    )
    lines = [characterization_table([profile]), "", "job width histogram:"]
    total = profile.num_jobs
    for label, count in histogram:
        bar = "#" * max(1, round(40 * count / total))
        lines.append(f"  {label:>9s} tasks  {count:6d}  {bar}")
    print("\n".join(lines))


def _write_trace(workload, output: str) -> Path:
    from .exceptions import ConfigurationError
    from .traces import write_trace_json, write_workload_swf

    name = Path(output).name.lower()
    if name.endswith((".swf", ".swf.gz")):
        return write_workload_swf(workload, output)
    if name.endswith((".json", ".json.gz")):
        return write_trace_json(workload, output)
    raise ConfigurationError(
        f"output {output!r} must end in .swf[.gz] or .json[.gz]"
    )


def _run_trace_transform(args: argparse.Namespace, source_path: str, output: str) -> None:
    source, default_cluster = _load_trace_source(source_path)
    workload = source.materialize(_trace_cluster(args, default_cluster))
    written = _write_trace(workload, output)
    stats = workload.statistics()
    print(
        f"wrote {written} ({stats['num_jobs']} jobs, "
        f"load {stats.get('load', 0.0):.3f})"
    )


def _load_platform_spec(path_text: str):
    """Resolve a CLI platform argument to a built ``Platform``.

    Accepts a platform spec object (``{"type": ...}``) or a full scenario
    spec carrying a ``platform`` block, so the same file drives both
    ``repro-dfrs run`` and ``repro-dfrs platform inspect``.  Templated
    scenario platforms are resolved with the first value of each sweep axis
    (the representative cell), which is stated in the output.
    """
    from .exceptions import ConfigurationError
    from .platform import platform_from_dict

    path = Path(path_text)
    if not path.exists():
        raise ConfigurationError(f"platform spec not found: {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"invalid JSON in {path}: {error}") from None
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"{path}: expected a platform or scenario spec object"
        )
    note = ""
    if "platform" not in payload and "type" not in payload:
        if "source" in payload or "algorithms" in payload:
            raise ConfigurationError(
                f"{path}: this scenario spec has no 'platform' block to "
                "inspect (it runs on a plain homogeneous cluster)"
            )
        raise ConfigurationError(
            f"{path}: expected a platform spec (a 'type' field) or a "
            "scenario spec with a 'platform' block"
        )
    if "platform" in payload and "type" not in payload:
        # A scenario spec: pull the platform block out and resolve templates
        # with the representative (first-value) cell.
        from .campaign.scenario import scenario_from_dict

        scenario = scenario_from_dict(payload)
        if scenario.platform is None:
            # An event-free homogeneous platform is demoted to the plain
            # cluster form inside Scenario; describe the spec's own block.
            return platform_from_dict(payload["platform"]), note
        first = {axis: values[0] for axis, values in scenario.sweep}
        if scenario.has_platform_template:
            note = (
                f"(templated platform resolved with representative cell "
                f"{first})"
            )
        return scenario.resolved_platform(first), note
    return platform_from_dict(payload), note


def _describe_platform(platform, *, max_events: int) -> str:
    """Human-readable summary used by ``platform inspect``."""
    from .platform import NodeClassesPlatform

    cluster = platform.build_cluster()
    lines: List[str] = [f"platform: {platform.kind}"]
    lines.append(
        f"nodes: {cluster.num_nodes} x {cluster.cores_per_node} cores, "
        f"reference node {cluster.node_memory_gb:g} GB"
    )
    if isinstance(platform, NodeClassesPlatform):
        lines.append("node classes:")
        for node_class in platform.classes:
            lines.append(
                f"  {node_class.name:>12s}  count {node_class.count:4d}  "
                f"cpu x{node_class.cpu:g}  memory x{node_class.memory:g}"
            )
    lines.append(
        f"aggregate capacity: {cluster.total_cpu_capacity():g} CPU units, "
        f"{cluster.total_mem_capacity():g} memory units"
    )
    if platform.events is None:
        lines.append("availability: static (no failure trace)")
        return "\n".join(lines)
    events = platform.events.materialize(cluster)
    downs = sum(1 for event in events if not event.up)
    lines.append(
        f"availability: {platform.events.kind} trace, {len(events)} events "
        f"({downs} failures), failure policy '{platform.failure_policy}'"
    )
    for event in events[:max_events]:
        lines.append(
            f"  t={event.time:12.1f}s  node {event.node:4d}  {event.kind}"
        )
    if len(events) > max_events:
        lines.append(f"  ... {len(events) - max_events} more")
    return "\n".join(lines)


def _run_platform_inspect(args: argparse.Namespace) -> None:
    platform, note = _load_platform_spec(args.spec)
    if note:
        print(note)
    print(_describe_platform(platform, max_events=max(0, args.events)))


def _run_platform_validate(args: argparse.Namespace) -> None:
    from .platform import platform_from_dict

    platform, note = _load_platform_spec(args.spec)
    if note:
        print(note)
    # Round-trip through the registry: the canonical form must rebuild.
    rebuilt = platform_from_dict(platform.to_dict())
    cluster = rebuilt.build_cluster()
    if rebuilt.events is not None:
        # materialize() runs the full ordering/node-range validation.
        events = rebuilt.events.materialize(cluster)
        print(
            f"platform OK: {cluster.num_nodes} nodes, {len(events)} "
            "availability events, spec round-trips"
        )
    else:
        print(f"platform OK: {cluster.num_nodes} nodes, static, spec round-trips")


def _format_algorithms() -> str:
    """The ``algorithms`` subcommand body: registry listing with grammar."""
    rows: List[List[object]] = []
    for entry in algorithm_catalog():
        if entry["periodic"]:
            note = (
                "periodic: optional -<seconds> suffix "
                f"(default {entry['default_period']:.0f})"
            )
        elif entry["integer_suffix"]:
            note = "optional -<rows> multiprogramming-level suffix"
        else:
            note = "fixed name"
        rows.append(
            [
                entry["name"],
                entry["grammar"],
                "yes" if entry["paper"] else "-",
                note,
            ]
        )
    return format_table(
        ["name", "grammar", "paper", "notes"],
        rows,
        title="Registered scheduling algorithms (pass with --algorithms)",
    )


#: Subcommands whose output semantics are well-defined for merged streaming
#: rows.  The paper-artifact drivers (figure1/table1/...) aggregate
#: *per-instance* degradation factors; a merged pseudo-instance row would
#: silently change the estimator, so they refuse the flag instead.
_STREAMING_COMMANDS = ("run", "compare")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-dfrs`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "dev":
        # Static analysis neither builds an experiment config nor touches a
        # campaign cache; dispatch before either is constructed.
        return run_dev_command(args)
    if args.command == "serve":
        # The serving commands drive the engine directly (no campaign layer).
        return run_serve_command(args)
    if args.command == "loadtest":
        return run_loadtest_command(args)
    if args.command == "soak":
        # The soak harness drives the live serve stack directly.
        return run_soak_command(args)
    if args.command == "obs":
        # Bench gating reads artifacts only; no engine or campaign involved.
        return run_obs_command(args)
    if args.command == "profile":
        # Profiling drives one engine run directly from the scenario spec;
        # the experiment-config and campaign machinery never enter the path.
        return run_profile_command(args)
    if getattr(args, "streaming_metrics", False) and args.command not in _STREAMING_COMMANDS:
        parser.error(
            f"--streaming-metrics only applies to {' / '.join(_STREAMING_COMMANDS)}: "
            "the paper-artifact drivers average per-instance degradation "
            "factors, which the merged per-cell streaming rows would "
            "silently change"
        )
    config = _config_from_args(args)
    campaign = _campaign_from_args(args, config)

    campaigns = []
    if args.command == "figure1":
        result = run_figure1(config, campaign=campaign)
        print(result.format())
        campaigns = result.campaigns
    elif args.command == "table1":
        result = run_table1(config, campaign=campaign)
        print(result.format())
        campaigns = result.campaigns
    elif args.command == "table2":
        result = run_table2(config, campaign=campaign)
        print(result.format())
        campaigns = result.campaigns
    elif args.command == "timing":
        result = run_timing_study(config, campaign=campaign)
        print(result.format())
        campaigns = result.campaigns
    elif args.command == "compare":
        text, campaigns = _run_compare(config, args.load, campaign)
        print(text)
    elif args.command == "period-sweep":
        periods = tuple(float(part) for part in args.periods.split(",") if part.strip())
        result = run_period_sweep(
            config,
            base_algorithm=args.base_algorithm,
            periods=periods,
            load=args.load,
            campaign=campaign,
        )
        print(result.format())
        campaigns = result.campaigns
    elif args.command == "packing-ablation":
        result = run_packing_ablation(
            num_nodes=args.pack_nodes,
            num_instances=args.pack_instances,
            jobs_per_instance=args.pack_jobs,
            seed=config.seed_base,
            workers=config.workers,
        )
        print(result.format())
        campaigns = result.campaigns
    elif args.command == "utilization":
        result = run_utilization_study(config, load=args.load, campaign=campaign)
        print(result.format())
        campaigns = result.campaigns
    elif args.command == "characterize":
        text, workload = _run_characterize(config, args.swf, args.load)
        print(text)
        if args.export_dir is not None:
            target = Path(args.export_dir)
            target.mkdir(parents=True, exist_ok=True)
            if args.swf is not None:
                # Key the artifact to the trace so profiling two traces into
                # the same directory does not silently overwrite.
                workload_label = f"swf-{Path(args.swf).stem}"
            else:
                workload_label = "synthetic"
            profile_path = target / f"characterize-{workload_label}.json"
            profile_path.write_text(
                json.dumps(workload.statistics(), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            print(f"wrote {profile_path}")
    elif args.command == "extensions":
        if args.algorithms is not None:
            result = run_extensions_comparison(
                config, algorithms=config.algorithms, campaign=campaign
            )
        else:
            result = run_extensions_comparison(config, campaign=campaign)
        print(result.format())
        campaigns = result.campaigns
    elif args.command == "run":
        scenario = load_scenario(args.spec)
        outcome = campaign.run(scenario)
        print(outcome.format_summary())
        campaigns = [outcome]
    elif args.command == "algorithms":
        print(_format_algorithms())
    elif args.command == "platform":
        if args.platform_command == "inspect":
            _run_platform_inspect(args)
        elif args.platform_command == "validate":
            _run_platform_validate(args)
        else:  # pragma: no cover - argparse enforces the choices
            parser.error(f"unknown platform command {args.platform_command!r}")
    elif args.command == "trace":
        if args.trace_command == "inspect":
            _run_trace_inspect(args)
        elif args.trace_command == "characterize":
            _run_trace_characterize(args)
        elif args.trace_command == "transform":
            _run_trace_transform(args, args.source, args.output)
        elif args.trace_command == "convert":
            _run_trace_transform(args, args.input, args.output)
        else:  # pragma: no cover - argparse enforces the choices
            parser.error(f"unknown trace command {args.trace_command!r}")
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")

    if campaigns and args.export_dir is not None:
        for path in export_campaign_artifacts(campaigns, args.export_dir):
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
