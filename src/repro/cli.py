"""Command-line interface: ``repro-dfrs <experiment> [options]``.

Subcommands regenerate each artifact of the paper's evaluation section at a
configurable scale and print the corresponding table or figure series:

* ``figure1`` — average degradation factor vs. load (``--penalty`` selects
  panel (a) with 0 or panel (b) with 300 seconds);
* ``table1``  — degradation statistics on scaled / unscaled / HPC2N-like
  workloads;
* ``table2``  — preemption and migration costs under high load;
* ``timing``  — scheduling-decision computation time (§V);
* ``compare`` — run a single generated trace under chosen algorithms and
  print per-algorithm stretch statistics (useful for quick exploration).

Ablation and extension studies beyond the paper's artifacts:

* ``period-sweep``     — scheduling-period sensitivity (T ∈ {60, 600, 3600});
* ``packing-ablation`` — MCB8 vs. the other registered packing heuristics;
* ``utilization``      — busy nodes, energy, and fairness per algorithm;
* ``extensions``       — throttled / weighted / conservative extensions vs.
  the paper's best algorithm;
* ``characterize``     — the §I workload statistics (memory/CPU under-use,
  width histogram) for a synthetic trace or any SWF file.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional, Sequence

from .core.cluster import Cluster
from .experiments.config import ExperimentConfig, default_scale
from .experiments.extensions import run_extensions_comparison
from .experiments.figure1 import run_figure1
from .experiments.packing_ablation import run_packing_ablation
from .experiments.period_sweep import run_period_sweep
from .experiments.reporting import format_table
from .experiments.runner import generate_synthetic_instances, run_instance
from .experiments.table1 import run_table1
from .experiments.table2 import run_table2
from .experiments.timing import run_timing_study
from .experiments.utilization_study import run_utilization_study
from .schedulers.registry import PAPER_ALGORITHMS, available_algorithms
from .workloads import (
    HPC2N_CLUSTER,
    characterization_table,
    characterize,
    parse_swf,
    size_histogram,
    swf_to_dfrs_jobs,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-dfrs`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-dfrs",
        description=(
            "Reproduce the evaluation of 'Dynamic Fractional Resource "
            "Scheduling for HPC Workloads' (IPDPS 2010)."
        ),
    )
    parser.add_argument(
        "--nodes", type=int, default=None, help="cluster size (default 128)"
    )
    parser.add_argument(
        "--num-traces", type=int, default=None, help="synthetic traces per load level"
    )
    parser.add_argument(
        "--num-jobs", type=int, default=None, help="jobs per synthetic trace"
    )
    parser.add_argument(
        "--loads",
        type=str,
        default=None,
        help="comma-separated offered-load levels, e.g. 0.1,0.5,0.9",
    )
    parser.add_argument(
        "--algorithms",
        type=str,
        default=None,
        help=(
            "comma-separated algorithm names "
            f"(known: {', '.join(available_algorithms())})"
        ),
    )
    parser.add_argument(
        "--penalty",
        type=float,
        default=None,
        help="rescheduling penalty in seconds (0 or 300 in the paper)",
    )
    parser.add_argument("--seed", type=int, default=None, help="base random seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for the instance x algorithm fan-out "
            "(default 1 = serial, 0 = one per CPU); results are identical "
            "to a serial run"
        ),
    )

    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("figure1", help="degradation factor vs. load")
    subparsers.add_parser("table1", help="degradation statistics per workload family")
    subparsers.add_parser("table2", help="preemption and migration costs")
    subparsers.add_parser("timing", help="scheduling computation time study")
    compare = subparsers.add_parser(
        "compare", help="run one synthetic trace under several algorithms"
    )
    compare.add_argument("--load", type=float, default=0.7, help="offered load")

    period = subparsers.add_parser(
        "period-sweep", help="scheduling-period sensitivity study"
    )
    period.add_argument(
        "--base-algorithm",
        type=str,
        default="dynmcb8-asap-per",
        help="unsuffixed periodic algorithm name",
    )
    period.add_argument("--load", type=float, default=0.7, help="offered load")
    period.add_argument(
        "--periods",
        type=str,
        default="60,600,3600",
        help="comma-separated periods in seconds",
    )

    packing = subparsers.add_parser(
        "packing-ablation", help="compare packing heuristics on random instances"
    )
    packing.add_argument(
        "--pack-nodes", type=int, default=32, help="bins per packing instance"
    )
    packing.add_argument(
        "--pack-instances", type=int, default=25, help="number of packing instances"
    )
    packing.add_argument(
        "--pack-jobs", type=int, default=24, help="jobs per packing instance"
    )

    utilization = subparsers.add_parser(
        "utilization", help="busy nodes, energy, and fairness per algorithm"
    )
    utilization.add_argument("--load", type=float, default=0.5, help="offered load")

    subparsers.add_parser(
        "extensions", help="extension schedulers vs. the paper's best algorithm"
    )

    profile = subparsers.add_parser(
        "characterize",
        help="profile a workload (synthetic by default, or an SWF file) with the §I statistics",
    )
    profile.add_argument(
        "--swf", type=str, default=None, help="path to an SWF trace to profile instead"
    )
    profile.add_argument(
        "--load", type=float, default=None, help="rescale the synthetic trace to this load"
    )
    return parser


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    config = default_scale()
    if args.nodes is not None:
        config = replace(config, cluster=Cluster(args.nodes, 4, 8.0))
    if args.num_traces is not None:
        config = replace(config, num_traces=args.num_traces)
    if args.num_jobs is not None:
        config = replace(config, num_jobs=args.num_jobs)
    if args.loads is not None:
        levels = tuple(float(part) for part in args.loads.split(",") if part.strip())
        config = replace(config, load_levels=levels)
    if args.algorithms is not None:
        names = tuple(part.strip() for part in args.algorithms.split(",") if part.strip())
        config = replace(config, algorithms=names)
    if args.penalty is not None:
        config = replace(config, penalty_seconds=args.penalty)
    if args.seed is not None:
        config = replace(config, seed_base=args.seed)
    if args.workers is not None:
        config = replace(config, workers=args.workers)
    return config


def _run_compare(config: ExperimentConfig, load: float) -> str:
    workload = generate_synthetic_instances(
        replace(config, num_traces=1, load_levels=(load,)), load=load
    )[0]
    instance = run_instance(
        workload, config.algorithms, penalty_seconds=config.penalty_seconds
    )
    rows = []
    for name, result in instance.results.items():
        rows.append(
            [
                name,
                result.max_stretch,
                result.mean_stretch,
                result.mean_turnaround,
                result.preemptions_per_job(),
                result.migrations_per_job(),
            ]
        )
    return format_table(
        ["algorithm", "max stretch", "mean stretch", "mean turnaround (s)",
         "pmtn/job", "migr/job"],
        rows,
        title=(
            f"Single-trace comparison ({workload.name}, load {load}, "
            f"{config.penalty_seconds:.0f}-second penalty)"
        ),
    )


def _run_characterize(
    config: ExperimentConfig, swf_path: Optional[str], load: Optional[float]
) -> str:
    """Profile either an SWF trace or a generated synthetic trace."""
    if swf_path is not None:
        workload = swf_to_dfrs_jobs(parse_swf(swf_path), HPC2N_CLUSTER)
    else:
        workload = generate_synthetic_instances(
            replace(config, num_traces=1), load=load
        )[0]
    profile = characterize(workload)
    lines = [characterization_table([profile]), "", "job width histogram:"]
    total = profile.num_jobs
    for label, count in size_histogram(workload):
        bar = "#" * max(1, round(40 * count / total))
        lines.append(f"  {label:>9s} tasks  {count:6d}  {bar}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-dfrs`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    config = _config_from_args(args)

    if args.command == "figure1":
        print(run_figure1(config).format())
    elif args.command == "table1":
        print(run_table1(config).format())
    elif args.command == "table2":
        print(run_table2(config).format())
    elif args.command == "timing":
        print(run_timing_study(config).format())
    elif args.command == "compare":
        print(_run_compare(config, args.load))
    elif args.command == "period-sweep":
        periods = tuple(float(part) for part in args.periods.split(",") if part.strip())
        print(
            run_period_sweep(
                config,
                base_algorithm=args.base_algorithm,
                periods=periods,
                load=args.load,
            ).format()
        )
    elif args.command == "packing-ablation":
        print(
            run_packing_ablation(
                num_nodes=args.pack_nodes,
                num_instances=args.pack_instances,
                jobs_per_instance=args.pack_jobs,
                seed=config.seed_base,
            ).format()
        )
    elif args.command == "utilization":
        print(run_utilization_study(config, load=args.load).format())
    elif args.command == "characterize":
        print(_run_characterize(config, args.swf, args.load))
    elif args.command == "extensions":
        if args.algorithms is not None:
            print(
                run_extensions_comparison(config, algorithms=config.algorithms).format()
            )
        else:
            print(run_extensions_comparison(config).format())
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
