"""The check driver: collect files, run rules, apply pragmas and baseline."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..exceptions import ConfigurationError
from .astutils import noqa_codes
from .baseline import load_baseline, partition_findings, write_baseline
from .findings import Finding
from .rules import FileContext, Rule, create_rules

__all__ = ["CheckResult", "check_paths", "collect_files"]

#: Directories never worth parsing.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hg", "build", "dist", ".eggs"})


@dataclass
class CheckResult:
    """Outcome of one ``dev check`` invocation."""

    #: Violations not covered by the baseline — these fail the check.
    findings: List[Finding] = field(default_factory=list)
    #: Violations grandfathered by the baseline.
    baselined: List[Finding] = field(default_factory=list)
    #: Baseline fingerprints no current finding matches (fixed violations
    #: whose entries must be removed — also fails the check, so the
    #: baseline can only shrink).
    stale_fingerprints: List[str] = field(default_factory=list)
    #: Count of findings suppressed by ``# repro: noqa`` pragmas.
    suppressed: int = 0
    checked_files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.stale_fingerprints


def collect_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """The ``.py`` files under ``paths``, sorted for deterministic output."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ConfigurationError(f"no such file or directory: {path}")
        if path.is_file():
            if path.suffix == ".py":
                files.append(path)
            continue
        for candidate in path.rglob("*.py"):
            if any(part in _SKIP_DIRS or part.startswith(".") for part in candidate.parts):
                continue
            files.append(candidate)
    return sorted(set(files))


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _parse(path: Path, root: Path) -> Union[FileContext, Finding]:
    source = path.read_text(encoding="utf-8")
    relpath = _relpath(path, root)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return Finding(
            path=relpath,
            line=error.lineno or 1,
            col=(error.offset or 0) + 1,
            code="E999",
            message=f"syntax error: {error.msg}",
            line_text=(error.text or "").strip(),
        )
    return FileContext(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )


def _apply_noqa(findings: Sequence[Finding], contexts: Dict[str, FileContext]) -> tuple:
    """Drop findings whose source line carries a matching pragma."""
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        context = contexts.get(finding.path)
        line = context.line_text(finding.line) if context is not None else ""
        codes = noqa_codes(line)
        if codes is None:
            kept.append(finding)
            continue
        if not codes or any(finding.code == c or finding.code.startswith(c) for c in codes):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def check_paths(
    paths: Sequence[Union[str, Path]],
    *,
    project_root: Optional[Union[str, Path]] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline_path: Optional[Union[str, Path]] = None,
    fix_baseline: bool = False,
    rules: Optional[Sequence[Rule]] = None,
) -> CheckResult:
    """Run the rule pack over ``paths``.

    ``project_root`` anchors the relative paths findings report (default:
    the current working directory).  ``rules`` overrides the registry
    selection — the test suite injects single rules this way.
    """
    root = Path(project_root) if project_root is not None else Path.cwd()
    active_rules = list(rules) if rules is not None else create_rules(select, ignore)
    file_rules = [rule for rule in active_rules if rule.scope == "file"]
    project_rules = [rule for rule in active_rules if rule.scope == "project"]

    contexts: List[FileContext] = []
    raw_findings: List[Finding] = []
    for path in collect_files(paths):
        parsed = _parse(path, root)
        if isinstance(parsed, Finding):
            raw_findings.append(parsed)
            continue
        contexts.append(parsed)
        for rule in file_rules:
            raw_findings.extend(rule.check_file(parsed))
    for rule in project_rules:
        raw_findings.extend(rule.check_project(contexts))

    by_path = {context.relpath: context for context in contexts}
    kept, suppressed = _apply_noqa(sorted(raw_findings), by_path)

    result = CheckResult(suppressed=suppressed, checked_files=len(contexts))
    if baseline_path is not None and fix_baseline:
        write_baseline(baseline_path, kept)
        result.baselined = list(kept)
        return result
    baseline = load_baseline(baseline_path) if baseline_path is not None else {}
    new, matched, stale = partition_findings(kept, baseline)
    result.findings = new
    result.baselined = matched
    result.stale_fingerprints = stale
    return result
