"""The built-in rule pack: the project's contracts as AST lint rules.

Codes are grouped in families; ``# repro: noqa[DET]`` suppresses a family,
``# repro: noqa[DET101]`` one rule.  Each rule's ``rationale`` states the
contract it encodes — surfaced by ``repro-dfrs dev rules`` and
CONTRIBUTING.md.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from .astutils import (
    SetExpressionTracker,
    dotted_name,
    import_aliases,
    iter_parents,
    resolved_call_name,
)
from .findings import Finding
from .rules import FileContext, Rule, register_rule

__all__ = [
    "UnseededDefaultRngRule",
    "GlobalRngDrawRule",
    "WallClockRule",
    "SetIterationRule",
    "UnpicklableTaskRule",
    "FloatEqualityRule",
    "SwallowedExceptionRule",
    "DirectTimeInCoreRule",
    "BarePrintRule",
]

#: Packages whose code can reach simulated results; the determinism and
#: ordering contracts bind here (reports/CLI glue may legitimately look at
#: the wall clock or iterate sets for display).
_RESULT_PACKAGES = (
    "core",
    "packing",
    "schedulers",
    "traces",
    "platform",
    "workloads",
    "metrics",
    "campaign",
    "experiments",
)


@register_rule
class UnseededDefaultRngRule(Rule):
    code = "DET101"
    name = "unseeded-default-rng"
    rationale = (
        "Every simulation draw must come from an explicitly seeded "
        "np.random.default_rng(seed): an unseeded generator takes OS "
        "entropy, so two runs of the same scenario hash produce different "
        "results and every cached campaign artifact becomes unreproducible."
    )

    def check_file(self, context: FileContext) -> List[Finding]:
        aliases = import_aliases(context.tree)
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolved_call_name(node, aliases)
            if name is None or not name.endswith("random.default_rng"):
                continue
            if not node.args and not node.keywords:
                findings.append(
                    context.finding(
                        node,
                        self.code,
                        "default_rng() without a seed draws OS entropy; pass "
                        "an explicit seed (or a spawned SeedSequence)",
                    )
                )
        return findings


@register_rule
class GlobalRngDrawRule(Rule):
    code = "DET102"
    name = "global-rng-draw"
    rationale = (
        "The module-level numpy and stdlib RNGs (np.random.rand, "
        "random.randint, ...) share hidden global state: any draw outside a "
        "locally seeded Generator couples results to import order and to "
        "every other caller, breaking byte-identical reproduction."
    )

    #: numpy.random module functions that are *not* draws on the global RNG.
    _NUMPY_SAFE = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"})
    #: stdlib ``random`` draw/state functions (``random.Random(seed)`` is fine).
    _STDLIB_DRAWS = frozenset(
        {
            "random",
            "randint",
            "randrange",
            "uniform",
            "choice",
            "choices",
            "sample",
            "shuffle",
            "gauss",
            "normalvariate",
            "lognormvariate",
            "expovariate",
            "betavariate",
            "gammavariate",
            "paretovariate",
            "weibullvariate",
            "triangular",
            "vonmisesvariate",
            "getrandbits",
            "seed",
        }
    )

    def check_file(self, context: FileContext) -> List[Finding]:
        aliases = import_aliases(context.tree)
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolved_call_name(node, aliases)
            if name is None:
                continue
            parts = name.split(".")
            if (
                len(parts) == 3
                and parts[0] == "numpy"
                and parts[1] == "random"
                and parts[2] not in self._NUMPY_SAFE
            ):
                findings.append(
                    context.finding(
                        node,
                        self.code,
                        f"np.random.{parts[2]} draws from the global numpy RNG; "
                        "use a seeded np.random.default_rng(seed) instead",
                    )
                )
            elif (
                len(parts) == 2
                and parts[0] == "random"
                and parts[1] in self._STDLIB_DRAWS
            ):
                findings.append(
                    context.finding(
                        node,
                        self.code,
                        f"random.{parts[1]} draws from the global stdlib RNG; "
                        "use a seeded np.random.default_rng(seed) instead",
                    )
                )
        return findings


@register_rule
class WallClockRule(Rule):
    code = "DET103"
    name = "wall-clock-in-simulation"
    rationale = (
        "Simulated results must be a pure function of the scenario spec: "
        "time.time()/datetime.now() reachable from engine, trace, platform, "
        "or scheduler code leaks the wall clock into results and cache "
        "keys.  (time.perf_counter for *measuring* scheduler wall time is "
        "explicitly allowed — it feeds the timing study, not the clock.)"
    )

    _FORBIDDEN = frozenset(
        {
            "time.time",
            "time.time_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def check_file(self, context: FileContext) -> List[Finding]:
        if not context.in_packages(_RESULT_PACKAGES):
            return []
        aliases = import_aliases(context.tree)
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolved_call_name(node, aliases)
            if name in self._FORBIDDEN:
                findings.append(
                    context.finding(
                        node,
                        self.code,
                        f"{name}() reads the wall clock on a result-affecting "
                        "path; simulated time must come from the event loop",
                    )
                )
        return findings


#: Builtins that consume an iterable order-insensitively; a set fed straight
#: into one of these is fine.  (``min``/``max``/``sum``/``len``/``any``/
#: ``all`` never appear in the iteration contexts the rule inspects, so the
#: list only needs the materialising consumers.)
_ORDER_SENSITIVE_CONSUMERS = frozenset({"list", "tuple", "enumerate", "iter"})


@register_rule
class SetIterationRule(Rule):
    code = "ORD201"
    name = "unordered-set-iteration"
    rationale = (
        "Iterating a set on a result-affecting path leaks hash order into "
        "results: with PYTHONHASHSEED randomised, two processes disagree on "
        "the order, so campaign rows and golden outputs stop being "
        "byte-identical.  Wrap the iteration in sorted(...).  (dict "
        "iteration is insertion-ordered and therefore deterministic; sets "
        "are the hazard.)"
    )

    def check_file(self, context: FileContext) -> List[Finding]:
        if not context.in_packages(_RESULT_PACKAGES):
            return []
        tracker = SetExpressionTracker(context.tree)
        findings: List[Finding] = []

        def flag(expr: ast.AST) -> None:
            if tracker.is_set_expression(expr, tracker.scope_of(expr)):
                findings.append(
                    context.finding(
                        expr,
                        self.code,
                        "iteration over a set leaks hash order into results; "
                        "wrap it in sorted(...)",
                    )
                )

        for node in ast.walk(context.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                flag(node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    flag(generator.iter)
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _ORDER_SENSITIVE_CONSUMERS and node.args:
                    flag(node.args[0])
        return findings


@register_rule
class UnpicklableTaskRule(Rule):
    code = "SER301"
    name = "unpicklable-worker-payload"
    rationale = (
        "Callables crossing the multiprocessing boundary (map_tasks and the "
        "campaign fan-out) are pickled by reference: lambdas and functions "
        "defined inside another function cannot be pickled, so the campaign "
        "dies only when --workers > 1 on a multi-core host — CI's "
        "single-core path never sees it.  Pass a module-level function."
    )

    #: Call targets whose callable arguments must be picklable.
    _FAN_OUT_SUFFIXES = ("map_tasks",)
    _POOL_METHODS = frozenset({"map", "imap", "imap_unordered", "starmap", "apply_async"})

    def check_file(self, context: FileContext) -> List[Finding]:
        parents = iter_parents(context.tree)
        nested_defs = self._nested_function_names(context.tree, parents)
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_fan_out_call(node):
                continue
            candidates: List[ast.expr] = list(node.args)
            candidates.extend(kw.value for kw in node.keywords if kw.value is not None)
            for arg in candidates:
                if isinstance(arg, ast.Lambda):
                    findings.append(
                        context.finding(
                            arg,
                            self.code,
                            "lambda passed into the worker-pool fan-out cannot "
                            "be pickled; move it to a module-level function",
                        )
                    )
                elif isinstance(arg, ast.Name) and arg.id in nested_defs:
                    findings.append(
                        context.finding(
                            arg,
                            self.code,
                            f"locally defined function {arg.id!r} passed into "
                            "the worker-pool fan-out cannot be pickled; move "
                            "it to module level",
                        )
                    )
        return findings

    def _is_fan_out_call(self, node: ast.Call) -> bool:
        name = dotted_name(node.func)
        if name is None:
            return False
        if any(name == s or name.endswith("." + s) for s in self._FAN_OUT_SUFFIXES):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in self._POOL_METHODS:
            base = dotted_name(node.func.value)
            return base is not None and "pool" in base.lower()
        return False

    @staticmethod
    def _nested_function_names(
        tree: ast.Module, parents: Dict[ast.AST, ast.AST]
    ) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            current = parents.get(node)
            while current is not None:
                if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(node.name)
                    break
                current = parents.get(current)
        return names


@register_rule
class FloatEqualityRule(Rule):
    code = "FLT401"
    name = "raw-float-equality"
    rationale = (
        "core/ and packing/ compare capacities and yields with the epsilon "
        "helpers (CAPACITY_EPSILON, Bin.epsilon): a raw ==/!= between "
        "computed float expressions silently flips on the last ulp and "
        "breaks packing decisions across platforms.  Exact comparisons "
        "against the 0.0/1.0 sentinels are the pinned fast-path idiom and "
        "are exempt."
    )

    #: Sentinel literals whose exact comparison is an intentional idiom
    #: (empty/full capacity, the homogeneous 1.0 fast path).
    _SENTINELS = (0.0, 1.0, -1.0)

    def check_file(self, context: FileContext) -> List[Finding]:
        if not context.in_packages(("core", "packing")):
            return []
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_exempt_literal(left) or self._is_exempt_literal(right):
                    continue
                if self._is_float_arithmetic(left) or self._is_float_arithmetic(right):
                    findings.append(
                        context.finding(
                            node,
                            self.code,
                            "raw ==/!= between computed float expressions; use "
                            "the epsilon helpers (CAPACITY_EPSILON / "
                            "math.isclose) or compare against a sentinel",
                        )
                    )
                    break
                if self._is_float_literal(left) or self._is_float_literal(right):
                    findings.append(
                        context.finding(
                            node,
                            self.code,
                            "raw ==/!= against a non-sentinel float literal; "
                            "use the epsilon helpers or an explicit tolerance",
                        )
                    )
                    break
        return findings

    def _is_exempt_literal(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and node.value in self._SENTINELS
        )

    def _is_float_literal(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and node.value not in self._SENTINELS
        )

    def _is_float_arithmetic(self, node: ast.AST) -> bool:
        """Arithmetic that produces a computed float: contains / or a float
        literal inside a +-*/** expression."""
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            if isinstance(node.op, (ast.Add, ast.Sub, ast.Mult, ast.Pow, ast.Mod)):
                return (
                    self._contains_float(node.left)
                    or self._contains_float(node.right)
                    or self._is_float_arithmetic(node.left)
                    or self._is_float_arithmetic(node.right)
                )
        if isinstance(node, ast.UnaryOp):
            return self._is_float_arithmetic(node.operand)
        return False

    @staticmethod
    def _contains_float(node: ast.AST) -> bool:
        return any(
            isinstance(child, ast.Constant) and isinstance(child.value, float)
            for child in ast.walk(node)
        )


@register_rule
class SwallowedExceptionRule(Rule):
    code = "EXC501"
    name = "swallowed-simulation-error"
    rationale = (
        "A bare `except:` or blanket `except Exception:` that does not "
        "re-raise swallows SimulationError (and ConfigurationError) with "
        "everything else, turning an invariant violation into silently "
        "wrong results.  Catch the specific exception, or re-raise."
    )

    _BLANKET = frozenset({"Exception", "BaseException"})

    def check_file(self, context: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    context.finding(
                        node,
                        self.code,
                        "bare except: swallows SimulationError with everything "
                        "else; catch the specific exception or re-raise",
                    )
                )
                continue
            if self._is_blanket(node.type) and not self._reraises(node):
                findings.append(
                    context.finding(
                        node,
                        self.code,
                        "blanket except Exception without re-raise swallows "
                        "SimulationError; narrow the type or re-raise",
                    )
                )
        return findings

    def _is_blanket(self, type_node: ast.expr) -> bool:
        if isinstance(type_node, ast.Tuple):
            return any(self._is_blanket(element) for element in type_node.elts)
        name = dotted_name(type_node)
        return name in self._BLANKET

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(child, ast.Raise) for child in ast.walk(handler))


@register_rule
class DirectTimeInCoreRule(Rule):
    code = "OBS701"
    name = "direct-time-call-in-core"
    rationale = (
        "Engine code reads the wall clock only through its two seams: "
        "repro.core.clock (pacing) and repro.obs.timing (measurement).  A "
        "direct time.* call in repro.core bypasses both, so profilers and "
        "tests cannot intercept the reading and the disabled-telemetry "
        "byte-identity guarantee loses its single swap point.  Import "
        "perf_counter from repro.obs.timing instead (or pace through a "
        "Clock)."
    )

    #: The pacing seam itself is the one core module allowed to touch
    #: ``time`` directly.
    _EXEMPT_MODULES = frozenset({"clock.py"})

    def check_file(self, context: FileContext) -> List[Finding]:
        parts = context.package_parts()
        if not parts or parts[0] != "core":
            return []
        if parts[-1] in self._EXEMPT_MODULES:
            return []
        aliases = import_aliases(context.tree)
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolved_call_name(node, aliases)
            if name is not None and name.startswith("time."):
                findings.append(
                    context.finding(
                        node,
                        self.code,
                        f"{name}() bypasses the clock/telemetry seams; import "
                        "perf_counter from repro.obs.timing (measurement) or "
                        "go through repro.core.clock (pacing)",
                    )
                )
        return findings


@register_rule
class BarePrintRule(Rule):
    code = "OBS702"
    name = "bare-print-outside-cli"
    rationale = (
        "Library code reports through return values, exceptions, and the "
        "telemetry/flight seams — never stdout.  A bare print() in "
        "repro.* corrupts machine-readable command output (the serve "
        "protocol, --bench-json artifacts), is invisible to campaign "
        "workers, and cannot be silenced by callers.  Presentation belongs "
        "in the CLI layers (cli.py modules); everything else should raise, "
        "return, or record."
    )

    #: Presentation layers: the top-level CLI, each package's cli.py, and
    #: the devtools reporters (whose whole job is printing findings).
    _EXEMPT_MODULE = "cli.py"
    _EXEMPT_PACKAGES = frozenset({"devtools"})

    def check_file(self, context: FileContext) -> List[Finding]:
        parts = context.package_parts()
        if not parts:
            return []
        if parts[-1] == self._EXEMPT_MODULE:
            return []
        if parts[0] in self._EXEMPT_PACKAGES:
            return []
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "print":
                findings.append(
                    context.finding(
                        node,
                        self.code,
                        "bare print() in library code; return the value, "
                        "raise, or record it via the telemetry seam — "
                        "printing belongs in the cli.py layers",
                    )
                )
        return findings
