"""Finding records and their baseline fingerprints."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["Finding", "fingerprint_findings"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location.

    ``path`` is stored POSIX-relative to the project root so findings (and
    the fingerprints derived from them) are stable across machines and
    checkouts.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    #: Stripped text of the offending source line; drives the baseline
    #: fingerprint so unrelated edits shifting line numbers do not churn
    #: the baseline.  Excluded from ordering/equality.
    line_text: str = field(default="", compare=False)

    def format(self) -> str:
        """``path:line:col: CODE message`` — the one-line text rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """Canonical dictionary form (JSON output and baseline entries)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


def fingerprint_findings(findings: Sequence[Finding]) -> List[str]:
    """Stable content fingerprints, parallel to ``findings``.

    A fingerprint hashes ``path``, rule ``code``, the stripped offending
    line text, and an occurrence ordinal (so two identical violations on
    different lines of one file stay distinct) — but *not* the line number,
    so inserting unrelated lines above a baselined violation does not
    invalidate the baseline.
    """
    ordinals: Dict[str, int] = {}
    fingerprints: List[str] = []
    for finding in sorted(findings):
        key = f"{finding.path}\x1f{finding.code}\x1f{finding.line_text}"
        ordinal = ordinals.get(key, 0)
        ordinals[key] = ordinal + 1
        digest = hashlib.sha256(f"{key}\x1f{ordinal}".encode("utf-8")).hexdigest()
        fingerprints.append(digest[:20])
    # Re-align to the caller's ordering.
    by_finding: Dict[Finding, List[str]] = {}
    for finding, fingerprint in zip(sorted(findings), fingerprints):
        by_finding.setdefault(finding, []).append(fingerprint)
    aligned: List[str] = []
    for finding in findings:
        aligned.append(by_finding[finding].pop(0))
    return aligned
