"""Shared AST helpers for the rule pack."""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

__all__ = [
    "noqa_codes",
    "dotted_name",
    "resolved_call_name",
    "import_aliases",
    "iter_parents",
    "SetExpressionTracker",
]

#: ``# repro: noqa`` (all rules) or ``# repro: noqa[DET101,ORD]`` (specific
#: codes / family prefixes), anywhere in the physical line's trailing comment.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE)


def noqa_codes(line: str) -> Optional[FrozenSet[str]]:
    """Suppression declared on ``line``.

    ``None`` → no pragma; empty frozenset → blanket ``noqa`` (all rules);
    otherwise the set of upper-cased codes / family prefixes listed.
    """
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if codes is None:
        return frozenset()
    return frozenset(part.strip().upper() for part in codes.split(",") if part.strip())


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name → imported dotted path, for the whole module.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from numpy.random import default_rng`` →
    ``{"default_rng": "numpy.random.default_rng"}``.  Relative imports are
    recorded under their bare module path (``.source`` → ``source``), which
    is enough for the rule pack's stdlib/numpy checks to ignore them.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname is None and "." in alias.name:
                    # ``import a.b`` binds ``a``; remember the root only.
                    aliases[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{module}.{alias.name}" if module else alias.name
                aliases[alias.asname or alias.name] = target
    return aliases


def resolved_call_name(call: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """The call's dotted name with the leading import alias expanded.

    ``np.random.rand`` with ``{"np": "numpy"}`` → ``numpy.random.rand``;
    ``default_rng`` with a from-import → ``numpy.random.default_rng``.
    """
    name = dotted_name(call.func)
    if name is None:
        return None
    root, _, rest = name.partition(".")
    resolved_root = aliases.get(root, root)
    return f"{resolved_root}.{rest}" if rest else resolved_root


def iter_parents(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    """Child → parent map for every node in ``tree``."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


#: ``set`` methods that return another set — iterating their result is as
#: order-hazardous as iterating the set itself.
_SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Attribute names that are set-typed by project convention (the engine's
#: down-node and seen-job bookkeeping); listed here because attribute types
#: cannot be inferred from a single module's AST.
_KNOWN_SET_ATTRIBUTES = frozenset(
    {"down_nodes", "_down_nodes", "_seen_job_ids", "_down", "busy_nodes"}
)


class SetExpressionTracker:
    """Decide whether an expression is statically known to be a ``set``.

    Tracks straight-line assignments (``names = set()``) per enclosing
    function so later iteration over the name is recognised too.  The
    analysis is deliberately shallow — no dataflow across calls — matching
    the contract it enforces: anything *obviously* a set must not be
    iterated on a result-affecting path without ``sorted()``.
    """

    def __init__(self, tree: ast.Module) -> None:
        self._parents = iter_parents(tree)
        self._set_names: Set[Tuple[int, str]] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and self._is_set_value(node.value):
                scope_id = self.scope_of(node)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._set_names.add((scope_id, target.id))
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                scope_id = self.scope_of(node)
                if node.value is not None and self._is_set_value(node.value):
                    self._set_names.add((scope_id, node.target.id))
                elif self._is_set_annotation(node.annotation):
                    self._set_names.add((scope_id, node.target.id))

    def scope_of(self, node: ast.AST) -> int:
        """``id()`` of the closest enclosing function node (0 = module)."""
        current = self._parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return id(current)
            current = self._parents.get(current)
        return 0

    @staticmethod
    def _is_set_annotation(annotation: ast.AST) -> bool:
        name = dotted_name(
            annotation.value if isinstance(annotation, ast.Subscript) else annotation
        )
        if name is None and isinstance(annotation, ast.Constant):
            name = str(annotation.value).split("[")[0].strip()
        return name in {
            "set",
            "frozenset",
            "Set",
            "FrozenSet",
            "typing.Set",
            "typing.FrozenSet",
        }

    def _is_set_value(self, node: ast.AST) -> bool:
        """Structural check only (no name lookups, to stay order-safe)."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in {"set", "frozenset"}:
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in _SET_RETURNING_METHODS:
                return self._is_set_value(node.func.value) or self.is_known_set_attribute(
                    node.func.value
                )
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor)
        ):
            return self._is_set_value(node.left) or self._is_set_value(node.right)
        return False

    @staticmethod
    def is_known_set_attribute(node: ast.AST) -> bool:
        return isinstance(node, ast.Attribute) and node.attr in _KNOWN_SET_ATTRIBUTES

    def is_set_expression(self, node: ast.AST, scope_id: int) -> bool:
        """True when ``node`` is statically a set in scope ``scope_id``."""
        if self._is_set_value(node):
            return True
        if self.is_known_set_attribute(node):
            return True
        if isinstance(node, ast.Name):
            return (scope_id, node.id) in self._set_names or (0, node.id) in self._set_names
        return False
