"""Project-contract static analysis for the DFRS reproduction.

The reproduction's credibility rests on contracts that, before this package,
lived only in convention and runtime tests:

* every simulation draw comes from an explicitly seeded
  ``np.random.default_rng`` (never the global module RNGs, never wall clock),
* every spec class (``to_dict`` + ``type`` field) is resolvable from its
  subsystem registry,
* payloads crossing the ``multiprocessing`` boundary stay picklable,
* iteration order never leaks set nondeterminism into byte-identical results,
* float equality on result-affecting paths goes through the epsilon helpers,
* no handler silently swallows :class:`~repro.exceptions.SimulationError`.

A violation of any of these corrupts reproducibility silently — a static
pass catches the whole class at commit time instead of as a flaky
golden-test failure.  The engine mirrors the project's ``type``-registry
idiom: each rule has a stable code (``DET101`` …), registers itself in a
rule registry, and emits :class:`~repro.devtools.findings.Finding` records.
Suppression is per-line (``# repro: noqa[DET101]``) or via a committed
baseline file so adoption stays incremental.

Run it as ``repro-dfrs dev check [--fix-baseline] [PATHS]``.
"""

from .findings import Finding, fingerprint_findings
from .rules import (
    Rule,
    available_rules,
    create_rules,
    register_rule,
    rule_catalog,
)
from .baseline import load_baseline, write_baseline
from .engine import CheckResult, check_paths

# Importing the packs registers the built-in rules.
from . import rulepack as _rulepack  # noqa: F401
from . import registry_audit as _registry_audit  # noqa: F401

__all__ = [
    "Finding",
    "fingerprint_findings",
    "Rule",
    "register_rule",
    "available_rules",
    "rule_catalog",
    "create_rules",
    "load_baseline",
    "write_baseline",
    "CheckResult",
    "check_paths",
]
