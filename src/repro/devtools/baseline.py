"""The committed findings baseline — incremental adoption without decay.

A baseline entry grandfathers one existing violation by content fingerprint
(see :func:`repro.devtools.findings.fingerprint_findings`): new violations
still fail the check, fixed violations turn their entries *stale* (also a
failure, so the baseline can only shrink — run ``--fix-baseline`` to drop
them).  The file is plain sorted JSON so diffs review like code.

The project's own baseline is empty by policy: every violation the initial
rule pack surfaced was fixed, not grandfathered.  The machinery exists for
future rule-pack growth.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from ..exceptions import ConfigurationError
from .findings import Finding, fingerprint_findings

__all__ = ["BASELINE_VERSION", "load_baseline", "write_baseline", "partition_findings"]

BASELINE_VERSION = 1


def load_baseline(path: Union[str, Path]) -> Dict[str, Dict[str, object]]:
    """Fingerprint → entry mapping; missing file means an empty baseline."""
    path = Path(path)
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"baseline {path} is not valid JSON: {error}") from None
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ConfigurationError(
            f"baseline {path} has unsupported format "
            f"(expected version {BASELINE_VERSION})"
        )
    entries = data.get("findings", {})
    if not isinstance(entries, dict):
        raise ConfigurationError(f"baseline {path}: 'findings' must be an object")
    return entries


def write_baseline(path: Union[str, Path], findings: Sequence[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, diff-stable JSON)."""
    entries: Dict[str, Dict[str, object]] = {}
    for finding, fingerprint in zip(findings, fingerprint_findings(findings)):
        entries[fingerprint] = {
            "path": finding.path,
            "code": finding.code,
            "message": finding.message,
        }
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def partition_findings(
    findings: Sequence[Finding],
    baseline: Dict[str, Dict[str, object]],
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Split ``findings`` into (new, baselined) and list stale fingerprints.

    Stale fingerprints are baseline entries no current finding matches —
    the violation was fixed and the entry must be removed.
    """
    fingerprints = fingerprint_findings(findings)
    new: List[Finding] = []
    matched: List[Finding] = []
    seen: set = set()
    for finding, fingerprint in zip(findings, fingerprints):
        if fingerprint in baseline:
            matched.append(finding)
            seen.add(fingerprint)
        else:
            new.append(finding)
    stale = sorted(fp for fp in baseline if fp not in seen)
    return new, matched, stale
