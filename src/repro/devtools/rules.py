"""The :class:`Rule` contract and its registry.

Mirrors the project's ``type``-registry idiom (see
:mod:`repro.traces.source`, :mod:`repro.metrics.accumulators`,
:mod:`repro.platform.base`): every rule has a stable code, registers itself
at import time, and duplicate registration is a configuration error.

Two rule scopes exist:

* ``file`` rules receive one parsed module at a time
  (:meth:`Rule.check_file`) — the AST lint rules;
* ``project`` rules run once per invocation over the whole checked set
  (:meth:`Rule.check_project`) — the cross-module registry audit, which
  must *import* the subsystems rather than parse them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from ..exceptions import ConfigurationError
from .findings import Finding

__all__ = [
    "FileContext",
    "Rule",
    "register_rule",
    "available_rules",
    "rule_catalog",
    "create_rules",
]


@dataclass
class FileContext:
    """One parsed source file handed to every ``file``-scoped rule."""

    path: Path
    #: POSIX path relative to the project root (what findings report).
    relpath: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def line_text(self, lineno: int) -> str:
        """Stripped source text of 1-based ``lineno`` (empty if out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.relpath,
            line=lineno,
            col=col + 1,
            code=code,
            message=message,
            line_text=self.line_text(lineno),
        )

    def package_parts(self) -> Tuple[str, ...]:
        """Path segments below the ``repro`` package, if any.

        ``src/repro/core/engine.py`` → ``("core", "engine.py")``; paths
        outside the package (tests, examples) return ``()`` so
        package-scoped rules skip them regardless of the caller's cwd.
        """
        parts = self.relpath.split("/")
        for index, part in enumerate(parts):
            if part == "repro":
                return tuple(parts[index + 1 :])
        return ()

    def in_packages(self, names: Iterable[str]) -> bool:
        """True when the file lives under one of the ``repro.<name>`` packages."""
        parts = self.package_parts()
        return bool(parts) and parts[0] in tuple(names)


class Rule:
    """Abstract static-analysis rule.

    Subclasses set ``code`` (stable, e.g. ``"DET101"``), ``name``,
    ``rationale`` (the project contract the rule encodes — surfaced by
    ``repro-dfrs dev rules``), implement :meth:`check_file` (scope
    ``"file"``) or :meth:`check_project` (scope ``"project"``), and
    register themselves with :func:`register_rule`.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    scope: str = "file"

    def check_file(self, context: FileContext) -> List[Finding]:
        """Findings for one parsed module (``file``-scoped rules)."""
        return []

    def check_project(self, contexts: Sequence[FileContext]) -> List[Finding]:
        """Findings for the whole checked set (``project``-scoped rules)."""
        return []


# --------------------------------------------------------------------------- #
# Registry                                                                     #
# --------------------------------------------------------------------------- #
_RULE_TYPES: Dict[str, Type[Rule]] = {}


def register_rule(rule_class: Type[Rule]) -> Type[Rule]:
    """Register a rule class under its ``code`` (usable as a decorator)."""
    code = rule_class.code
    if not code:
        raise ConfigurationError(f"rule {rule_class.__name__} has no code")
    if code in _RULE_TYPES:
        raise ConfigurationError(f"rule code {code!r} already registered")
    _RULE_TYPES[code] = rule_class
    return rule_class


def available_rules() -> List[str]:
    """Registered rule codes, sorted."""
    return sorted(_RULE_TYPES)


def rule_catalog() -> List[Rule]:
    """One instance of every registered rule, sorted by code."""
    return [_RULE_TYPES[code]() for code in available_rules()]


def _match_selector(code: str, selector: str) -> bool:
    """``DET`` selects the whole family, ``DET101`` one rule."""
    return code == selector or code.startswith(selector)


def create_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Instantiate the rules matching ``select`` minus ``ignore``.

    Selectors are full codes (``ORD201``) or family prefixes (``ORD``).
    Unknown selectors are configuration errors so typos fail loudly.
    """
    for selector in list(select or []) + list(ignore or []):
        if not any(_match_selector(code, selector) for code in _RULE_TYPES):
            raise ConfigurationError(
                f"unknown rule selector {selector!r}; known rules: "
                f"{', '.join(available_rules())}"
            )
    chosen: List[Rule] = []
    for code in available_rules():
        if select and not any(_match_selector(code, sel) for sel in select):
            continue
        if ignore and any(_match_selector(code, sel) for sel in ignore):
            continue
        chosen.append(_RULE_TYPES[code]())
    return chosen
