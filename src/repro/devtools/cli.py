"""``repro-dfrs dev`` — the developer-facing static-analysis commands.

Exit codes (``dev check``): 0 clean, 1 findings or stale baseline entries,
2 usage/configuration errors (argparse's convention).
"""

from __future__ import annotations

import argparse
import json
import sys
import textwrap
from typing import List, Optional

from ..exceptions import ConfigurationError
from .engine import check_paths
from .rules import rule_catalog

__all__ = ["add_dev_subparser", "run_dev_command", "DEFAULT_BASELINE"]

#: The committed baseline file at the repo root (empty by policy today).
DEFAULT_BASELINE = "devtools-baseline.json"


def add_dev_subparser(subparsers: "argparse._SubParsersAction") -> None:
    """Wire ``dev check`` / ``dev rules`` into the main CLI parser."""
    dev = subparsers.add_parser(
        "dev", help="project-contract static analysis (see repro.devtools)"
    )
    dev_sub = dev.add_subparsers(dest="dev_command", required=True)

    check = dev_sub.add_parser(
        "check",
        help="run the rule pack; exit 1 on new findings or stale baseline entries",
    )
    check.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    check.add_argument(
        "--baseline",
        type=str,
        default=DEFAULT_BASELINE,
        help=f"baseline file grandfathering known findings (default: {DEFAULT_BASELINE})",
    )
    check.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline entirely (report every finding)",
    )
    check.add_argument(
        "--fix-baseline",
        action="store_true",
        help="rewrite the baseline to exactly the current findings and exit 0",
    )
    check.add_argument(
        "--select",
        type=str,
        default=None,
        help="comma-separated rule codes or family prefixes to run (e.g. DET,ORD201)",
    )
    check.add_argument(
        "--ignore",
        type=str,
        default=None,
        help="comma-separated rule codes or family prefixes to skip",
    )
    check.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="finding output format (default: text)",
    )

    dev_sub.add_parser(
        "rules", help="list the rule catalog with each rule's contract rationale"
    )


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    parts = [part.strip().upper() for part in raw.split(",") if part.strip()]
    return parts or None


def _run_check(args: argparse.Namespace) -> int:
    baseline_path = None if args.no_baseline else args.baseline
    try:
        result = check_paths(
            args.paths,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
            baseline_path=baseline_path,
            fix_baseline=args.fix_baseline and baseline_path is not None,
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.fix_baseline:
        print(
            f"baseline {args.baseline}: recorded {len(result.baselined)} "
            f"finding(s) from {result.checked_files} file(s)"
        )
        return 0
    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [finding.to_dict() for finding in result.findings],
                    "baselined": len(result.baselined),
                    "stale_baseline_fingerprints": result.stale_fingerprints,
                    "suppressed": result.suppressed,
                    "checked_files": result.checked_files,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0 if result.ok else 1
    for finding in result.findings:
        print(finding.format())
    for fingerprint in result.stale_fingerprints:
        print(
            f"stale baseline entry {fingerprint}: the violation it "
            f"grandfathered is gone — run `repro-dfrs dev check "
            f"--fix-baseline` to drop it"
        )
    summary = (
        f"{result.checked_files} file(s) checked: "
        f"{len(result.findings)} finding(s)"
    )
    if result.baselined:
        summary += f", {len(result.baselined)} baselined"
    if result.suppressed:
        summary += f", {result.suppressed} noqa-suppressed"
    if result.stale_fingerprints:
        summary += f", {len(result.stale_fingerprints)} stale baseline entr(y/ies)"
    print(summary)
    return 0 if result.ok else 1


def _run_rules() -> int:
    for rule in rule_catalog():
        scope = "project" if rule.scope == "project" else "file"
        print(f"{rule.code}  {rule.name}  [{scope}]")
        print(textwrap.indent(textwrap.fill(rule.rationale, width=76), "    "))
    return 0


def run_dev_command(args: argparse.Namespace) -> int:
    """Dispatch the ``dev`` subcommand; returns the process exit code."""
    if args.dev_command == "check":
        return _run_check(args)
    if args.dev_command == "rules":
        return _run_rules()
    raise AssertionError(f"unknown dev command {args.dev_command!r}")
