"""REG601: the cross-module registry audit.

Unlike the AST rules this one *imports* the subsystems: the contract it
checks — every spec class (``to_dict`` + a concrete ``kind``) is resolvable
from its subsystem's ``type`` registry, and every registered class answers
to the name it was registered under — spans modules, so parsing one file at
a time cannot see it.  Findings anchor at the offending ``class`` statement
and are only reported for files inside the checked path set, so
``dev check tests`` does not re-report src-side problems.
"""

from __future__ import annotations

import ast
import importlib
import inspect
import pkgutil
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Sequence, Tuple, Type

from .findings import Finding
from .rules import FileContext, Rule, register_rule

__all__ = ["RegistryAudit", "RegistryCompletenessRule", "subsystem_audits"]


@dataclass(frozen=True)
class RegistryAudit:
    """One subsystem's registry contract.

    ``registry()`` returns the live name → factory mapping; ``packages``
    are scanned for concrete subclasses of ``base()``.
    """

    label: str
    base_module: str
    base_name: str
    registry_module: str
    registry_name: str
    packages: Tuple[str, ...]

    def base(self) -> Type[Any]:
        return getattr(importlib.import_module(self.base_module), self.base_name)

    def registry(self) -> Mapping[str, Callable[..., Any]]:
        return getattr(importlib.import_module(self.registry_module), self.registry_name)


def subsystem_audits() -> List[RegistryAudit]:
    """The ``kind``-class registries established by PRs 3–9."""
    return [
        RegistryAudit(
            label="trace source",
            base_module="repro.traces.source",
            base_name="JobSource",
            registry_module="repro.traces.source",
            registry_name="_TRACE_SOURCE_TYPES",
            packages=("repro.traces",),
        ),
        RegistryAudit(
            label="trace transform",
            base_module="repro.traces.transforms",
            base_name="TraceTransform",
            registry_module="repro.traces.transforms",
            registry_name="_TRANSFORM_TYPES",
            packages=("repro.traces",),
        ),
        RegistryAudit(
            label="accumulator",
            base_module="repro.metrics.accumulators",
            base_name="Accumulator",
            registry_module="repro.metrics.accumulators",
            registry_name="_ACCUMULATOR_TYPES",
            packages=("repro.metrics",),
        ),
        RegistryAudit(
            label="platform",
            base_module="repro.platform.base",
            base_name="Platform",
            registry_module="repro.platform.base",
            registry_name="_PLATFORM_TYPES",
            packages=("repro.platform",),
        ),
        RegistryAudit(
            label="node event source",
            base_module="repro.platform.events",
            base_name="NodeEventSource",
            registry_module="repro.platform.events",
            registry_name="_NODE_EVENT_TYPES",
            packages=("repro.platform",),
        ),
        RegistryAudit(
            label="admission policy",
            base_module="repro.serve.admission",
            base_name="AdmissionPolicy",
            registry_module="repro.serve.admission",
            registry_name="_ADMISSION_POLICY_TYPES",
            packages=("repro.serve",),
        ),
        RegistryAudit(
            label="overhead model",
            base_module="repro.models.overheads",
            base_name="OverheadModel",
            registry_module="repro.models.overheads",
            registry_name="_OVERHEAD_MODEL_TYPES",
            packages=("repro.models",),
        ),
        RegistryAudit(
            label="execution-time model",
            base_module="repro.models.etm",
            base_name="ExecutionTimeModel",
            registry_module="repro.models.etm",
            registry_name="_ETM_TYPES",
            packages=("repro.models",),
        ),
        RegistryAudit(
            label="telemetry spec",
            base_module="repro.obs.telemetry",
            base_name="TelemetryConfig",
            registry_module="repro.obs.telemetry",
            registry_name="_TELEMETRY_TYPES",
            packages=("repro.obs",),
        ),
    ]


def _iter_package_classes(package_name: str, base: Type[Any]) -> Iterator[Type[Any]]:
    """Concrete classes of ``base`` defined anywhere under ``package_name``."""
    package = importlib.import_module(package_name)
    module_names = [package_name]
    search_paths = getattr(package, "__path__", None)
    if search_paths is not None:
        for info in pkgutil.iter_modules(search_paths):
            module_names.append(f"{package_name}.{info.name}")
    seen: set = set()
    for module_name in sorted(module_names):
        module = importlib.import_module(module_name)
        for value in vars(module).values():
            if not (isinstance(value, type) and issubclass(value, base)):
                continue
            if not value.__module__.startswith(package_name):
                continue
            if value in seen:
                continue
            seen.add(value)
            yield value


def _spec_classes(audit: RegistryAudit) -> Iterator[Type[Any]]:
    """Classes bound by the registry contract: concrete ``kind`` + ``to_dict``."""
    base = audit.base()
    for cls in _iter_package_classes(audit.packages[0], base):
        kind = inspect.getattr_static(cls, "kind", None)
        if not isinstance(kind, str) or kind == "abstract":
            continue
        if not callable(getattr(cls, "to_dict", None)):
            continue
        if getattr(cls, "spec_expressible", True) is False:
            # Escape hatches (in-memory/callable sources) opt out of the
            # spec form entirely; they are not required to register.
            continue
        yield cls


def _class_location(cls: Type[Any]) -> Tuple[str, int]:
    """(absolute source path, 1-based class statement line) of ``cls``."""
    source_file = inspect.getsourcefile(cls) or ""
    try:
        _, lineno = inspect.getsourcelines(cls)
    except (OSError, TypeError):
        lineno = 1
    return str(Path(source_file).resolve()) if source_file else "", lineno


@register_rule
class RegistryCompletenessRule(Rule):
    code = "REG601"
    name = "unregistered-spec-class"
    rationale = (
        "Every class with a to_dict spec form and a concrete `kind` must be "
        "resolvable from its subsystem registry under that kind, and every "
        "registered class must answer to its registered name — otherwise "
        "specs written today fail to round-trip tomorrow and cached "
        "campaign artifacts keyed on the spec hash become unloadable."
    )
    scope = "project"

    def check_project(self, contexts: Sequence[FileContext]) -> List[Finding]:
        by_abspath: Dict[str, FileContext] = {
            str(context.path.resolve()): context for context in contexts
        }
        findings: List[Finding] = []
        for audit in subsystem_audits():
            try:
                registry = audit.registry()
            except (ImportError, AttributeError) as error:
                raise RuntimeError(
                    f"registry audit for {audit.label} could not import its "
                    f"registry: {error}"
                ) from error
            for cls in _spec_classes(audit):
                kind = inspect.getattr_static(cls, "kind")
                if kind in registry:
                    continue
                abspath, lineno = _class_location(cls)
                context = by_abspath.get(abspath)
                if context is None:
                    continue
                findings.append(
                    context.finding(
                        _ClassAnchor(lineno),
                        self.code,
                        f"{audit.label} class {cls.__name__} declares "
                        f"kind={kind!r} and a to_dict spec form but is not "
                        f"registered in the {audit.label} registry",
                    )
                )
            # Registered class factories must answer to their registered name.
            for name, factory in sorted(registry.items()):
                if not isinstance(factory, type):
                    continue  # wrapper functions own their own naming
                abspath, lineno = _class_location(factory)
                context = by_abspath.get(abspath)
                if context is None:
                    continue
                declared = inspect.getattr_static(factory, "kind", None)
                if isinstance(declared, str) and declared != name:
                    findings.append(
                        context.finding(
                            _ClassAnchor(lineno),
                            self.code,
                            f"{audit.label} registry name {name!r} resolves to "
                            f"{factory.__name__}, which declares "
                            f"kind={declared!r}; the names must agree",
                        )
                    )
        return findings


class _ClassAnchor(ast.AST):
    """Minimal node-shaped anchor for findings located via ``inspect``."""

    def __init__(self, lineno: int) -> None:
        super().__init__()
        self.lineno = lineno
        self.col_offset = 0
