"""Fairness metrics over per-job outcomes.

The paper motivates maximum-stretch minimization as a metric that couples
performance with fairness (§II-B2).  This module quantifies that coupling on
finished simulations: Jain's fairness index and the Gini coefficient over the
per-job bounded stretches (or any other per-job quantity), plus helpers to
extract per-job stretch and yield distributions from simulation results and
allocation traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.observers import AllocationTraceRecorder
from ..core.records import SimulationResult
from ..exceptions import ReproError

__all__ = [
    "jain_index",
    "jain_index_from_moments",
    "gini_coefficient",
    "gini_from_masses",
    "FairnessReport",
    "stretch_fairness",
    "streaming_stretch_fairness",
    "mean_yields_from_trace",
]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n · Σx²)``, in ``(0, 1]``.

    Equals 1 when all values are identical and approaches ``1/n`` when one
    value dominates all others.  All values must be non-negative and at least
    one must be positive.
    """
    if len(values) == 0:
        raise ReproError("cannot compute Jain's index of an empty sample")
    array = np.asarray(values, dtype=float)
    if np.any(array < 0):
        raise ReproError("Jain's index requires non-negative values")
    square_sum = float(np.sum(array) ** 2)
    sum_squares = float(np.sum(array**2))
    if sum_squares == 0.0:
        raise ReproError("Jain's index is undefined when every value is zero")
    return square_sum / (array.size * sum_squares)


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini coefficient in ``[0, 1)``: 0 is perfect equality.

    Computed with the standard mean-absolute-difference formula.  All values
    must be non-negative and at least one must be positive.
    """
    if len(values) == 0:
        raise ReproError("cannot compute the Gini coefficient of an empty sample")
    array = np.asarray(values, dtype=float)
    if np.any(array < 0):
        raise ReproError("the Gini coefficient requires non-negative values")
    total = float(array.sum())
    if total == 0.0:
        raise ReproError("the Gini coefficient is undefined when every value is zero")
    sorted_values = np.sort(array)
    n = array.size
    ranks = np.arange(1, n + 1, dtype=float)
    return float((2.0 * np.dot(ranks, sorted_values)) / (n * total) - (n + 1.0) / n)


def jain_index_from_moments(moments) -> float:
    """Jain's index from online first/second moments (exact, mergeable).

    ``(Σx)² / (n·Σx²)`` rewrites as ``mean² / (mean² + variance)``, so the
    index needs only a :class:`repro.metrics.Moments` accumulator — no
    per-job population and no sketch approximation.  This is what makes the
    ``fairness`` collector streamable: moments merge exactly across a
    cell's instances.
    """
    if moments.count == 0:
        raise ReproError("cannot compute Jain's index of an empty sample")
    if moments.minimum < 0:
        raise ReproError("Jain's index requires non-negative values")
    mean_square = moments.m2 / moments.n + moments.mean ** 2
    if mean_square == 0.0:
        raise ReproError("Jain's index is undefined when every value is zero")
    return moments.mean ** 2 / mean_square


def gini_from_masses(masses: Sequence[tuple]) -> float:
    """Gini coefficient of a weighted sample (``(value, count)`` pairs).

    ``masses`` must be sorted by ascending value — exactly what
    :meth:`repro.metrics.QuantileSketch.bucket_masses` returns.  Uses the
    rank formulation of the mean-absolute-difference definition: a block of
    ``c`` equal values starting after cumulative count ``s`` contributes
    ranks ``s+1 .. s+c``, whose sum is ``c·s + c·(c+1)/2``.  Fed with sketch
    bucket masses, the result is within a few multiples of the sketch's
    relative-error bound of the exact coefficient.
    """
    if not masses:
        raise ReproError("cannot compute the Gini coefficient of an empty sample")
    total = 0.0
    n = 0
    rank_weighted = 0.0
    previous = -np.inf
    for value, count in masses:
        value = float(value)
        count = int(count)
        if count < 0:
            raise ReproError("mass counts must be >= 0")
        if count == 0:
            continue
        if value < 0:
            raise ReproError("the Gini coefficient requires non-negative values")
        if value < previous:
            raise ReproError("masses must be sorted by ascending value")
        previous = value
        rank_sum = count * n + count * (count + 1) / 2.0
        rank_weighted += value * rank_sum
        total += value * count
        n += count
    if n == 0:
        raise ReproError("cannot compute the Gini coefficient of an empty sample")
    if total == 0.0:
        raise ReproError("the Gini coefficient is undefined when every value is zero")
    return float((2.0 * rank_weighted) / (n * total) - (n + 1.0) / n)


@dataclass(frozen=True)
class FairnessReport:
    """Fairness view of one finished simulation run."""

    algorithm: str
    num_jobs: int
    max_stretch: float
    mean_stretch: float
    #: Jain's index over per-job bounded stretches (1 = perfectly even).
    jain_stretch: float
    #: Gini coefficient over per-job bounded stretches (0 = perfectly even).
    gini_stretch: float
    #: 95th-percentile bounded stretch.
    p95_stretch: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_jobs": float(self.num_jobs),
            "max_stretch": self.max_stretch,
            "mean_stretch": self.mean_stretch,
            "jain_stretch": self.jain_stretch,
            "gini_stretch": self.gini_stretch,
            "p95_stretch": self.p95_stretch,
        }


def stretch_fairness(result: SimulationResult) -> FairnessReport:
    """Fairness report over the bounded stretches of a finished run.

    Needs the materialized per-job records; a streaming-metrics result has
    no per-job distribution to assess (``result.stretches()`` says so).
    The tail percentile routes through the exact-mode accumulator of
    :mod:`repro.metrics` — same NumPy percentile, same bytes.
    """
    from ..metrics import ExactDistribution

    stretches = result.stretches()
    if stretches.size == 0:
        raise ReproError(
            f"run of {result.algorithm!r} finished no jobs; cannot assess fairness"
        )
    return FairnessReport(
        algorithm=result.algorithm,
        num_jobs=int(stretches.size),
        max_stretch=float(stretches.max()),
        mean_stretch=float(stretches.mean()),
        jain_stretch=jain_index(stretches),
        gini_stretch=gini_coefficient(stretches),
        p95_stretch=ExactDistribution(stretches).percentile(95),
    )


def streaming_stretch_fairness(job_stats) -> Dict[str, float]:
    """Fairness row of a streaming-metrics run (or a merged cell).

    ``job_stats`` is a :class:`repro.metrics.JobMetricsAccumulator`.  Jain's
    index is computed **exactly** from the stretch moments (it only needs
    the first two moments — see :func:`jain_index_from_moments`); the Gini
    coefficient and the tail percentile come from the stretch quantile
    sketch's bucket masses and carry its documented relative-error bound.
    """
    if job_stats.count == 0:
        raise ReproError("run finished no jobs; cannot assess fairness")
    sketch = job_stats.stretch_sketch
    return {
        "jain_stretch": jain_index_from_moments(job_stats.stretch),
        "gini_stretch": gini_from_masses(sketch.bucket_masses()),
        "p95_stretch": sketch.percentile(95),
    }


def mean_yields_from_trace(trace: AllocationTraceRecorder) -> Dict[int, float]:
    """Duration-weighted mean yield of every job in an allocation trace.

    Jobs appear only for the time during which they actually held an
    allocation; pauses do not count towards the average (they show up instead
    in the stretch).
    """
    totals: Dict[int, float] = {}
    durations: Dict[int, float] = {}
    for interval in trace.intervals:
        totals[interval.job_id] = (
            totals.get(interval.job_id, 0.0) + interval.yield_value * interval.duration
        )
        durations[interval.job_id] = durations.get(interval.job_id, 0.0) + interval.duration
    return {
        job_id: totals[job_id] / durations[job_id]
        for job_id in totals
        if durations[job_id] > 0
    }
