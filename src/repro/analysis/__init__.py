"""Post-simulation analysis toolkit.

Everything in this package consumes finished simulation artifacts —
:class:`~repro.core.records.SimulationResult` objects, observer recorders, or
per-instance metric mappings — and produces derived statistics:

* :mod:`repro.analysis.timeseries` — step-function series of cluster
  utilization quantities (busy nodes, allocated CPU, memory, running jobs);
* :mod:`repro.analysis.stats` — summary statistics, geometric means, and
  bootstrap confidence intervals for metric samples;
* :mod:`repro.analysis.fairness` — Jain / Gini fairness over per-job
  stretches and yields;
* :mod:`repro.analysis.energy` — energy consumption and idle power-down
  savings under a simple node power model (paper §II-B2);
* :mod:`repro.analysis.compare` — head-to-head algorithm comparisons
  (win fractions, dominance ratios, degradation summaries);
* :mod:`repro.analysis.report` — Markdown rendering of the above.

This package never imports from :mod:`repro.experiments`, so the experiment
harness is free to build on it.
"""

from .compare import AlgorithmComparison, compare_instances
from .energy import EnergyReport, NodePowerModel, energy_from_recorder, energy_from_result
from .export import (
    allocation_intervals_to_csv,
    degradation_factors_to_csv,
    job_records_to_csv,
    result_summary_to_json,
    utilization_samples_to_csv,
)
from .gantt import job_gantt, node_occupancy, yield_profile
from .fairness import (
    FairnessReport,
    gini_coefficient,
    jain_index,
    mean_yields_from_trace,
    stretch_fairness,
)
from .report import (
    comparison_report,
    energy_report_table,
    fairness_report_table,
    markdown_table,
)
from .stats import (
    SummaryStatistics,
    bootstrap_confidence_interval,
    geometric_mean,
    paired_win_fractions,
    summarize,
)
from .timeseries import (
    StepSeries,
    busy_nodes_series,
    cpu_allocated_series,
    memory_used_series,
    min_yield_series,
    running_jobs_series,
)

__all__ = [
    # compare
    "AlgorithmComparison",
    "compare_instances",
    # energy
    "EnergyReport",
    "NodePowerModel",
    "energy_from_recorder",
    "energy_from_result",
    # export
    "allocation_intervals_to_csv",
    "degradation_factors_to_csv",
    "job_records_to_csv",
    "result_summary_to_json",
    "utilization_samples_to_csv",
    # gantt
    "job_gantt",
    "node_occupancy",
    "yield_profile",
    # fairness
    "FairnessReport",
    "gini_coefficient",
    "jain_index",
    "mean_yields_from_trace",
    "stretch_fairness",
    # report
    "comparison_report",
    "energy_report_table",
    "fairness_report_table",
    "markdown_table",
    # stats
    "SummaryStatistics",
    "bootstrap_confidence_interval",
    "geometric_mean",
    "paired_win_fractions",
    "summarize",
    # timeseries
    "StepSeries",
    "busy_nodes_series",
    "cpu_allocated_series",
    "memory_used_series",
    "min_yield_series",
    "running_jobs_series",
]
