"""Head-to-head comparison of scheduling algorithms over many instances.

The paper's headline numbers (Table I, Figure 1) are aggregate degradation
factors.  This module complements them with the statistics reviewers usually
ask for next: per-algorithm summary statistics with confidence intervals,
win fractions, and pairwise dominance ratios.

The input is deliberately loose: any sequence of per-instance mappings
``algorithm name -> maximum bounded stretch`` works, which is exactly what
:meth:`repro.experiments.runner.InstanceResult.max_stretches` returns.  This
keeps :mod:`repro.analysis` free of imports from :mod:`repro.experiments`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..core.metrics import degradation_factors
from ..exceptions import ReproError
from .stats import SummaryStatistics, bootstrap_confidence_interval, summarize

__all__ = ["AlgorithmComparison", "compare_instances"]


@dataclass(frozen=True)
class AlgorithmComparison:
    """Aggregate comparison of a fixed algorithm set over many instances."""

    algorithms: Tuple[str, ...]
    #: Per-instance maximum stretches, one mapping per instance.
    per_instance_stretch: Tuple[Dict[str, float], ...]
    #: Per-instance degradation factors, one mapping per instance.
    per_instance_degradation: Tuple[Dict[str, float], ...]

    # -- aggregate views --------------------------------------------------------
    @property
    def num_instances(self) -> int:
        return len(self.per_instance_stretch)

    def degradation_values(self, algorithm: str) -> List[float]:
        """Degradation factors of one algorithm across all instances."""
        self._check_algorithm(algorithm)
        return [mapping[algorithm] for mapping in self.per_instance_degradation]

    def stretch_values(self, algorithm: str) -> List[float]:
        """Maximum stretches of one algorithm across all instances."""
        self._check_algorithm(algorithm)
        return [mapping[algorithm] for mapping in self.per_instance_stretch]

    def degradation_summary(self, algorithm: str) -> SummaryStatistics:
        """Summary statistics of an algorithm's degradation factors."""
        return summarize(self.degradation_values(algorithm))

    def degradation_confidence_interval(
        self, algorithm: str, *, confidence: float = 0.95, seed: int = 0
    ) -> Tuple[float, float]:
        """Bootstrap confidence interval on the mean degradation factor."""
        return bootstrap_confidence_interval(
            self.degradation_values(algorithm), confidence=confidence, seed=seed
        )

    def win_fraction(self, algorithm: str) -> float:
        """Fraction of instances on which the algorithm achieves the best stretch."""
        self._check_algorithm(algorithm)
        wins = 0
        for mapping in self.per_instance_stretch:
            if mapping[algorithm] == min(mapping.values()):
                wins += 1
        return wins / self.num_instances

    def best_algorithm(self) -> str:
        """Algorithm with the lowest mean degradation factor."""
        means = {
            name: float(np.mean(self.degradation_values(name)))
            for name in self.algorithms
        }
        return min(means, key=means.get)

    def ranking(self) -> List[Tuple[str, float]]:
        """Algorithms sorted by increasing mean degradation factor."""
        pairs = [
            (name, float(np.mean(self.degradation_values(name))))
            for name in self.algorithms
        ]
        return sorted(pairs, key=lambda pair: pair[1])

    def dominance_ratio(self, better: str, worse: str) -> float:
        """Geometric-mean ratio of ``worse``'s stretch to ``better``'s stretch.

        A value of 10 means ``worse`` suffers, on average (geometric), a
        maximum stretch ten times larger than ``better`` on the same
        instances — the "orders of magnitude" statements of the paper.
        """
        self._check_algorithm(better)
        self._check_algorithm(worse)
        ratios = []
        for mapping in self.per_instance_stretch:
            if mapping[better] <= 0:
                raise ReproError(f"non-positive stretch for {better!r}")
            ratios.append(mapping[worse] / mapping[better])
        return float(np.exp(np.mean(np.log(ratios))))

    def pairwise_dominance(self) -> Dict[Tuple[str, str], float]:
        """Dominance ratio for every ordered algorithm pair."""
        matrix: Dict[Tuple[str, str], float] = {}
        for better in self.algorithms:
            for worse in self.algorithms:
                if better != worse:
                    matrix[(better, worse)] = self.dominance_ratio(better, worse)
        return matrix

    def _check_algorithm(self, algorithm: str) -> None:
        if algorithm not in self.algorithms:
            raise ReproError(
                f"unknown algorithm {algorithm!r}; comparison covers {self.algorithms}"
            )


def compare_instances(
    per_instance_stretch: Sequence[Mapping[str, float]]
) -> AlgorithmComparison:
    """Build an :class:`AlgorithmComparison` from per-instance stretch mappings.

    Every mapping must cover the same algorithm set and contain strictly
    positive maximum stretches.
    """
    if not per_instance_stretch:
        raise ReproError("need at least one instance to compare algorithms")
    algorithms = tuple(sorted(per_instance_stretch[0]))
    if not algorithms:
        raise ReproError("instances must report at least one algorithm")
    stretch_maps: List[Dict[str, float]] = []
    degradation_maps: List[Dict[str, float]] = []
    for index, mapping in enumerate(per_instance_stretch):
        if tuple(sorted(mapping)) != algorithms:
            raise ReproError(
                f"instance {index} reports algorithms {sorted(mapping)} but the "
                f"first instance reports {list(algorithms)}"
            )
        as_dict = {name: float(value) for name, value in mapping.items()}
        for name, value in as_dict.items():
            if value <= 0:
                raise ReproError(
                    f"instance {index}: non-positive stretch {value} for {name!r}"
                )
        stretch_maps.append(as_dict)
        degradation_maps.append(degradation_factors(as_dict))
    return AlgorithmComparison(
        algorithms=algorithms,
        per_instance_stretch=tuple(stretch_maps),
        per_instance_degradation=tuple(degradation_maps),
    )
