"""Descriptive and resampling statistics for experiment results.

The paper reports average / standard deviation / maximum degradation factors
over large trace populations.  At laptop scale the populations are much
smaller, so this module adds the tooling needed to reason about the noise:
summary statistics with percentiles, geometric means (the natural average for
ratio metrics such as the degradation factor), and bootstrap confidence
intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ReproError

__all__ = [
    "SummaryStatistics",
    "summarize",
    "geometric_mean",
    "bootstrap_confidence_interval",
    "paired_win_fractions",
]


@dataclass(frozen=True)
class SummaryStatistics:
    """Five-number-plus summary of a sample of non-negative metric values."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form, convenient for report templating."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p95": self.p95,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> SummaryStatistics:
    """Summary statistics of a sample (population standard deviation).

    Backed by the exact-mode accumulator of :mod:`repro.metrics`
    (:class:`~repro.metrics.ExactDistribution`), which performs the same
    NumPy operations the historical inline code did — outputs are
    byte-identical.  For samples too large to materialize, accumulate a
    :class:`~repro.metrics.Moments` + :class:`~repro.metrics.QuantileSketch`
    pair instead.
    """
    from ..metrics import ExactDistribution

    if len(values) == 0:
        raise ReproError("cannot summarize an empty sample")
    array = np.asarray(values, dtype=float)
    if not np.all(np.isfinite(array)):
        raise ReproError("cannot summarize a sample containing NaN or infinity")
    # Zero-copy: ExactDistribution wraps the ndarray directly.
    sample = ExactDistribution(array)
    return SummaryStatistics(
        count=sample.count,
        mean=float(array.mean()),
        std=float(array.std(ddof=0)),
        minimum=float(array.min()),
        p25=sample.percentile(25),
        median=sample.percentile(50),
        p75=sample.percentile(75),
        p95=sample.percentile(95),
        maximum=float(array.max()),
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values.

    The degradation factor is a ratio metric, for which the geometric mean is
    the aggregation that does not privilege either algorithm of a pair; the
    paper reports arithmetic means, which we also compute, but the geometric
    mean is useful when comparing across heterogeneous instance sets.
    """
    if len(values) == 0:
        raise ReproError("cannot take the geometric mean of an empty sample")
    array = np.asarray(values, dtype=float)
    if np.any(array <= 0):
        raise ReproError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(array))))


def bootstrap_confidence_interval(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    *,
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile bootstrap confidence interval for ``statistic``.

    Parameters
    ----------
    values:
        The observed sample (e.g. per-instance degradation factors).
    statistic:
        Function mapping a 1-D array to a scalar (default: the mean).
    confidence:
        Coverage of the interval, in (0, 1).
    num_resamples:
        Number of bootstrap resamples.
    seed:
        Seed of the resampling RNG, for reproducibility.
    """
    if len(values) == 0:
        raise ReproError("cannot bootstrap an empty sample")
    if not (0.0 < confidence < 1.0):
        raise ReproError(f"confidence must be in (0, 1), got {confidence}")
    if num_resamples < 1:
        raise ReproError(f"num_resamples must be >= 1, got {num_resamples}")
    array = np.asarray(values, dtype=float)
    rng = np.random.default_rng(seed)
    estimates = np.empty(num_resamples, dtype=float)
    for index in range(num_resamples):
        resample = rng.choice(array, size=array.size, replace=True)
        estimates[index] = float(statistic(resample))
    alpha = (1.0 - confidence) / 2.0
    lower = float(np.percentile(estimates, 100.0 * alpha))
    upper = float(np.percentile(estimates, 100.0 * (1.0 - alpha)))
    return lower, upper


def paired_win_fractions(
    per_instance_metrics: Sequence[Mapping[str, float]],
    *,
    lower_is_better: bool = True,
) -> Dict[str, float]:
    """Fraction of instances on which each algorithm is (one of) the best.

    Parameters
    ----------
    per_instance_metrics:
        One mapping ``algorithm -> metric value`` per instance; all mappings
        must share the same algorithm set.
    lower_is_better:
        True for stretch/degradation metrics, False for yield-style metrics.
    """
    if not per_instance_metrics:
        raise ReproError("need at least one instance to compute win fractions")
    algorithms = set(per_instance_metrics[0])
    for mapping in per_instance_metrics:
        if set(mapping) != algorithms:
            raise ReproError("all instances must report the same algorithm set")
    wins = {name: 0 for name in algorithms}
    for mapping in per_instance_metrics:
        best = min(mapping.values()) if lower_is_better else max(mapping.values())
        for name, value in mapping.items():
            if value == best:
                wins[name] += 1
    total = len(per_instance_metrics)
    return {name: count / total for name, count in wins.items()}
