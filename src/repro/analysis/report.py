"""Plain-text / Markdown rendering of analysis results.

The repository is usable on machines without any plotting stack, so every
analysis artifact can be rendered as a Markdown table or a fixed-width text
block.  These helpers are shared by the CLI, the examples, and EXPERIMENTS.md
generation.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..exceptions import ReproError
from .compare import AlgorithmComparison
from .energy import EnergyReport
from .fairness import FairnessReport

__all__ = [
    "markdown_table",
    "comparison_report",
    "fairness_report_table",
    "energy_report_table",
]


def markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_format: str = "{:.2f}",
) -> str:
    """Render a Markdown table; floats are formatted, other cells via ``str``."""
    if not headers:
        raise ReproError("a table needs at least one column")
    for index, row in enumerate(rows):
        if len(row) != len(headers):
            raise ReproError(
                f"row {index} has {len(row)} cells but there are {len(headers)} headers"
            )

    def render(cell: object) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(render(cell) for cell in row) + " |")
    return "\n".join(lines)


def comparison_report(
    comparison: AlgorithmComparison,
    *,
    title: Optional[str] = None,
    reference_algorithm: Optional[str] = None,
) -> str:
    """Markdown report of an :class:`AlgorithmComparison`.

    One row per algorithm: mean / std / max degradation factor, win fraction,
    and (if ``reference_algorithm`` is given) the geometric-mean factor by
    which the reference outperforms it.
    """
    headers: List[str] = [
        "algorithm",
        "deg. avg",
        "deg. std",
        "deg. max",
        "wins",
    ]
    if reference_algorithm is not None:
        headers.append(f"x vs {reference_algorithm}")
    rows: List[List[object]] = []
    for algorithm, _ in comparison.ranking():
        summary = comparison.degradation_summary(algorithm)
        row: List[object] = [
            algorithm,
            summary.mean,
            summary.std,
            summary.maximum,
            f"{100.0 * comparison.win_fraction(algorithm):.0f}%",
        ]
        if reference_algorithm is not None:
            row.append(comparison.dominance_ratio(reference_algorithm, algorithm))
        rows.append(row)
    table = markdown_table(headers, rows)
    if title:
        return f"### {title}\n\n{table}"
    return table


def fairness_report_table(reports: Sequence[FairnessReport]) -> str:
    """Markdown table of per-algorithm fairness reports."""
    if not reports:
        raise ReproError("need at least one fairness report")
    headers = ["algorithm", "jobs", "max stretch", "mean stretch", "p95 stretch", "Jain", "Gini"]
    rows = [
        [
            report.algorithm,
            report.num_jobs,
            report.max_stretch,
            report.mean_stretch,
            report.p95_stretch,
            report.jain_stretch,
            report.gini_stretch,
        ]
        for report in reports
    ]
    return markdown_table(headers, rows, float_format="{:.3f}")


def energy_report_table(reports: Sequence[EnergyReport]) -> str:
    """Markdown table of per-algorithm energy reports."""
    if not reports:
        raise ReproError("need at least one energy report")
    headers = [
        "algorithm",
        "duration (h)",
        "busy node-hours",
        "idle node-hours",
        "always-on kWh",
        "power-down kWh",
        "savings",
    ]
    rows = [
        [
            report.algorithm,
            report.duration_seconds / 3600.0,
            report.busy_node_seconds / 3600.0,
            report.idle_node_seconds / 3600.0,
            report.always_on_kwh,
            report.power_down_kwh,
            f"{100.0 * report.savings_fraction:.1f}%",
        ]
        for report in reports
    ]
    return markdown_table(headers, rows)
