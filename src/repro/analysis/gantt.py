"""Text-based occupancy and Gantt rendering of allocation traces.

For debugging a scheduler, nothing beats looking at who ran where and when.
These helpers turn an :class:`~repro.core.observers.AllocationTraceRecorder`
into fixed-width text charts that render anywhere (terminal, CI logs,
Markdown code blocks):

* :func:`job_gantt` — one row per job, one character per time slot, showing
  when the job held an allocation and at roughly which yield;
* :func:`node_occupancy` — one row per node, showing how many tasks the node
  hosted in each time slot;
* :func:`yield_profile` — the per-slot yield values of a single job, for
  inspecting how an algorithm throttles it over time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.observers import AllocationTraceRecorder
from ..exceptions import ReproError

__all__ = ["job_gantt", "node_occupancy", "yield_profile"]

#: Glyphs used to render a job's yield in a Gantt slot (low to high).
_YIELD_GLYPHS = ".:-=+*#@"


def _time_bounds(trace: AllocationTraceRecorder) -> tuple:
    if not trace.intervals:
        raise ReproError("the allocation trace is empty; nothing to render")
    start = min(interval.start for interval in trace.intervals)
    end = max(interval.end for interval in trace.intervals)
    if end <= start:
        raise ReproError("the allocation trace spans zero time")
    return start, end


def _slot_edges(start: float, end: float, width: int) -> List[float]:
    step = (end - start) / width
    return [start + i * step for i in range(width + 1)]


def _yield_glyph(value: float) -> str:
    index = min(len(_YIELD_GLYPHS) - 1, int(value * len(_YIELD_GLYPHS)))
    return _YIELD_GLYPHS[index]


def job_gantt(
    trace: AllocationTraceRecorder,
    *,
    width: int = 80,
    job_ids: Optional[Sequence[int]] = None,
) -> str:
    """Render one row per job; denser glyphs mean higher yields.

    A blank slot means the job held no allocation during that slot (waiting
    or paused); glyphs from ``.`` to ``@`` encode the duration-weighted mean
    yield within the slot.
    """
    if width < 1:
        raise ReproError(f"width must be >= 1, got {width}")
    start, end = _time_bounds(trace)
    edges = _slot_edges(start, end, width)
    selected = list(job_ids) if job_ids is not None else trace.job_ids()
    label_width = max((len(str(job_id)) for job_id in selected), default=1)

    lines = [
        f"time span: {start:.0f}s .. {end:.0f}s "
        f"({(end - start) / width:.0f}s per column, glyphs . (low yield) to @ (yield 1))"
    ]
    for job_id in selected:
        intervals = trace.intervals_of_job(job_id)
        if job_ids is not None and not intervals:
            raise ReproError(f"job {job_id} never held an allocation in this trace")
        row = []
        for slot in range(width):
            slot_start, slot_end = edges[slot], edges[slot + 1]
            weighted = 0.0
            covered = 0.0
            for interval in intervals:
                overlap = min(interval.end, slot_end) - max(interval.start, slot_start)
                if overlap > 0:
                    weighted += overlap * interval.yield_value
                    covered += overlap
            row.append(_yield_glyph(weighted / covered) if covered > 0 else " ")
        lines.append(f"job {str(job_id).rjust(label_width)} |{''.join(row)}|")
    return "\n".join(lines)


def node_occupancy(
    trace: AllocationTraceRecorder,
    num_nodes: int,
    *,
    width: int = 80,
) -> str:
    """Render one row per node; digits count the tasks hosted in each slot.

    Counts above 9 render as ``+``.  A blank slot means the node was idle for
    the whole slot.
    """
    if width < 1:
        raise ReproError(f"width must be >= 1, got {width}")
    if num_nodes < 1:
        raise ReproError(f"num_nodes must be >= 1, got {num_nodes}")
    start, end = _time_bounds(trace)
    edges = _slot_edges(start, end, width)

    # For every slot and node, the maximum simultaneous task count observed.
    counts: Dict[int, List[int]] = {node: [0] * width for node in range(num_nodes)}
    for interval in trace.intervals:
        per_node: Dict[int, int] = {}
        for node in interval.nodes:
            if not (0 <= node < num_nodes):
                raise ReproError(
                    f"interval of job {interval.job_id} references node {node}, "
                    f"outside a {num_nodes}-node cluster"
                )
            per_node[node] = per_node.get(node, 0) + 1
        for slot in range(width):
            slot_start, slot_end = edges[slot], edges[slot + 1]
            if min(interval.end, slot_end) - max(interval.start, slot_start) > 0:
                for node, tasks in per_node.items():
                    counts[node][slot] += tasks

    lines = [f"time span: {start:.0f}s .. {end:.0f}s ({(end - start) / width:.0f}s per column)"]
    label_width = len(str(num_nodes - 1))
    for node in range(num_nodes):
        row = "".join(
            " " if count == 0 else (str(count) if count <= 9 else "+")
            for count in counts[node]
        )
        lines.append(f"node {str(node).rjust(label_width)} |{row}|")
    return "\n".join(lines)


def yield_profile(
    trace: AllocationTraceRecorder,
    job_id: int,
    *,
    width: int = 20,
) -> List[float]:
    """Duration-weighted mean yield of one job in each of ``width`` time slots.

    Slots during which the job held no allocation report 0.0.  The slots
    cover the job's own active span (first allocation to last release), not
    the whole simulation.
    """
    if width < 1:
        raise ReproError(f"width must be >= 1, got {width}")
    intervals = trace.intervals_of_job(job_id)
    if not intervals:
        raise ReproError(f"job {job_id} never held an allocation in this trace")
    start = intervals[0].start
    end = max(interval.end for interval in intervals)
    edges = _slot_edges(start, end, width)
    profile: List[float] = []
    for slot in range(width):
        slot_start, slot_end = edges[slot], edges[slot + 1]
        weighted = 0.0
        covered = 0.0
        for interval in intervals:
            overlap = min(interval.end, slot_end) - max(interval.start, slot_start)
            if overlap > 0:
                weighted += overlap * interval.yield_value
                covered += overlap
        profile.append(weighted / covered if covered > 0 else 0.0)
    return profile
