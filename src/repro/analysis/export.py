"""Export simulation artifacts to CSV and JSON for external analysis.

The repository deliberately has no plotting dependency; instead, every
artifact a user might want to plot elsewhere (per-job records, allocation
intervals, utilization samples, per-instance degradation factors) can be
written to plain CSV or JSON with these helpers.  All writers accept either a
path or any file-like object with a ``write`` method.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, TextIO, Union

from ..core.observers import AllocationTraceRecorder, UtilizationRecorder
from ..core.records import SimulationResult
from ..exceptions import ReproError

__all__ = [
    "job_records_to_csv",
    "allocation_intervals_to_csv",
    "utilization_samples_to_csv",
    "degradation_factors_to_csv",
    "result_summary_to_json",
]

_Destination = Union[str, Path, TextIO]


def _open_destination(destination: Optional[_Destination]):
    """Return ``(file_object, should_close)`` for the given destination.

    With ``destination=None`` an in-memory buffer is returned, and the
    caller-facing wrapper functions return its contents as a string.
    """
    if destination is None:
        return io.StringIO(), False
    if isinstance(destination, (str, Path)):
        return open(destination, "w", encoding="utf-8", newline=""), True
    if hasattr(destination, "write"):
        return destination, False
    raise ReproError(f"unsupported destination {destination!r}")


def _finish(handle, should_close: bool) -> Optional[str]:
    if isinstance(handle, io.StringIO):
        return handle.getvalue()
    if should_close:
        handle.close()
    return None


def job_records_to_csv(
    result: SimulationResult, destination: Optional[_Destination] = None
) -> Optional[str]:
    """One row per completed job: identity, resources, timing, stretch, costs."""
    handle, should_close = _open_destination(destination)
    writer = csv.writer(handle)
    writer.writerow(
        [
            "job_id",
            "submit_time",
            "num_tasks",
            "cpu_need",
            "mem_requirement",
            "execution_time",
            "first_start_time",
            "completion_time",
            "turnaround_time",
            "wait_time",
            "bounded_stretch",
            "preemptions",
            "migrations",
        ]
    )
    for record in result.jobs:
        writer.writerow(
            [
                record.spec.job_id,
                record.spec.submit_time,
                record.spec.num_tasks,
                record.spec.cpu_need,
                record.spec.mem_requirement,
                record.spec.execution_time,
                record.first_start_time,
                record.completion_time,
                record.turnaround_time,
                record.wait_time,
                record.stretch,
                record.preemptions,
                record.migrations,
            ]
        )
    return _finish(handle, should_close)


def allocation_intervals_to_csv(
    trace: AllocationTraceRecorder, destination: Optional[_Destination] = None
) -> Optional[str]:
    """One row per allocation interval: job, start, end, yield, nodes."""
    handle, should_close = _open_destination(destination)
    writer = csv.writer(handle)
    writer.writerow(["job_id", "start", "end", "duration", "yield", "nodes"])
    for interval in sorted(trace.intervals, key=lambda iv: (iv.start, iv.job_id)):
        writer.writerow(
            [
                interval.job_id,
                interval.start,
                interval.end,
                interval.duration,
                interval.yield_value,
                " ".join(str(node) for node in interval.nodes),
            ]
        )
    return _finish(handle, should_close)


def utilization_samples_to_csv(
    recorder: UtilizationRecorder, destination: Optional[_Destination] = None
) -> Optional[str]:
    """One row per utilization sample (cluster-wide counters after each event)."""
    handle, should_close = _open_destination(destination)
    writer = csv.writer(handle)
    writer.writerow(
        ["time", "busy_nodes", "cpu_allocated", "memory_used", "running_jobs", "min_yield"]
    )
    for sample in recorder.samples:
        writer.writerow(
            [
                sample.time,
                sample.busy_nodes,
                sample.cpu_allocated,
                sample.memory_used,
                sample.running_jobs,
                sample.min_yield,
            ]
        )
    return _finish(handle, should_close)


def degradation_factors_to_csv(
    per_instance: Sequence[Mapping[str, float]],
    destination: Optional[_Destination] = None,
) -> Optional[str]:
    """One row per instance, one column per algorithm (degradation factors)."""
    if not per_instance:
        raise ReproError("need at least one instance to export degradation factors")
    algorithms = sorted(per_instance[0])
    for index, mapping in enumerate(per_instance):
        if sorted(mapping) != algorithms:
            raise ReproError(
                f"instance {index} reports a different algorithm set than instance 0"
            )
    handle, should_close = _open_destination(destination)
    writer = csv.writer(handle)
    writer.writerow(["instance"] + algorithms)
    for index, mapping in enumerate(per_instance):
        writer.writerow([index] + [mapping[name] for name in algorithms])
    return _finish(handle, should_close)


def result_summary_to_json(
    results: Mapping[str, SimulationResult],
    destination: Optional[_Destination] = None,
    *,
    indent: int = 2,
) -> Optional[str]:
    """Per-algorithm summary (stretch, turnaround, costs) as a JSON document."""
    payload: Dict[str, Dict[str, float]] = {}
    for name, result in results.items():
        payload[name] = {
            "max_stretch": result.max_stretch,
            "mean_stretch": result.mean_stretch,
            "mean_turnaround": result.mean_turnaround,
            "makespan": result.makespan,
            "num_jobs": float(result.num_jobs),
            "preemptions_per_job": result.preemptions_per_job(),
            "migrations_per_job": result.migrations_per_job(),
            "preemption_bandwidth_gb_per_sec": result.preemption_bandwidth_gb_per_sec(),
            "migration_bandwidth_gb_per_sec": result.migration_bandwidth_gb_per_sec(),
            "mean_idle_nodes": result.mean_idle_nodes(),
        }
    text = json.dumps(payload, indent=indent, sort_keys=True)
    handle, should_close = _open_destination(destination)
    handle.write(text + "\n")
    return _finish(handle, should_close)
