"""Export simulation artifacts to CSV and JSON for external analysis.

The repository deliberately has no plotting dependency; instead, every
artifact a user might want to plot elsewhere (per-job records, allocation
intervals, utilization samples, per-instance degradation factors) can be
written to plain CSV or JSON with these helpers.  All writers accept either a
path or any file-like object with a ``write`` method.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, TextIO, Union

from ..core.observers import AllocationTraceRecorder, UtilizationRecorder
from ..core.records import SimulationResult
from ..exceptions import ReproError

__all__ = [
    "job_records_to_csv",
    "allocation_intervals_to_csv",
    "utilization_samples_to_csv",
    "degradation_factors_to_csv",
    "result_summary_to_json",
    "campaign_result_to_json",
    "campaign_result_from_json",
    "campaign_rows_to_csv",
    "campaign_rows_from_csv",
]

_Destination = Union[str, Path, TextIO]


def _open_destination(destination: Optional[_Destination]):
    """Return ``(file_object, should_close)`` for the given destination.

    With ``destination=None`` an in-memory buffer is returned, and the
    caller-facing wrapper functions return its contents as a string.
    """
    if destination is None:
        return io.StringIO(), False
    if isinstance(destination, (str, Path)):
        return open(destination, "w", encoding="utf-8", newline=""), True
    if hasattr(destination, "write"):
        return destination, False
    raise ReproError(f"unsupported destination {destination!r}")


def _finish(handle, should_close: bool) -> Optional[str]:
    if isinstance(handle, io.StringIO):
        return handle.getvalue()
    if should_close:
        handle.close()
    return None


def job_records_to_csv(
    result: SimulationResult, destination: Optional[_Destination] = None
) -> Optional[str]:
    """One row per completed job: identity, resources, timing, stretch, costs."""
    handle, should_close = _open_destination(destination)
    writer = csv.writer(handle)
    writer.writerow(
        [
            "job_id",
            "submit_time",
            "num_tasks",
            "cpu_need",
            "mem_requirement",
            "execution_time",
            "first_start_time",
            "completion_time",
            "turnaround_time",
            "wait_time",
            "bounded_stretch",
            "preemptions",
            "migrations",
        ]
    )
    for record in result.jobs:
        writer.writerow(
            [
                record.spec.job_id,
                record.spec.submit_time,
                record.spec.num_tasks,
                record.spec.cpu_need,
                record.spec.mem_requirement,
                record.spec.execution_time,
                record.first_start_time,
                record.completion_time,
                record.turnaround_time,
                record.wait_time,
                record.stretch,
                record.preemptions,
                record.migrations,
            ]
        )
    return _finish(handle, should_close)


def allocation_intervals_to_csv(
    trace: AllocationTraceRecorder, destination: Optional[_Destination] = None
) -> Optional[str]:
    """One row per allocation interval: job, start, end, yield, nodes."""
    handle, should_close = _open_destination(destination)
    writer = csv.writer(handle)
    writer.writerow(["job_id", "start", "end", "duration", "yield", "nodes"])
    for interval in sorted(trace.intervals, key=lambda iv: (iv.start, iv.job_id)):
        writer.writerow(
            [
                interval.job_id,
                interval.start,
                interval.end,
                interval.duration,
                interval.yield_value,
                " ".join(str(node) for node in interval.nodes),
            ]
        )
    return _finish(handle, should_close)


def utilization_samples_to_csv(
    recorder: UtilizationRecorder, destination: Optional[_Destination] = None
) -> Optional[str]:
    """One row per utilization sample (cluster-wide counters after each event)."""
    handle, should_close = _open_destination(destination)
    writer = csv.writer(handle)
    writer.writerow(
        ["time", "busy_nodes", "cpu_allocated", "memory_used", "running_jobs", "min_yield"]
    )
    for sample in recorder.samples:
        writer.writerow(
            [
                sample.time,
                sample.busy_nodes,
                sample.cpu_allocated,
                sample.memory_used,
                sample.running_jobs,
                sample.min_yield,
            ]
        )
    return _finish(handle, should_close)


def degradation_factors_to_csv(
    per_instance: Sequence[Mapping[str, float]],
    destination: Optional[_Destination] = None,
) -> Optional[str]:
    """One row per instance, one column per algorithm (degradation factors)."""
    if not per_instance:
        raise ReproError("need at least one instance to export degradation factors")
    algorithms = sorted(per_instance[0])
    for index, mapping in enumerate(per_instance):
        if sorted(mapping) != algorithms:
            raise ReproError(
                f"instance {index} reports a different algorithm set than instance 0"
            )
    handle, should_close = _open_destination(destination)
    writer = csv.writer(handle)
    writer.writerow(["instance"] + algorithms)
    for index, mapping in enumerate(per_instance):
        writer.writerow([index] + [mapping[name] for name in algorithms])
    return _finish(handle, should_close)


def result_summary_to_json(
    results: Mapping[str, SimulationResult],
    destination: Optional[_Destination] = None,
    *,
    indent: int = 2,
) -> Optional[str]:
    """Per-algorithm summary (stretch, turnaround, costs) as a JSON document."""
    payload: Dict[str, Dict[str, float]] = {}
    for name, result in results.items():
        payload[name] = {
            "max_stretch": result.max_stretch,
            "mean_stretch": result.mean_stretch,
            "mean_turnaround": result.mean_turnaround,
            "makespan": result.makespan,
            "num_jobs": float(result.num_jobs),
            "preemptions_per_job": result.preemptions_per_job(),
            "migrations_per_job": result.migrations_per_job(),
            "preemption_bandwidth_gb_per_sec": result.preemption_bandwidth_gb_per_sec(),
            "migration_bandwidth_gb_per_sec": result.migration_bandwidth_gb_per_sec(),
            "mean_idle_nodes": result.mean_idle_nodes(),
        }
    text = json.dumps(payload, indent=indent, sort_keys=True)
    handle, should_close = _open_destination(destination)
    handle.write(text + "\n")
    return _finish(handle, should_close)


# --------------------------------------------------------------------------- #
# Campaign persistence                                                         #
#                                                                              #
# These writers/readers operate on the plain-dictionary form of campaign      #
# results (see repro.campaign.result.CampaignResult.to_json_dict) so that     #
# the analysis layer stays free of campaign imports; CampaignResult wraps     #
# them with typed to_json/from_json/rows_to_csv/rows_from_csv methods.        #
# --------------------------------------------------------------------------- #

def campaign_result_to_json(
    payload: Mapping, destination: Optional[_Destination] = None, *, indent: int = 2
) -> Optional[str]:
    """Write a campaign result payload (scenario, hash, rows) as JSON."""
    text = json.dumps(payload, indent=indent, sort_keys=True)
    handle, should_close = _open_destination(destination)
    handle.write(text + "\n")
    return _finish(handle, should_close)


def _read_source(source: Union[str, Path, TextIO], looks_like_content) -> str:
    """Shared path / content-string / file-object dispatch for the readers.

    ``looks_like_content`` decides whether a plain string is the document
    itself (format-specific: JSON starts with ``{``, campaign CSV starts
    with its fixed header); anything else is treated as a path.
    """
    if isinstance(source, Path):
        return source.read_text(encoding="utf-8")
    if isinstance(source, str):
        if looks_like_content(source):
            return source
        return Path(source).read_text(encoding="utf-8")
    if hasattr(source, "read"):
        return source.read()
    raise ReproError(f"unsupported source {source!r}")


def campaign_result_from_json(source: Union[str, Path, TextIO]) -> Dict:
    """Load a campaign result payload written by :func:`campaign_result_to_json`.

    ``source`` may be a path, a file object, or the JSON text itself (any
    string starting with ``{`` is treated as text, not as a path).
    """
    text = _read_source(source, lambda s: s.lstrip().startswith("{"))
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ReproError("campaign JSON must decode to an object")
    return payload


def _campaign_csv_columns(rows: Sequence[Mapping]) -> "tuple[List[str], List[str]]":
    """Union of param / metric names over the rows, in first-seen order."""
    params: Dict[str, None] = {}
    metrics: Dict[str, None] = {}
    for row in rows:
        for axis, _ in row.get("params", ()):
            params.setdefault(axis, None)
        for name in row.get("metrics", {}):
            metrics.setdefault(name, None)
    return list(params), list(metrics)


def campaign_rows_to_csv(
    rows: Sequence[Mapping], destination: Optional[_Destination] = None
) -> Optional[str]:
    """One tidy CSV row per campaign run.

    Fixed identity columns first, then one ``param:<axis>`` column per sweep
    axis and one ``metric:<name>`` column per metric; every param/metric cell
    is JSON-encoded so values (floats, ints, strings, sample lists) survive
    the round trip through :func:`campaign_rows_from_csv` type-faithfully.
    """
    param_names, metric_names = _campaign_csv_columns(rows)
    handle, should_close = _open_destination(destination)
    writer = csv.writer(handle)
    writer.writerow(
        ["cell_index", "instance_index", "workload", "algorithm"]
        + [f"param:{axis}" for axis in param_names]
        + [f"metric:{name}" for name in metric_names]
    )
    for row in rows:
        params = {axis: value for axis, value in row.get("params", ())}
        metrics = row.get("metrics", {})
        writer.writerow(
            [
                row["cell_index"],
                row["instance_index"],
                row["workload"],
                row["algorithm"],
            ]
            + [
                json.dumps(params[axis]) if axis in params else ""
                for axis in param_names
            ]
            + [
                json.dumps(metrics[name]) if name in metrics else ""
                for name in metric_names
            ]
        )
    return _finish(handle, should_close)


def campaign_rows_from_csv(source: Union[str, Path, TextIO]) -> List[Dict]:
    """Parse rows written by :func:`campaign_rows_to_csv` back into dictionaries."""
    # A campaign CSV string opens with the fixed identity header (covering
    # header-only documents) or spans lines; paths do neither.
    text = _read_source(
        source, lambda s: s.startswith("cell_index,") or "\n" in s
    )
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise ReproError("campaign CSV is empty") from None
    expected = ["cell_index", "instance_index", "workload", "algorithm"]
    if header[: len(expected)] != expected:
        raise ReproError(f"unexpected campaign CSV header {header!r}")
    param_names = [
        name[len("param:"):] for name in header if name.startswith("param:")
    ]
    metric_names = [
        name[len("metric:"):] for name in header if name.startswith("metric:")
    ]
    rows: List[Dict] = []
    for record in reader:
        if not record:
            continue
        cells = dict(zip(header, record))
        params = [
            [axis, json.loads(cells[f"param:{axis}"])]
            for axis in param_names
            if cells.get(f"param:{axis}", "") != ""
        ]
        metrics = {
            name: json.loads(cells[f"metric:{name}"])
            for name in metric_names
            if cells.get(f"metric:{name}", "") != ""
        }
        rows.append(
            {
                "cell_index": int(cells["cell_index"]),
                "instance_index": int(cells["instance_index"]),
                "workload": cells["workload"],
                "algorithm": cells["algorithm"],
                "params": params,
                "metrics": metrics,
            }
        )
    return rows
