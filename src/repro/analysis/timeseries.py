"""Right-continuous step series built from simulation traces.

Every quantity the simulator tracks between events is piecewise constant:
the number of busy nodes, the total allocated CPU, the number of running
jobs, the minimum yield, ...  :class:`StepSeries` models exactly that — a
right-continuous step function defined by breakpoints and values — and
provides the time-weighted statistics (mean, max, integral, quantiles) that
utilization and energy studies need.

The module also provides converters from the
:class:`~repro.core.observers.UtilizationRecorder` samples into the most
commonly used series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.observers import UtilizationRecorder, UtilizationSample
from ..exceptions import ReproError

__all__ = [
    "StepSeries",
    "busy_nodes_series",
    "cpu_allocated_series",
    "memory_used_series",
    "running_jobs_series",
    "min_yield_series",
]


@dataclass(frozen=True)
class StepSeries:
    """A right-continuous step function over a closed time interval.

    The function takes the value ``values[i]`` on ``[times[i], times[i+1])``
    and ``values[-1]`` on ``[times[-1], end]``.  ``times`` must be strictly
    increasing and ``end`` must be at least ``times[-1]``.
    """

    times: Tuple[float, ...]
    values: Tuple[float, ...]
    end: float

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values):
            raise ReproError(
                f"times and values must have the same length "
                f"({len(self.times)} != {len(self.values)})"
            )
        if not self.times:
            raise ReproError("a StepSeries needs at least one breakpoint")
        for earlier, later in zip(self.times, self.times[1:]):
            if later <= earlier:
                raise ReproError("StepSeries breakpoints must be strictly increasing")
        if self.end < self.times[-1]:
            raise ReproError(
                f"end ({self.end}) must be >= the last breakpoint ({self.times[-1]})"
            )

    # -- construction ----------------------------------------------------------
    @staticmethod
    def from_samples(
        samples: Sequence[Tuple[float, float]], *, end: Optional[float] = None
    ) -> "StepSeries":
        """Build a series from ``(time, value)`` samples.

        Consecutive samples at the same time keep only the last value (the
        state right after the event); consecutive equal values are merged.
        """
        if not samples:
            raise ReproError("cannot build a StepSeries from zero samples")
        ordered = sorted(samples, key=lambda pair: pair[0])
        times: List[float] = []
        values: List[float] = []
        for time, value in ordered:
            if times and time == times[-1]:
                values[-1] = value
            elif values and value == values[-1]:
                continue
            else:
                times.append(float(time))
                values.append(float(value))
        series_end = float(end) if end is not None else ordered[-1][0]
        series_end = max(series_end, times[-1])
        return StepSeries(tuple(times), tuple(values), series_end)

    # -- basic queries ----------------------------------------------------------
    @property
    def start(self) -> float:
        return self.times[0]

    @property
    def duration(self) -> float:
        return self.end - self.start

    def value_at(self, time: float) -> float:
        """Value of the step function at ``time`` (clamped to the domain)."""
        if time <= self.times[0]:
            return self.values[0]
        index = int(np.searchsorted(np.asarray(self.times), time, side="right")) - 1
        return self.values[index]

    # -- time-weighted statistics ------------------------------------------------
    def _segments(self) -> Tuple[np.ndarray, np.ndarray]:
        """Durations and values of the constant segments covering the domain."""
        times = np.asarray(self.times + (self.end,), dtype=float)
        durations = np.diff(times)
        return durations, np.asarray(self.values, dtype=float)

    def integral(self) -> float:
        """Time integral of the series over its domain."""
        durations, values = self._segments()
        return float(np.dot(durations, values))

    def mean(self) -> float:
        """Time-weighted mean over the domain (0 for a zero-length domain)."""
        if self.duration <= 0:
            return float(self.values[-1])
        return self.integral() / self.duration

    def max(self) -> float:
        return float(np.max(self.values))

    def min(self) -> float:
        return float(np.min(self.values))

    def time_weighted_quantile(self, quantile: float) -> float:
        """Quantile of the value distribution, weighting each value by duration."""
        if not (0.0 <= quantile <= 1.0):
            raise ReproError(f"quantile must be in [0, 1], got {quantile}")
        durations, values = self._segments()
        if durations.sum() <= 0:
            return float(values[-1])
        order = np.argsort(values)
        sorted_values = values[order]
        cumulative = np.cumsum(durations[order]) / durations.sum()
        index = int(np.searchsorted(cumulative, quantile, side="left"))
        index = min(index, len(sorted_values) - 1)
        return float(sorted_values[index])

    def fraction_above(self, threshold: float) -> float:
        """Fraction of the domain during which the value strictly exceeds ``threshold``."""
        durations, values = self._segments()
        total = durations.sum()
        if total <= 0:
            return 0.0
        return float(durations[values > threshold].sum() / total)

    def fraction_at_or_below(self, threshold: float) -> float:
        """Fraction of the domain during which the value is ≤ ``threshold``."""
        return 1.0 - self.fraction_above(threshold)

    # -- transformations ---------------------------------------------------------
    def map(self, function: Callable[[float], float]) -> "StepSeries":
        """Apply ``function`` to every value, keeping the breakpoints."""
        return StepSeries(self.times, tuple(function(v) for v in self.values), self.end)

    def scale(self, factor: float) -> "StepSeries":
        """Multiply every value by ``factor``."""
        return self.map(lambda value: value * factor)

    def restrict(self, start: float, end: float) -> "StepSeries":
        """Restriction of the series to ``[start, end]``."""
        if end <= start:
            raise ReproError(f"restrict needs end > start, got [{start}, {end}]")
        start = max(start, self.start)
        end = min(end, self.end)
        if end <= start:
            raise ReproError("restriction interval does not intersect the domain")
        times: List[float] = [start]
        values: List[float] = [self.value_at(start)]
        for time, value in zip(self.times, self.values):
            if start < time < end:
                if value != values[-1]:
                    times.append(time)
                    values.append(value)
        return StepSeries(tuple(times), tuple(values), end)

    def resample(self, step: float) -> List[Tuple[float, float]]:
        """Sample the series every ``step`` seconds (inclusive of the start)."""
        if step <= 0:
            raise ReproError(f"step must be > 0, got {step}")
        points: List[Tuple[float, float]] = []
        time = self.start
        while time <= self.end + 1e-9:
            points.append((time, self.value_at(time)))
            time += step
        return points

    def __len__(self) -> int:
        return len(self.times)


# --------------------------------------------------------------------------- #
# Converters from the utilization recorder                                     #
# --------------------------------------------------------------------------- #
def _series_from_recorder(
    recorder: UtilizationRecorder,
    extract: Callable[[UtilizationSample], float],
    *,
    end: Optional[float] = None,
) -> StepSeries:
    if not recorder.samples:
        raise ReproError(
            "the utilization recorder holds no samples; was it passed to the "
            "Simulator as an observer?"
        )
    samples = [(sample.time, extract(sample)) for sample in recorder.samples]
    return StepSeries.from_samples(samples, end=end)


def busy_nodes_series(
    recorder: UtilizationRecorder, *, end: Optional[float] = None
) -> StepSeries:
    """Number of busy (non-idle) nodes over time."""
    return _series_from_recorder(recorder, lambda s: float(s.busy_nodes), end=end)


def cpu_allocated_series(
    recorder: UtilizationRecorder, *, end: Optional[float] = None
) -> StepSeries:
    """Total allocated CPU (in node units) over time."""
    return _series_from_recorder(recorder, lambda s: s.cpu_allocated, end=end)


def memory_used_series(
    recorder: UtilizationRecorder, *, end: Optional[float] = None
) -> StepSeries:
    """Total memory in use (in node units) over time."""
    return _series_from_recorder(recorder, lambda s: s.memory_used, end=end)


def running_jobs_series(
    recorder: UtilizationRecorder, *, end: Optional[float] = None
) -> StepSeries:
    """Number of running jobs over time."""
    return _series_from_recorder(recorder, lambda s: float(s.running_jobs), end=end)


def min_yield_series(
    recorder: UtilizationRecorder, *, end: Optional[float] = None
) -> StepSeries:
    """Minimum yield over the running jobs, over time (1.0 when idle)."""
    return _series_from_recorder(recorder, lambda s: s.min_yield, end=end)
