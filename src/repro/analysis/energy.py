"""Energy accounting for finished simulations.

The paper observes (§II-B2) that once the minimum yield has been maximized,
an under-subscribed cluster can power down idle nodes to save energy.  This
module quantifies that observation: given the busy-node profile of a run (from
a :class:`~repro.core.observers.UtilizationRecorder` or from the engine's
aggregate idle-node integral) and a simple node power model, it computes the
energy consumed with and without idle-node power-down and the corresponding
savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.cluster import Cluster
from ..core.observers import UtilizationRecorder
from ..core.records import SimulationResult
from ..exceptions import ConfigurationError, ReproError
from .timeseries import StepSeries, busy_nodes_series

__all__ = ["NodePowerModel", "EnergyReport", "energy_from_recorder", "energy_from_result"]

#: Joules per kilowatt-hour, used for the human-readable report fields.
_JOULES_PER_KWH = 3_600_000.0


@dataclass(frozen=True)
class NodePowerModel:
    """Three-state power model of one cluster node.

    Parameters
    ----------
    busy_watts:
        Power drawn by a node hosting at least one running task.
    idle_watts:
        Power drawn by a powered-on node hosting no task.
    off_watts:
        Power drawn by a powered-down node (0 for a full shutdown, a few watts
        for suspend-to-RAM).
    """

    busy_watts: float = 300.0
    idle_watts: float = 180.0
    off_watts: float = 10.0

    def __post_init__(self) -> None:
        if self.busy_watts <= 0:
            raise ConfigurationError(f"busy_watts must be > 0, got {self.busy_watts}")
        if self.idle_watts < 0 or self.off_watts < 0:
            raise ConfigurationError("idle_watts and off_watts must be >= 0")
        if self.idle_watts > self.busy_watts:
            raise ConfigurationError("idle_watts must not exceed busy_watts")
        if self.off_watts > self.idle_watts:
            raise ConfigurationError("off_watts must not exceed idle_watts")


@dataclass(frozen=True)
class EnergyReport:
    """Energy consumed by one run under a given node power model."""

    algorithm: str
    duration_seconds: float
    busy_node_seconds: float
    idle_node_seconds: float
    #: Energy with every node always powered on, in joules.
    always_on_joules: float
    #: Energy with idle nodes powered down (optimistic, instant transitions).
    power_down_joules: float

    @property
    def always_on_kwh(self) -> float:
        return self.always_on_joules / _JOULES_PER_KWH

    @property
    def power_down_kwh(self) -> float:
        return self.power_down_joules / _JOULES_PER_KWH

    @property
    def savings_joules(self) -> float:
        return self.always_on_joules - self.power_down_joules

    @property
    def savings_fraction(self) -> float:
        """Relative energy saving of idle power-down over always-on."""
        if self.always_on_joules <= 0:
            return 0.0
        return self.savings_joules / self.always_on_joules

    def as_dict(self) -> Dict[str, float]:
        return {
            "duration_seconds": self.duration_seconds,
            "busy_node_seconds": self.busy_node_seconds,
            "idle_node_seconds": self.idle_node_seconds,
            "always_on_kwh": self.always_on_kwh,
            "power_down_kwh": self.power_down_kwh,
            "savings_fraction": self.savings_fraction,
        }


def _report(
    algorithm: str,
    cluster: Cluster,
    duration: float,
    busy_node_seconds: float,
    model: NodePowerModel,
) -> EnergyReport:
    if duration < 0:
        raise ReproError(f"duration must be >= 0, got {duration}")
    total_node_seconds = cluster.num_nodes * duration
    busy_node_seconds = min(busy_node_seconds, total_node_seconds)
    idle_node_seconds = total_node_seconds - busy_node_seconds
    always_on = busy_node_seconds * model.busy_watts + idle_node_seconds * model.idle_watts
    power_down = busy_node_seconds * model.busy_watts + idle_node_seconds * model.off_watts
    return EnergyReport(
        algorithm=algorithm,
        duration_seconds=duration,
        busy_node_seconds=busy_node_seconds,
        idle_node_seconds=idle_node_seconds,
        always_on_joules=always_on,
        power_down_joules=power_down,
    )


def energy_from_recorder(
    recorder: UtilizationRecorder,
    cluster: Cluster,
    *,
    algorithm: str = "unknown",
    model: Optional[NodePowerModel] = None,
    end: Optional[float] = None,
) -> EnergyReport:
    """Energy report from a utilization trace (exact busy-node profile)."""
    model = model or NodePowerModel()
    series: StepSeries = busy_nodes_series(recorder, end=end)
    duration = series.duration
    busy_node_seconds = series.integral()
    return _report(algorithm, cluster, duration, busy_node_seconds, model)


def energy_from_result(
    result: SimulationResult,
    *,
    model: Optional[NodePowerModel] = None,
) -> EnergyReport:
    """Energy report from the engine's aggregate idle-node accounting.

    This uses the ``idle_node_seconds`` integral that every simulation records
    even without observers; it is exact but offers no time resolution.
    """
    model = model or NodePowerModel()
    duration = result.makespan
    total_node_seconds = result.cluster.num_nodes * duration
    busy_node_seconds = max(0.0, total_node_seconds - result.idle_node_seconds)
    return _report(result.algorithm, result.cluster, duration, busy_node_seconds, model)
