"""Dynamic Fractional Resource Scheduling (DFRS) for HPC workloads.

Reproduction of Stillwell, Vivien, and Casanova, *Dynamic Fractional Resource
Scheduling for HPC Workloads*, IEEE IPDPS 2010.

The package is organised in four layers:

* :mod:`repro.core` — discrete-event cluster simulator, job/allocation model,
  metrics (yield, bounded stretch, degradation factor), cost accounting;
* :mod:`repro.packing` — the MCB8 multi-capacity bin-packing heuristic and
  the binary searches on yield / estimated stretch;
* :mod:`repro.schedulers` — the seven DFRS algorithms plus the FCFS and EASY
  batch baselines;
* :mod:`repro.workloads` and :mod:`repro.experiments` — the Lublin synthetic
  workload model, SWF/HPC2N trace handling, and the harness regenerating the
  paper's Figure 1, Table I, and Table II.

Quickstart::

    from repro import Cluster, LublinWorkloadGenerator, run_instance

    cluster = Cluster(num_nodes=32)
    workload = LublinWorkloadGenerator(cluster).generate(100, seed=1)
    outcome = run_instance(workload, ["easy", "dynmcb8-asap-per-600"],
                           penalty_seconds=300.0)
    print(outcome.max_stretches())
"""

from .core import (
    Cluster,
    FIVE_MINUTE_PENALTY,
    JobSpec,
    JobState,
    NO_PENALTY,
    ReschedulingPenaltyModel,
    SimulationConfig,
    SimulationResult,
    Simulator,
    bounded_stretch,
    degradation_factors,
)
from .exceptions import (
    AllocationError,
    ConfigurationError,
    InfeasibleAllocationError,
    ReproError,
    SchedulingError,
    SimulationError,
    TraceFormatError,
    WorkloadError,
)
from .experiments import (
    ExperimentConfig,
    default_scale,
    paper_scale,
    quick_scale,
    run_algorithm,
    run_extensions_comparison,
    run_figure1,
    run_instance,
    run_packing_ablation,
    run_period_sweep,
    run_table1,
    run_table2,
    run_timing_study,
    run_utilization_study,
)
from .platform import (
    ExponentialFailureSource,
    HomogeneousPlatform,
    NodeClass,
    NodeClassesPlatform,
    Platform,
    WeibullFailureSource,
    platform_from_dict,
)
from .schedulers import (
    PAPER_ALGORITHMS,
    available_algorithms,
    create_scheduler,
)
from .workloads import (
    HPC2N_CLUSTER,
    Hpc2nLikeTraceGenerator,
    LublinWorkloadGenerator,
    Workload,
    parse_swf,
    scale_to_load,
    swf_to_dfrs_jobs,
    write_swf,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Cluster",
    "FIVE_MINUTE_PENALTY",
    "JobSpec",
    "JobState",
    "NO_PENALTY",
    "ReschedulingPenaltyModel",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "bounded_stretch",
    "degradation_factors",
    # exceptions
    "AllocationError",
    "ConfigurationError",
    "InfeasibleAllocationError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "TraceFormatError",
    "WorkloadError",
    # experiments
    "ExperimentConfig",
    "default_scale",
    "paper_scale",
    "quick_scale",
    "run_algorithm",
    "run_extensions_comparison",
    "run_figure1",
    "run_instance",
    "run_packing_ablation",
    "run_period_sweep",
    "run_table1",
    "run_table2",
    "run_timing_study",
    "run_utilization_study",
    # platform
    "Platform",
    "HomogeneousPlatform",
    "NodeClass",
    "NodeClassesPlatform",
    "ExponentialFailureSource",
    "WeibullFailureSource",
    "platform_from_dict",
    # schedulers
    "PAPER_ALGORITHMS",
    "available_algorithms",
    "create_scheduler",
    # workloads
    "HPC2N_CLUSTER",
    "Hpc2nLikeTraceGenerator",
    "LublinWorkloadGenerator",
    "Workload",
    "parse_swf",
    "scale_to_load",
    "swf_to_dfrs_jobs",
    "write_swf",
]
