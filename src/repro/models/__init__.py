"""Fidelity models — pluggable overhead and execution-time registries.

The paper's simulations are idealized: preemption and checkpointing are
free, migration pays only a fixed resume penalty, and every job runs for
exactly its trace execution time.  This package makes both fidelity choices
explicit, pluggable seams so campaigns can sweep them:

* :mod:`~repro.models.overheads` — :class:`OverheadModel`: what the engine
  charges a job at preemption / migration / checkpoint / resume instants
  (``none`` / ``constant`` / ``memory-linear`` / ``checkpoint-bandwidth``).
* :mod:`~repro.models.etm` — :class:`ExecutionTimeModel`: a per-job runtime
  multiplier applied at admission (``exact`` / ``table`` / ``stochastic``),
  while scheduler-visible runtime estimates stay at the trace value.

Both follow the established subsystem contract: canonical
``to_dict``/``from_dict`` spec forms, ``type``-dispatching registries
(REG601-audited), and defaults (``none`` / ``exact``) pinned byte-identical
to the model-free engine.  Scenarios attach them through a ``models`` block
(:class:`repro.campaign.Scenario`), with ``{axis}`` sweep templating.
"""

from .etm import (
    ExactExecutionTimeModel,
    ExecutionTimeModel,
    StochasticExecutionTimeModel,
    TableExecutionTimeModel,
    available_execution_time_models,
    execution_time_model_from_dict,
    register_execution_time_model,
)
from .overheads import (
    OVERHEAD_EVENTS,
    CheckpointBandwidthOverheadModel,
    ConstantOverheadModel,
    MemoryLinearOverheadModel,
    NoOverheadModel,
    OverheadModel,
    available_overhead_models,
    job_memory_gb,
    overhead_model_from_dict,
    register_overhead_model,
)

__all__ = [
    "OVERHEAD_EVENTS",
    "OverheadModel",
    "NoOverheadModel",
    "ConstantOverheadModel",
    "MemoryLinearOverheadModel",
    "CheckpointBandwidthOverheadModel",
    "register_overhead_model",
    "overhead_model_from_dict",
    "available_overhead_models",
    "job_memory_gb",
    "ExecutionTimeModel",
    "ExactExecutionTimeModel",
    "TableExecutionTimeModel",
    "StochasticExecutionTimeModel",
    "register_execution_time_model",
    "execution_time_model_from_dict",
    "available_execution_time_models",
]
