"""Execution-time models: how long jobs *actually* run vs. their trace time.

The paper treats each trace record's execution time as exact dedicated
work.  Real systems do not: runtimes drift with input data, interference,
and machine state.  An :class:`ExecutionTimeModel` is consulted once per
job at admission and returns a multiplier on the job's dedicated work —
``1.0`` reproduces the trace exactly, ``1.1`` makes the job 10 % longer
than its record.  Scheduler-visible *runtime estimates* stay at the nominal
trace value, so the models double as an inaccurate-estimates study: the
backfilling baselines plan with the trace time while the jobs actually run
for the scaled time.

The module mirrors the other subsystem seams: a small contract with a
canonical ``to_dict``/``from_dict`` spec form and a ``type``-dispatching
registry, usable from a scenario spec's ``models`` block (with ``{axis}``
sweep templating).

Three models are provided:

* ``exact`` — multiplier 1.0 for every job (the default; a scenario without
  a ``models`` block is byte-identical to one with
  ``{"execution_time": {"type": "exact"}}``).
* ``table`` — piecewise-constant multipliers keyed by the job's trace
  execution time (short jobs often mis-estimate worse than long ones).
* ``stochastic`` — seeded per-job uniform multipliers, deterministic in the
  job id alone so materialized, streaming, and replay paths agree.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.job import JobSpec
from ..exceptions import ConfigurationError

__all__ = [
    "ExecutionTimeModel",
    "ExactExecutionTimeModel",
    "TableExecutionTimeModel",
    "StochasticExecutionTimeModel",
    "register_execution_time_model",
    "execution_time_model_from_dict",
    "available_execution_time_models",
]


def _check_multiplier(label: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise ConfigurationError(
            f"{label} must be a finite multiplier > 0, got {value!r}"
        )
    return value


class ExecutionTimeModel:
    """Abstract runtime multiplier, applied by the engine at admission.

    Concrete models implement :meth:`execution_multiplier` and a canonical
    :meth:`to_dict`.  Models must be deterministic functions of the job spec
    alone (no admission-order state), so every execution path — materialized
    ``simulate``, ``run_stream``, and serve replay — scales each job
    identically.
    """

    kind: str = "abstract"
    #: True when ``to_dict()`` round-trips through
    #: :func:`execution_time_model_from_dict`.
    spec_expressible: bool = True

    def execution_multiplier(self, spec: JobSpec) -> float:
        """Multiplier on ``spec``'s dedicated work (> 0, finite)."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """Canonical spec dictionary (with a ``type`` field)."""
        raise NotImplementedError


@dataclass(frozen=True)
class ExactExecutionTimeModel(ExecutionTimeModel):
    """The trace is the truth: multiplier 1.0 for every job (the default)."""

    kind = "exact"

    def execution_multiplier(self, spec: JobSpec) -> float:
        return 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind}


@dataclass(frozen=True)
class TableExecutionTimeModel(ExecutionTimeModel):
    """Piecewise-constant multipliers keyed by trace execution time.

    ``breakpoints`` is a sequence of ``[upper_bound_seconds, multiplier]``
    pairs with strictly increasing bounds; a job takes the multiplier of
    the first bound its trace execution time does not exceed, and
    ``default`` past the last bound.  E.g. ``[[60, 1.5], [3600, 1.1]]``
    with ``default 1.0``: sub-minute jobs run 50 % long, sub-hour jobs
    10 % long, everything else exactly.
    """

    breakpoints: Tuple[Tuple[float, float], ...] = ()
    default: float = 1.0

    kind = "table"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "default", _check_multiplier("default", self.default)
        )
        checked: List[Tuple[float, float]] = []
        previous = -math.inf
        for entry in self.breakpoints:
            pair = tuple(entry)
            if len(pair) != 2:
                raise ConfigurationError(
                    "table breakpoints must be [upper_bound, multiplier] "
                    f"pairs, got {entry!r}"
                )
            bound = float(pair[0])
            if not math.isfinite(bound) or bound <= 0:
                raise ConfigurationError(
                    f"table breakpoint bound must be finite and > 0, "
                    f"got {bound!r}"
                )
            if bound <= previous:
                raise ConfigurationError(
                    "table breakpoint bounds must be strictly increasing; "
                    f"got {bound!r} after {previous!r}"
                )
            previous = bound
            checked.append(
                (bound, _check_multiplier(f"multiplier at {bound!r}", pair[1]))
            )
        object.__setattr__(self, "breakpoints", tuple(checked))

    def execution_multiplier(self, spec: JobSpec) -> float:
        for bound, multiplier in self.breakpoints:
            if spec.execution_time <= bound:
                return multiplier
        return self.default

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "breakpoints": [
                [bound, multiplier] for bound, multiplier in self.breakpoints
            ],
            "default": self.default,
        }


@dataclass(frozen=True)
class StochasticExecutionTimeModel(ExecutionTimeModel):
    """Seeded uniform per-job multipliers in ``[min, max]``.

    The multiplier is a pure hash of ``(seed, job_id)`` — no RNG stream —
    so it is independent of admission order and identical across the
    materialized, streaming, and serve-replay execution paths.
    """

    seed: int = 2010
    min_multiplier: float = 1.0
    max_multiplier: float = 1.25

    kind = "stochastic"

    def __post_init__(self) -> None:
        object.__setattr__(self, "seed", int(self.seed))
        low = _check_multiplier("min_multiplier", self.min_multiplier)
        high = _check_multiplier("max_multiplier", self.max_multiplier)
        if low > high:
            raise ConfigurationError(
                f"min_multiplier ({low!r}) must not exceed "
                f"max_multiplier ({high!r})"
            )
        object.__setattr__(self, "min_multiplier", low)
        object.__setattr__(self, "max_multiplier", high)

    def execution_multiplier(self, spec: JobSpec) -> float:
        digest = hashlib.blake2b(
            f"{self.seed}:{spec.job_id}".encode("utf-8"), digest_size=8
        ).digest()
        fraction = int.from_bytes(digest, "big") / float(1 << 64)
        return self.min_multiplier + fraction * (
            self.max_multiplier - self.min_multiplier
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "seed": self.seed,
            "min_multiplier": self.min_multiplier,
            "max_multiplier": self.max_multiplier,
        }


# --------------------------------------------------------------------------- #
# Registry                                                                     #
# --------------------------------------------------------------------------- #
_ETM_TYPES: Dict[str, Callable[..., ExecutionTimeModel]] = {}


def register_execution_time_model(
    kind: str, factory: Callable[..., ExecutionTimeModel]
) -> None:
    """Register an execution-time-model type under its spec ``type`` name."""
    if kind in _ETM_TYPES:
        raise ConfigurationError(
            f"execution-time model type {kind!r} already registered"
        )
    _ETM_TYPES[kind] = factory


def available_execution_time_models() -> List[str]:
    """Registered spec-expressible execution-time model names, sorted."""
    return sorted(_ETM_TYPES)


def execution_time_model_from_dict(
    data: Mapping[str, Any]
) -> ExecutionTimeModel:
    """Build an execution-time model from its spec dictionary."""
    payload = dict(data)
    kind = payload.pop("type", None)
    if kind is None:
        raise ConfigurationError(
            "execution-time model spec needs a 'type' field"
        )
    try:
        factory = _ETM_TYPES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown execution-time model type {kind!r}; known types: "
            f"{', '.join(available_execution_time_models())}"
        ) from None
    try:
        return factory(**payload)
    except TypeError as error:
        raise ConfigurationError(
            f"invalid options for execution-time model {kind!r}: {error}"
        ) from None


def _table_from_spec(
    breakpoints: Sequence[Sequence[float]] = (),
    default: float = 1.0,
) -> TableExecutionTimeModel:
    return TableExecutionTimeModel(
        breakpoints=tuple(
            (float(entry[0]), float(entry[1]))
            for entry in breakpoints
            if _check_breakpoint_shape(entry)
        ),
        default=float(default),
    )


def _check_breakpoint_shape(entry: Any) -> bool:
    if not isinstance(entry, Sequence) or len(entry) != 2:
        raise ConfigurationError(
            "table breakpoints must be [upper_bound, multiplier] pairs, "
            f"got {entry!r}"
        )
    return True


register_execution_time_model("exact", ExactExecutionTimeModel)
register_execution_time_model("table", _table_from_spec)
register_execution_time_model("stochastic", StochasticExecutionTimeModel)
