"""Overhead models: what preemption, migration, and checkpointing cost.

The paper's simulations charge no cost for preemption or checkpointing and
only a fixed resume penalty for migration; this module makes that fidelity
choice explicit and pluggable.  An :class:`OverheadModel` is asked by the
engine, at each preemption / migration / checkpoint / resume instant, how
many seconds of extra work the affected job must pay before it makes
progress again.  The charge lands on the job's ``penalty_remaining`` — the
same channel the paper's migration resume penalty uses — so overheads delay
completions, inflate stretch, and show up in the ``costs`` collector rows
(``overhead_events`` / ``overhead_seconds``).

The module mirrors the other subsystem seams (:mod:`repro.traces`,
:mod:`repro.platform`, ...): a small contract with a canonical
``to_dict``/``from_dict`` spec form and a ``type``-dispatching registry, so
an overhead model can be written in a ``repro-dfrs run`` spec file's
``models`` block (with ``{axis}`` sweep templating) exactly like a workload
source or platform can.

Four models are provided:

* ``none`` — the paper's convention: zero cost everywhere (the default; a
  scenario without a ``models`` block is byte-identical to one with
  ``{"overhead": {"type": "none"}}``).
* ``constant`` — a fixed per-event cost in seconds, settable per event kind.
* ``memory-linear`` — cost proportional to the job's total memory footprint
  (seconds per GB), the classic "migration moves the address space" model.
* ``checkpoint-bandwidth`` — cost = job memory / storage bandwidth, with
  optional per-node-class bandwidth overrides for heterogeneous platforms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.cluster import Cluster
from ..core.job import JobSpec
from ..exceptions import ConfigurationError

__all__ = [
    "OVERHEAD_EVENTS",
    "OverheadModel",
    "NoOverheadModel",
    "ConstantOverheadModel",
    "MemoryLinearOverheadModel",
    "CheckpointBandwidthOverheadModel",
    "register_overhead_model",
    "overhead_model_from_dict",
    "available_overhead_models",
    "job_memory_gb",
]

#: The engine instants an overhead model may charge at.
#:
#: * ``"preemption"`` — a running job is paused (state checkpointed out).
#: * ``"migration"`` — a running job moves to a different node set.
#: * ``"resume"`` — a paused job is restarted (state checkpointed in).
#: * ``"checkpoint"`` — a failing node's tasks are saved under the
#:   platform's ``failure_policy="migrate"``.
OVERHEAD_EVENTS = ("checkpoint", "migration", "preemption", "resume")


def job_memory_gb(spec: JobSpec, cluster: Cluster) -> float:
    """Total memory footprint of a job in GB (all tasks, physical units).

    ``mem_requirement`` is a fraction of the reference node's memory, so the
    footprint is ``num_tasks * mem_requirement * node_memory_gb`` — the same
    arithmetic :class:`~repro.core.penalties.ReschedulingPenaltyModel` uses
    for its bandwidth accounting.
    """
    return spec.total_memory * cluster.node_memory_gb


def _check_event(event: str) -> None:
    if event not in OVERHEAD_EVENTS:
        raise ConfigurationError(
            f"unknown overhead event {event!r}; known events: "
            f"{', '.join(OVERHEAD_EVENTS)}"
        )


def _check_seconds(label: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value) or value < 0:
        raise ConfigurationError(
            f"{label} must be a finite value >= 0, got {value!r}"
        )
    return value


class OverheadModel:
    """Abstract per-event cost model, charged by the engine.

    Concrete models implement :meth:`overhead_seconds` and a canonical
    :meth:`to_dict`.  Models must be deterministic, picklable (they travel
    to campaign pool workers inside ``SimulationConfig``), and cheap —
    ``overhead_seconds`` runs on the engine's event hot path.
    """

    kind: str = "abstract"
    #: True when ``to_dict()`` round-trips through
    #: :func:`overhead_model_from_dict`.
    spec_expressible: bool = True

    def overhead_seconds(
        self,
        event: str,
        spec: JobSpec,
        cluster: Cluster,
        nodes: Optional[Tuple[int, ...]] = None,
        node_classes: Optional[Sequence[str]] = None,
    ) -> float:
        """Seconds of extra work ``event`` costs job ``spec``.

        ``nodes`` is the job's node assignment at the charge instant (the
        nodes the state moves from), when known; ``node_classes`` maps node
        index to platform node-class name on heterogeneous platforms
        (``None`` on the homogeneous cluster).
        """
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """Canonical spec dictionary (with a ``type`` field)."""
        raise NotImplementedError


@dataclass(frozen=True)
class NoOverheadModel(OverheadModel):
    """The paper's convention: every event is free (the default model)."""

    kind = "none"

    def overhead_seconds(
        self,
        event: str,
        spec: JobSpec,
        cluster: Cluster,
        nodes: Optional[Tuple[int, ...]] = None,
        node_classes: Optional[Sequence[str]] = None,
    ) -> float:
        _check_event(event)
        return 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind}


@dataclass(frozen=True)
class ConstantOverheadModel(OverheadModel):
    """A fixed cost in seconds per event, settable per event kind."""

    preemption_seconds: float = 0.0
    migration_seconds: float = 0.0
    resume_seconds: float = 0.0
    checkpoint_seconds: float = 0.0

    kind = "constant"

    def __post_init__(self) -> None:
        for label in (
            "preemption_seconds",
            "migration_seconds",
            "resume_seconds",
            "checkpoint_seconds",
        ):
            object.__setattr__(
                self, label, _check_seconds(label, getattr(self, label))
            )

    def overhead_seconds(
        self,
        event: str,
        spec: JobSpec,
        cluster: Cluster,
        nodes: Optional[Tuple[int, ...]] = None,
        node_classes: Optional[Sequence[str]] = None,
    ) -> float:
        _check_event(event)
        return float(getattr(self, f"{event}_seconds"))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "preemption_seconds": self.preemption_seconds,
            "migration_seconds": self.migration_seconds,
            "resume_seconds": self.resume_seconds,
            "checkpoint_seconds": self.checkpoint_seconds,
        }


@dataclass(frozen=True)
class MemoryLinearOverheadModel(OverheadModel):
    """Cost proportional to the job's total memory footprint.

    ``seconds_per_gb`` prices moving one GB of state; ``events`` restricts
    which instants are charged (default: all of them).  The footprint is the
    physical :func:`job_memory_gb`, so a 4-task job at ``mem_requirement
    0.25`` on 8 GB nodes pays for 8 GB per charged event.
    """

    seconds_per_gb: float = 0.0
    events: Tuple[str, ...] = OVERHEAD_EVENTS

    kind = "memory-linear"

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "seconds_per_gb",
            _check_seconds("seconds_per_gb", self.seconds_per_gb),
        )
        events = tuple(self.events)
        for event in events:
            _check_event(event)
        if not events:
            raise ConfigurationError(
                "memory-linear overhead model needs at least one event; "
                f"known events: {', '.join(OVERHEAD_EVENTS)}"
            )
        if len(set(events)) != len(events):
            raise ConfigurationError(
                f"memory-linear overhead events contain duplicates: {events!r}"
            )
        # Canonical order keeps to_dict stable regardless of spec order.
        object.__setattr__(self, "events", tuple(sorted(events)))

    def overhead_seconds(
        self,
        event: str,
        spec: JobSpec,
        cluster: Cluster,
        nodes: Optional[Tuple[int, ...]] = None,
        node_classes: Optional[Sequence[str]] = None,
    ) -> float:
        _check_event(event)
        if event not in self.events:
            return 0.0
        return self.seconds_per_gb * job_memory_gb(spec, cluster)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "type": self.kind,
            "seconds_per_gb": self.seconds_per_gb,
        }
        if self.events != OVERHEAD_EVENTS:
            data["events"] = list(self.events)
        return data


@dataclass(frozen=True)
class CheckpointBandwidthOverheadModel(OverheadModel):
    """Cost = job memory / storage bandwidth, per-node-class overridable.

    Every charged instant moves the job's state through the checkpoint
    store once (the paper's single-transfer convention for migration), so
    each event costs ``job_memory_gb / bandwidth``.  On heterogeneous
    platforms ``class_bandwidth`` overrides the default per node class; the
    effective bandwidth of a multi-node assignment is the *slowest* class
    in it (the transfer completes when the last node's state is saved).
    """

    bandwidth_gb_per_sec: float = 1.0
    class_bandwidth: Mapping[str, float] = field(default_factory=dict)

    kind = "checkpoint-bandwidth"

    def __post_init__(self) -> None:
        bandwidth = float(self.bandwidth_gb_per_sec)
        if not math.isfinite(bandwidth) or bandwidth <= 0:
            raise ConfigurationError(
                "bandwidth_gb_per_sec must be a finite value > 0, "
                f"got {bandwidth!r}"
            )
        object.__setattr__(self, "bandwidth_gb_per_sec", bandwidth)
        if not isinstance(self.class_bandwidth, Mapping):
            raise ConfigurationError(
                "class_bandwidth must be a mapping of node-class name to "
                f"GB/s, got {type(self.class_bandwidth).__name__}"
            )
        checked: Dict[str, float] = {}
        for name, value in self.class_bandwidth.items():
            value = float(value)
            if not math.isfinite(value) or value <= 0:
                raise ConfigurationError(
                    f"class_bandwidth[{name!r}] must be a finite value > 0, "
                    f"got {value!r}"
                )
            checked[str(name)] = value
        object.__setattr__(self, "class_bandwidth", checked)

    def _effective_bandwidth(
        self,
        nodes: Optional[Tuple[int, ...]],
        node_classes: Optional[Sequence[str]],
    ) -> float:
        if not self.class_bandwidth or nodes is None or node_classes is None:
            return self.bandwidth_gb_per_sec
        slowest = math.inf
        for node in nodes:
            if 0 <= node < len(node_classes):
                name = node_classes[node]
                slowest = min(
                    slowest,
                    self.class_bandwidth.get(name, self.bandwidth_gb_per_sec),
                )
        if not math.isfinite(slowest):
            return self.bandwidth_gb_per_sec
        return slowest

    def overhead_seconds(
        self,
        event: str,
        spec: JobSpec,
        cluster: Cluster,
        nodes: Optional[Tuple[int, ...]] = None,
        node_classes: Optional[Sequence[str]] = None,
    ) -> float:
        _check_event(event)
        bandwidth = self._effective_bandwidth(nodes, node_classes)
        return job_memory_gb(spec, cluster) / bandwidth

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "type": self.kind,
            "bandwidth_gb_per_sec": self.bandwidth_gb_per_sec,
        }
        if self.class_bandwidth:
            data["class_bandwidth"] = {
                name: self.class_bandwidth[name]
                for name in sorted(self.class_bandwidth)
            }
        return data


# --------------------------------------------------------------------------- #
# Registry                                                                     #
# --------------------------------------------------------------------------- #
_OVERHEAD_MODEL_TYPES: Dict[str, Callable[..., OverheadModel]] = {}


def register_overhead_model(
    kind: str, factory: Callable[..., OverheadModel]
) -> None:
    """Register an overhead-model type under its spec ``type`` name."""
    if kind in _OVERHEAD_MODEL_TYPES:
        raise ConfigurationError(
            f"overhead model type {kind!r} already registered"
        )
    _OVERHEAD_MODEL_TYPES[kind] = factory


def available_overhead_models() -> List[str]:
    """Registered spec-expressible overhead-model type names, sorted."""
    return sorted(_OVERHEAD_MODEL_TYPES)


def overhead_model_from_dict(data: Mapping[str, Any]) -> OverheadModel:
    """Build an overhead model from its spec dict (inverse of ``to_dict``)."""
    payload = dict(data)
    kind = payload.pop("type", None)
    if kind is None:
        raise ConfigurationError("overhead model spec needs a 'type' field")
    try:
        factory = _OVERHEAD_MODEL_TYPES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown overhead model type {kind!r}; known types: "
            f"{', '.join(available_overhead_models())}"
        ) from None
    try:
        return factory(**payload)
    except TypeError as error:
        raise ConfigurationError(
            f"invalid options for overhead model {kind!r}: {error}"
        ) from None


def _memory_linear_from_spec(
    seconds_per_gb: float = 0.0,
    events: Optional[Sequence[str]] = None,
) -> MemoryLinearOverheadModel:
    if events is None:
        return MemoryLinearOverheadModel(seconds_per_gb=float(seconds_per_gb))
    return MemoryLinearOverheadModel(
        seconds_per_gb=float(seconds_per_gb),
        events=tuple(str(event) for event in events),
    )


register_overhead_model("none", NoOverheadModel)
register_overhead_model("constant", ConstantOverheadModel)
register_overhead_model("memory-linear", _memory_linear_from_spec)
register_overhead_model(
    "checkpoint-bandwidth", CheckpointBandwidthOverheadModel
)
