"""Idealised gang scheduling baseline (related work, paper §VI).

Gang scheduling time-shares the cluster in synchronized slices: all tasks of
a job execute in the same slice across nodes (the Ousterhout matrix).  The
paper dismisses it because of the synchronisation overhead and the memory
pressure of co-resident jobs, but it is the classical alternative to batch
scheduling and a useful extra comparator, so an *idealised* version is
provided here:

* each task gets a dedicated node within its row of the matrix (one task per
  node per row, like batch scheduling);
* at most ``max_rows`` jobs may share a node (the multiprogramming level);
* co-resident jobs must fit in node memory together — the no-swapping rule of
  the DFRS model is kept, which is charitable to gang scheduling since real
  deployments swap;
* context-switching overhead is ignored (again charitable), so a node shared
  by *k* rows gives each of them a 1/k CPU share; in the fluid-CPU model this
  is a yield of ``min(1, 1/(k * cpu_need))`` … capped at 1, i.e. the job
  progresses at the rate the round-robin slice affords it.

Jobs that cannot be admitted (no row with enough free memory/width) wait in
FCFS order.  The scheduler is non-clairvoyant, like the DFRS algorithms.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ...core.allocation import AllocationDecision
from ...core.cluster import Cluster
from ...core.context import JobView, SchedulingContext
from ...exceptions import ConfigurationError
from ..base import Scheduler

__all__ = ["GangScheduler"]


class GangScheduler(Scheduler):
    """Idealised gang scheduling with a bounded multiprogramming level."""

    name = "gang"
    #: Gang scheduling gives every task its own node within a row, so a job
    #: wider than the cluster can never start; let the engine reject it.
    exclusive_node_allocation = True
    #: Gang admission only considers pending jobs, never paused ones.
    resumes_paused_jobs = False

    def __init__(self, max_rows: int = 5) -> None:
        if max_rows < 1:
            raise ConfigurationError(f"max_rows must be >= 1, got {max_rows}")
        self.max_rows = max_rows

    def schedule(self, context: SchedulingContext) -> AllocationDecision:
        decision = AllocationDecision()
        cluster = context.cluster

        # Per-node tallies of the currently running (already admitted) jobs.
        rows_per_node = [0] * cluster.num_nodes
        memory_per_node = [0.0] * cluster.num_nodes
        placements: Dict[int, Tuple[int, ...]] = {}
        for view in context.running_jobs():
            assert view.assignment is not None
            placements[view.job_id] = view.assignment
            for node in view.assignment:
                rows_per_node[node] += 1
                memory_per_node[node] += view.mem_requirement

        # Admit waiting jobs in FCFS order when a row can host them.  Down
        # nodes are modelled as hosting a full complement of rows and memory,
        # so no admission ever lands on them.
        for node in sorted(context.down_nodes):
            rows_per_node[node] = self.max_rows
            memory_per_node[node] = cluster.mem_capacity(node)
        pending = sorted(context.pending_jobs(), key=lambda v: (v.submit_time, v.job_id))
        for view in pending:
            nodes = self._admit(view, cluster, rows_per_node, memory_per_node)
            if nodes is None:
                continue
            placements[view.job_id] = tuple(nodes)
            for node in nodes:
                rows_per_node[node] += 1
                memory_per_node[node] += view.mem_requirement

        # Round-robin slices: a node shared by k rows gives each row 1/k of
        # its CPU capacity; a job's yield is its worst per-node share divided
        # by its CPU need (it cannot use more than its need, hence the cap at
        # 1).  On homogeneous clusters every capacity is the literal 1.0, so
        # this is exactly the original 1/max(rows) arithmetic.
        for job_id, nodes in placements.items():
            view = context.jobs[job_id]
            share = min(
                cluster.cpu_capacity(node) / rows_per_node[node]
                for node in nodes
            )
            yield_value = min(1.0, share / view.cpu_need)
            decision.set(job_id, nodes, yield_value)
        return decision

    def _admit(
        self,
        view: JobView,
        cluster: Cluster,
        rows_per_node: List[int],
        memory_per_node: List[float],
    ) -> Optional[List[int]]:
        """Pick one distinct node per task, least-shared nodes first."""
        candidates = [
            node
            for node in range(len(rows_per_node))
            if rows_per_node[node] < self.max_rows
            and memory_per_node[node] + view.mem_requirement
            <= cluster.mem_capacity(node) + 1e-9
        ]
        if len(candidates) < view.num_tasks:
            return None
        candidates.sort(key=lambda node: (rows_per_node[node], node))
        return candidates[: view.num_tasks]
