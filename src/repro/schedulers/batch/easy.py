"""EASY backfilling batch scheduler (Lifka 1995; paper §IV-B).

EASY extends FCFS with aggressive backfilling: the first job of the queue
receives a *reservation* for the earliest time at which enough nodes will be
free (computed from the running jobs' completion times), and any other queued
job may start immediately as long as doing so does not delay that
reservation.  A backfilled job is harmless when either

* it will finish before the reservation time (its runtime fits in the gap), or
* it only uses nodes that the reservation does not need (the "extra" nodes).

Following the paper, EASY is given **perfect runtime estimates** — the
simulation engine populates ``runtime_estimate``/``remaining_runtime_estimate``
in the job views because ``requires_runtime_estimates`` is True.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ...core.allocation import AllocationDecision
from ...core.context import JobView, SchedulingContext
from ...exceptions import SchedulingError
from .fcfs import FcfsScheduler

__all__ = ["EasyBackfillingScheduler"]


class EasyBackfillingScheduler(FcfsScheduler):
    """EASY backfilling with perfect runtime estimates."""

    name = "easy"
    requires_runtime_estimates = True
    exclusive_node_allocation = True

    def schedule(self, context: SchedulingContext) -> AllocationDecision:
        decision = AllocationDecision()
        decision.running = self.keep_running(context)
        free = self.free_nodes(context)
        queue = self.waiting_queue(context)

        # Plain FCFS start while the head of the queue fits.  Jobs started at
        # this very event also occupy nodes and release them later, so they
        # must be part of the reservation computation below.
        started_now: List[Tuple[float, Tuple[int, ...]]] = []
        index = 0
        while index < len(queue):
            view = queue[index]
            eligible = self.eligible_nodes(context, view, free)
            if view.num_tasks > len(eligible):
                break
            nodes = eligible[: view.num_tasks]
            free = self._take(free, nodes)
            decision.set(view.job_id, nodes, 1.0)
            runtime = view.runtime_estimate
            if runtime is None:
                raise SchedulingError(
                    "EASY requires runtime estimates but none were provided"
                )
            started_now.append((context.time + runtime, tuple(nodes)))
            index += 1
        queue = queue[index:]
        if not queue:
            return decision

        # Reservation for the (blocked) head of the queue.  On heterogeneous
        # platforms only nodes able to host a head task count towards its
        # shadow time and extra-node budget.
        head = queue[0]
        head_eligible = set(
            self.eligible_nodes(context, head, list(context.cluster.node_ids))
        )
        free_for_head = len([node for node in free if node in head_eligible])
        shadow_time, extra_nodes = self._reservation(
            context, head, free_for_head, head_eligible, started_now
        )

        # Backfill the remaining jobs in submission order.
        for view in queue[1:]:
            eligible = self.eligible_nodes(context, view, free)
            if view.num_tasks > len(eligible):
                continue
            runtime = view.runtime_estimate
            if runtime is None:
                raise SchedulingError(
                    "EASY requires runtime estimates but none were provided"
                )
            nodes = eligible[: view.num_tasks]
            # Only nodes the head could use eat into the extra-node budget;
            # on homogeneous clusters this is every node (the original
            # count arithmetic, unchanged).
            head_taken = len([node for node in nodes if node in head_eligible])
            finishes_in_time = context.time + runtime <= shadow_time + 1e-9
            uses_only_extra = head_taken <= extra_nodes
            if finishes_in_time or uses_only_extra:
                free = self._take(free, nodes)
                decision.set(view.job_id, nodes, 1.0)
                if not finishes_in_time:
                    extra_nodes -= head_taken
        return decision

    def _reservation(
        self,
        context: SchedulingContext,
        head: JobView,
        free_now: int,
        head_eligible: "set[int]",
        started_now: List[Tuple[float, Tuple[int, ...]]],
    ) -> Tuple[float, int]:
        """Shadow time and extra-node count for the blocked queue head.

        The *shadow time* is the earliest instant at which the head job could
        start if nothing is backfilled; the *extra nodes* are the nodes that
        will be free at the shadow time beyond what the head needs — jobs
        small enough to run on the extra nodes may run past the shadow time.
        ``free_now`` and every release count only nodes in ``head_eligible``
        (all of them on a homogeneous cluster).
        """
        releases: List[Tuple[float, int]] = [
            (end_time, len([node for node in nodes if node in head_eligible]))
            for end_time, nodes in started_now
        ]
        for view in context.running_jobs():
            assert view.assignment is not None
            remaining = view.remaining_runtime_estimate
            if remaining is None:
                raise SchedulingError(
                    "EASY requires runtime estimates but none were provided"
                )
            releases.append((
                context.time + remaining,
                len([
                    node for node in view.assignment if node in head_eligible
                ]),
            ))
        releases.sort()

        available = free_now
        shadow_time = context.time
        for end_time, released in releases:
            if available >= head.num_tasks:
                break
            available += released
            shadow_time = end_time
        if available < head.num_tasks:
            # Not even draining every running job frees enough nodes; the
            # engine guards against jobs wider than the cluster, so this
            # indicates an internal inconsistency.
            raise SchedulingError(
                f"job {head.job_id} needs {head.num_tasks} nodes but only "
                f"{available} can ever be free"
            )
        extra_nodes = available - head.num_tasks
        return shadow_time, extra_nodes
