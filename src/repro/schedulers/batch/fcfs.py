"""FCFS batch scheduling baseline (paper §IV-B).

First-Come-First-Serve with strict queue order: jobs wait in submission order
and the head of the queue starts as soon as enough whole nodes are free (one
node per task, exclusive access, yield 1.0).  No job may overtake the head of
the queue, which is what EASY backfilling later relaxes.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ...core.allocation import AllocationDecision
from ...core.context import JobView, SchedulingContext
from ..base import Scheduler

__all__ = ["FcfsScheduler"]


class FcfsScheduler(Scheduler):
    """First-Come-First-Serve with exclusive whole-node allocations."""

    name = "fcfs"
    exclusive_node_allocation = True
    #: Batch queues only ever start PENDING jobs; checkpointed ("migrate")
    #: failure victims would never be resumed.  EASY and conservative
    #: inherit this.
    resumes_paused_jobs = False

    def free_nodes(self, context: SchedulingContext) -> List[int]:
        """Node indices not used by any running job, in increasing order.

        Nodes currently down under a platform failure trace leave the free
        pool entirely: they can neither be allocated nor counted in the
        backfilling headroom of the EASY/conservative subclasses.
        """
        busy: Set[int] = set()
        for view in context.running_jobs():
            assert view.assignment is not None
            busy.update(view.assignment)
        if context.down_nodes:
            busy.update(context.down_nodes)
        return [node for node in context.cluster.node_ids if node not in busy]

    def waiting_queue(self, context: SchedulingContext) -> List[JobView]:
        """Pending jobs in submission order (batch jobs are never paused)."""
        return sorted(
            context.pending_jobs(), key=lambda v: (v.submit_time, v.job_id)
        )

    def keep_running(self, context: SchedulingContext) -> Dict[int, "JobAllocation"]:
        """Running jobs keep their nodes untouched."""
        return context.current_allocations()

    def schedule(self, context: SchedulingContext) -> AllocationDecision:
        decision = AllocationDecision()
        decision.running = self.keep_running(context)
        free = self.free_nodes(context)
        for view in self.waiting_queue(context):
            if view.num_tasks > len(free):
                break  # strict FCFS: nobody overtakes the queue head
            nodes, free = free[: view.num_tasks], free[view.num_tasks:]
            decision.set(view.job_id, nodes, 1.0)
        return decision
