"""FCFS batch scheduling baseline (paper §IV-B).

First-Come-First-Serve with strict queue order: jobs wait in submission order
and the head of the queue starts as soon as enough whole nodes are free (one
node per task, exclusive access, yield 1.0).  No job may overtake the head of
the queue, which is what EASY backfilling later relaxes.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ...core.allocation import AllocationDecision
from ...core.cluster import CAPACITY_EPSILON
from ...core.context import JobView, SchedulingContext
from ..base import Scheduler

__all__ = ["FcfsScheduler"]


class FcfsScheduler(Scheduler):
    """First-Come-First-Serve with exclusive whole-node allocations."""

    name = "fcfs"
    exclusive_node_allocation = True
    #: Batch queues only ever start PENDING jobs; checkpointed ("migrate")
    #: failure victims would never be resumed.  EASY and conservative
    #: inherit this.
    resumes_paused_jobs = False
    #: This family runs every task at yield 1.0 on its node, so on a
    #: heterogeneous platform a task can only go to a node with CPU capacity
    #: covering its full need (the engine's admission guard consults this
    #: flag through ``_eligible_batch_nodes``).
    allocates_full_cpu = True

    def free_nodes(self, context: SchedulingContext) -> List[int]:
        """Node indices not used by any running job, in increasing order.

        Nodes currently down under a platform failure trace leave the free
        pool entirely: they can neither be allocated nor counted in the
        backfilling headroom of the EASY/conservative subclasses.
        """
        busy: Set[int] = set()
        for view in context.running_jobs():
            assert view.assignment is not None
            busy.update(view.assignment)
        if context.down_nodes:
            busy.update(context.down_nodes)
        return [node for node in context.cluster.node_ids if node not in busy]

    def waiting_queue(self, context: SchedulingContext) -> List[JobView]:
        """Pending jobs in submission order (batch jobs are never paused)."""
        return sorted(
            context.pending_jobs(), key=lambda v: (v.submit_time, v.job_id)
        )

    def keep_running(self, context: SchedulingContext) -> Dict[int, "JobAllocation"]:
        """Running jobs keep their nodes untouched."""
        return context.current_allocations()

    def eligible_nodes(
        self, context: SchedulingContext, view: JobView, nodes: List[int]
    ) -> List[int]:
        """Subset of ``nodes`` that can host one task of ``view``.

        The identity on homogeneous clusters (every node is the reference
        node, so the original arithmetic is untouched).  On a heterogeneous
        platform a batch task needs a node with enough memory capacity and —
        because this family allocates the full CPU (yield 1.0) — enough CPU
        capacity for the task's whole need.
        """
        cluster = context.cluster
        if not cluster.is_heterogeneous:
            return nodes
        return [
            node
            for node in nodes
            if cluster.mem_capacity(node) + CAPACITY_EPSILON
            >= view.mem_requirement
            and cluster.cpu_capacity(node) + CAPACITY_EPSILON >= view.cpu_need
        ]

    @staticmethod
    def _take(free: List[int], nodes: List[int]) -> List[int]:
        """Remove ``nodes`` from ``free`` preserving order."""
        taken = set(nodes)
        return [node for node in free if node not in taken]

    def schedule(self, context: SchedulingContext) -> AllocationDecision:
        decision = AllocationDecision()
        decision.running = self.keep_running(context)
        free = self.free_nodes(context)
        for view in self.waiting_queue(context):
            eligible = self.eligible_nodes(context, view, free)
            if view.num_tasks > len(eligible):
                break  # strict FCFS: nobody overtakes the queue head
            nodes = eligible[: view.num_tasks]
            free = self._take(free, nodes)
            decision.set(view.job_id, nodes, 1.0)
        return decision
