"""Classical baselines: FCFS, EASY, conservative backfilling, gang scheduling."""

from .conservative import ConservativeBackfillingScheduler
from .easy import EasyBackfillingScheduler
from .fcfs import FcfsScheduler
from .gang import GangScheduler

__all__ = [
    "ConservativeBackfillingScheduler",
    "EasyBackfillingScheduler",
    "FcfsScheduler",
    "GangScheduler",
]
