"""Conservative backfilling batch scheduler.

EASY (the paper's production-representative baseline) only protects the
*first* queued job with a reservation; all later jobs can be delayed
arbitrarily by backfilled work.  Conservative backfilling — the other
classical variant in the batch-scheduling literature — gives **every** queued
job a reservation and only backfills a job when doing so delays no earlier
reservation.  It is not part of the paper's evaluation; it is provided as an
additional baseline so that the DFRS comparison does not hinge on EASY's
aggressiveness, and it is exercised by the ablation benchmarks.

Like EASY, this scheduler is clairvoyant: it receives perfect runtime
estimates from the simulation engine.

The implementation keeps an aggregate *availability profile* — how many nodes
are free as a function of time, given the running jobs' completion estimates
and the reservations granted so far — and walks the queue in submission
order, granting each job the earliest start time at which enough nodes stay
free for its whole duration.  Jobs whose granted start time is "now" are
started immediately.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ...core.allocation import AllocationDecision
from ...core.context import SchedulingContext
from ...exceptions import SchedulingError
from .fcfs import FcfsScheduler

__all__ = ["ConservativeBackfillingScheduler"]

#: Horizon used to close the availability profile (effectively "forever").
_FAR_FUTURE = 1e15


class _AvailabilityProfile:
    """Piecewise-constant count of free nodes over ``[now, +inf)``.

    The profile is stored as breakpoints ``times[i]`` with free-node counts
    ``counts[i]`` holding on ``[times[i], times[i+1])``; the last count holds
    forever.  Reservations subtract capacity over a finite window.
    """

    def __init__(self, now: float, free_now: int) -> None:
        self.times: List[float] = [now]
        self.counts: List[int] = [free_now]

    def add_release(self, time: float, nodes: int) -> None:
        """Add ``nodes`` freed at ``time`` (a running job completing)."""
        if nodes <= 0:
            return
        index = self._split_at(max(time, self.times[0]))
        for i in range(index, len(self.counts)):
            self.counts[i] += nodes

    def earliest_start(self, num_tasks: int, duration: float) -> float:
        """Earliest breakpoint from which ``num_tasks`` nodes stay free for ``duration``."""
        for index, start in enumerate(self.times):
            if self._fits(index, start, num_tasks, duration):
                return start
        raise SchedulingError(
            f"no start time admits {num_tasks} nodes; the engine guarantees "
            "jobs never exceed the cluster size, so this is an internal error"
        )

    def reserve(self, start: float, num_tasks: int, duration: float) -> None:
        """Subtract ``num_tasks`` nodes over ``[start, start + duration)``."""
        end = start + duration
        first = self._split_at(start)
        last = self._split_at(end)
        for i in range(first, last):
            self.counts[i] -= num_tasks
            if self.counts[i] < 0:
                raise SchedulingError(
                    "conservative backfilling reserved more nodes than available"
                )

    # -- internals --------------------------------------------------------------
    def _fits(self, index: int, start: float, num_tasks: int, duration: float) -> bool:
        end = start + duration
        i = index
        while i < len(self.times) and self.times[i] < end - 1e-9:
            if self.counts[i] < num_tasks:
                return False
            i += 1
        return True

    def _split_at(self, time: float) -> int:
        """Ensure ``time`` is a breakpoint; return its index."""
        if time >= _FAR_FUTURE:
            return len(self.times)
        for index, existing in enumerate(self.times):
            if math.isclose(existing, time, rel_tol=0.0, abs_tol=1e-9):
                return index
            if existing > time:
                self.times.insert(index, time)
                self.counts.insert(index, self.counts[index - 1])
                return index
        self.times.append(time)
        self.counts.append(self.counts[-1])
        return len(self.times) - 1


class ConservativeBackfillingScheduler(FcfsScheduler):
    """Conservative backfilling with perfect runtime estimates."""

    name = "conservative"
    requires_runtime_estimates = True
    exclusive_node_allocation = True

    def schedule(self, context: SchedulingContext) -> AllocationDecision:
        decision = AllocationDecision()
        decision.running = self.keep_running(context)
        free = self.free_nodes(context)
        queue = self.waiting_queue(context)
        if not queue:
            return decision

        profile = _AvailabilityProfile(context.time, len(free))
        for view in context.running_jobs():
            assert view.assignment is not None
            remaining = view.remaining_runtime_estimate
            if remaining is None:
                raise SchedulingError(
                    "conservative backfilling requires runtime estimates"
                )
            profile.add_release(context.time + remaining, len(view.assignment))

        for view in queue:
            runtime = view.runtime_estimate
            if runtime is None:
                raise SchedulingError(
                    "conservative backfilling requires runtime estimates"
                )
            start = profile.earliest_start(view.num_tasks, runtime)
            profile.reserve(start, view.num_tasks, runtime)
            if start <= context.time + 1e-9:
                # The availability profile is count-based (a documented
                # approximation on heterogeneous platforms): a "start now"
                # grant additionally needs enough *eligible* free nodes for
                # this job's memory/CPU class, else the job waits for the
                # next event.  On homogeneous clusters every free node is
                # eligible and the original behaviour is untouched.
                eligible = self.eligible_nodes(context, view, free)
                if view.num_tasks > len(eligible):
                    continue
                nodes = eligible[: view.num_tasks]
                free = self._take(free, nodes)
                decision.set(view.job_id, nodes, 1.0)
        return decision
