"""Scheduler protocol shared by batch and DFRS policies.

A scheduler is a pure policy object: the engine calls :meth:`Scheduler.start`
once before the simulation begins and then :meth:`Scheduler.schedule` at
every event.  The returned :class:`~repro.core.allocation.AllocationDecision`
must list *every* job that should be running after the event — any active job
omitted from the decision is paused (if running) or left waiting.

Class attributes communicate a scheduler's nature to the engine:

* ``requires_runtime_estimates`` — clairvoyant schedulers (the batch
  baselines, §IV-B) receive perfect runtime estimates in their job views;
  DFRS schedulers must leave this False and therefore never see runtimes.
* ``exclusive_node_allocation`` — batch schedulers allocate whole nodes and
  can never start a job wider than the cluster; the engine rejects such
  workloads up front instead of deadlocking.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..core.allocation import AllocationDecision
from ..core.cluster import Cluster
from ..core.context import SchedulingContext

__all__ = ["Scheduler"]


class Scheduler(abc.ABC):
    """Abstract base class for all scheduling policies."""

    #: Human-readable algorithm name used in results and reports.
    name: str = "scheduler"
    #: True for clairvoyant policies (FCFS/EASY); False for all DFRS policies.
    requires_runtime_estimates: bool = False
    #: True for policies that give each task a dedicated node.
    exclusive_node_allocation: bool = False
    #: True for policies that eventually restart PAUSED jobs (the
    #: pmtn/dynmcb8 families).  Policies that never look at paused jobs set
    #: this False so the engine can reject the platform failure policy
    #: ``"migrate"`` up front — checkpointed victims would starve forever.
    resumes_paused_jobs: bool = True

    def start(self, cluster: Cluster, start_time: float) -> None:
        """Reset internal state before a new simulation run.

        Subclasses overriding this method must call ``super().start(...)``.
        """
        self.cluster = cluster
        self.start_time = start_time

    @abc.abstractmethod
    def schedule(self, context: SchedulingContext) -> AllocationDecision:
        """Return the complete allocation decision for the current event."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
