"""GREEDY-PMTN and GREEDY-PMTN-MIGR: greedy DFRS with preemption (§III-A).

Both algorithms force the admission of newly submitted jobs: when a job
cannot be placed because of memory constraints, currently running jobs are
considered for pausing in *increasing* priority order until enough memory
would be freed, then the marked jobs are re-examined in *decreasing* priority
order and any that can be kept running (the incoming job still fits) is
unmarked.  The remaining marked jobs are paused and the new job starts.

Paused jobs are resumed, in decreasing priority order, at any later event
where memory allows.  GREEDY-PMTN-MIGR additionally allows a job paused at
the current event to be restarted *within the same event* on a different set
of nodes, which the engine accounts for as a migration rather than a
preemption/resume cycle.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ...core.allocation import AllocationDecision
from ...core.cluster import ClusterUsage
from ...core.context import JobView, SchedulingContext
from .greedy import GreedyScheduler
from .placement import greedy_place_job
from .priority import sort_by_decreasing_priority, sort_by_increasing_priority

__all__ = ["GreedyPmtnScheduler", "GreedyPmtnMigrScheduler"]


class GreedyPmtnScheduler(GreedyScheduler):
    """GREEDY-PMTN: greedy placement with forced admission via preemption."""

    name = "greedy-pmtn"
    resumes_paused_jobs = True
    #: Whether jobs paused at this event may be restarted within the event
    #: on other nodes (the MIGR variant flips this to True).
    resume_within_event = False

    def schedule(self, context: SchedulingContext) -> AllocationDecision:
        decision = AllocationDecision()
        placements: Dict[int, Tuple[int, ...]] = {
            view.job_id: view.assignment  # type: ignore[misc]
            for view in context.running_jobs()
        }
        usage = self._usage_of(placements, context)
        #: Jobs that were running before this event (eligible for pausing).
        previously_running: Set[int] = set(placements)
        paused_now: List[JobView] = []

        for view in self._eligible_pending(context):
            if self._admit(view, context, placements, usage, previously_running,
                           paused_now):
                self._forget(view.job_id)
            else:
                self._postpone(view, context, decision)

        # Resume jobs paused at earlier events, most deserving first.
        for view in sort_by_decreasing_priority(context.paused_jobs()):
            nodes = greedy_place_job(view, usage)
            if nodes is not None:
                placements[view.job_id] = tuple(nodes)

        if self.resume_within_event:
            # MIGR variant: jobs paused at this very event may move instead.
            for view in sort_by_decreasing_priority(paused_now):
                nodes = greedy_place_job(view, usage)
                if nodes is not None:
                    placements[view.job_id] = tuple(nodes)

        return self._finalize(placements, context, decision)

    # -- internals ---------------------------------------------------------
    def _usage_of(
        self, placements: Dict[int, Tuple[int, ...]], context: SchedulingContext
    ) -> ClusterUsage:
        usage = context.scratch_usage()
        for job_id, nodes in placements.items():
            view = context.jobs[job_id]
            for node in nodes:
                usage.add_task(
                    node, view.cpu_need, view.mem_requirement, 0.0, check=False
                )
        return usage

    def _remove_from_usage(
        self, view: JobView, nodes: Tuple[int, ...], usage: ClusterUsage
    ) -> None:
        for node in nodes:
            usage.remove_task(node, view.cpu_need, view.mem_requirement, 0.0)

    def _add_to_usage(
        self, view: JobView, nodes: Tuple[int, ...], usage: ClusterUsage
    ) -> None:
        for node in nodes:
            usage.add_task(node, view.cpu_need, view.mem_requirement, 0.0, check=False)

    def _admit(
        self,
        view: JobView,
        context: SchedulingContext,
        placements: Dict[int, Tuple[int, ...]],
        usage: ClusterUsage,
        previously_running: Set[int],
        paused_now: List[JobView],
    ) -> bool:
        """Try to start ``view`` now, pausing running jobs if needed.

        Returns True when the job was placed (``placements`` and ``usage`` are
        updated in place), False when it must be postponed.
        """
        nodes = greedy_place_job(view, usage)
        if nodes is not None:
            placements[view.job_id] = tuple(nodes)
            return True

        # Mark running jobs for pausing, least deserving first, until the
        # incoming job would fit.
        pausable = [
            context.jobs[job_id]
            for job_id in placements
            if job_id in previously_running
        ]
        marked: List[JobView] = []
        scratch = usage.snapshot()
        feasible = False
        for candidate in sort_by_increasing_priority(pausable):
            self._remove_from_usage(candidate, placements[candidate.job_id], scratch)
            marked.append(candidate)
            probe = scratch.snapshot()
            if greedy_place_job(view, probe) is not None:
                feasible = True
                break
        if not feasible:
            return False

        # Second pass: keep running any marked job whose presence still lets
        # the incoming job start, most deserving first.
        kept: List[JobView] = []
        for candidate in sort_by_decreasing_priority(marked):
            probe = scratch.snapshot()
            self._add_to_usage(candidate, placements[candidate.job_id], probe)
            if greedy_place_job(view, probe.snapshot()) is not None:
                self._add_to_usage(candidate, placements[candidate.job_id], scratch)
                kept.append(candidate)
        to_pause = [c for c in marked if c not in kept]

        for candidate in to_pause:
            del placements[candidate.job_id]
            paused_now.append(candidate)

        nodes = greedy_place_job(view, scratch)
        if nodes is None:  # pragma: no cover - guarded by the feasibility probe
            return False
        placements[view.job_id] = tuple(nodes)
        # Adopt the scratch tally (it reflects pauses and the new placement).
        self._copy_usage(scratch, usage)
        return True

    @staticmethod
    def _copy_usage(source: ClusterUsage, target: ClusterUsage) -> None:
        target._cpu_alloc[:] = source._cpu_alloc
        target._cpu_load[:] = source._cpu_load
        target._memory[:] = source._memory
        target._tasks[:] = source._tasks
        target._down = source._down


class GreedyPmtnMigrScheduler(GreedyPmtnScheduler):
    """GREEDY-PMTN-MIGR: paused-at-this-event jobs may move immediately."""

    name = "greedy-pmtn-migr"
    resume_within_event = True
