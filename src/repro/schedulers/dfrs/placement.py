"""Greedy memory-constrained task placement (paper §III-A, GREEDY).

For each task of a job, among the nodes that still have enough free memory,
the node with the lowest CPU load (sum of CPU needs of the tasks it hosts) is
chosen.  A node whose remaining memory can no longer host another task drops
out of consideration automatically.  The helper operates on a scratch
:class:`~repro.core.cluster.ClusterUsage` so callers can chain placements of
several jobs and roll back on failure.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ...core.cluster import ClusterUsage
from ...core.context import JobView

__all__ = ["greedy_place_job", "usage_from_placements", "can_place_job"]


def greedy_place_job(view: JobView, usage: ClusterUsage) -> Optional[List[int]]:
    """Place every task of ``view`` on the least loaded memory-feasible node.

    On success the placement is committed to ``usage`` (CPU load and memory
    are updated; no CPU fraction is reserved since yields are decided later)
    and the list of node indices is returned.  On failure ``usage`` is left
    untouched and ``None`` is returned.

    Capacity and availability awareness live entirely in the usage tally:
    ``nodes_by_cpu_load`` orders candidates by speed-normalised load and
    skips down nodes, and ``can_fit_memory`` checks against each node's own
    memory capacity — on a homogeneous, fully-up cluster both reduce to the
    paper's original rule exactly.
    """
    placed: List[int] = []
    for _ in range(view.num_tasks):
        candidates = [
            node
            for node in usage.nodes_by_cpu_load()
            if usage.can_fit_memory(node, view.mem_requirement)
        ]
        if not candidates:
            for node in placed:
                usage.remove_task(node, view.cpu_need, view.mem_requirement, 0.0)
            return None
        node = candidates[0]
        usage.add_task(node, view.cpu_need, view.mem_requirement, 0.0)
        placed.append(node)
    return placed


def can_place_job(view: JobView, usage: ClusterUsage) -> bool:
    """True if :func:`greedy_place_job` would succeed (without committing)."""
    scratch = usage.snapshot()
    return greedy_place_job(view, scratch) is not None


def usage_from_placements(
    placements: Mapping[int, Tuple[int, ...]],
    jobs: Mapping[int, JobView],
    cluster,
    *,
    unavailable: Iterable[int] = (),
) -> ClusterUsage:
    """Usage tally (memory + CPU load) implied by a set of placements.

    ``unavailable`` marks down nodes so subsequent placements skip them.
    """
    usage = cluster.usage(unavailable)
    for job_id, nodes in placements.items():
        view = jobs[job_id]
        for node in nodes:
            usage.add_task(node, view.cpu_need, view.mem_requirement, 0.0, check=False)
    return usage
