"""Long-job throttling: the fairness extension sketched in the paper's conclusion.

The conclusion of the paper proposes, as future work, "a strategy for
reducing the yield of long running jobs as a way to improve fairness and
further decrease maximum stretch", inspired by multi-level feedback queues in
operating-system schedulers.  This module implements that strategy on top of
DYNMCB8-ASAP-PER:

* jobs whose *virtual time* (subjective execution time) exceeds a threshold
  are considered long-running;
* at every periodic repacking, the yield of long-running jobs is capped
  (default: 0.5) — they keep making progress but stop monopolising CPU;
* the CPU freed by the cap is redistributed to the remaining (short) jobs by
  the usual average-yield improvement heuristic.

Because the cap only kicks in above the threshold, short jobs are never
affected, and the cap never violates node capacities (it only lowers
allocations).  The ``ablation`` benchmark group compares this variant against
plain DYNMCB8-ASAP-PER.
"""

from __future__ import annotations

from typing import Dict

from ...core.allocation import AllocationDecision
from ...core.context import SchedulingContext
from ...core.job import MINIMUM_YIELD
from ...exceptions import ConfigurationError
from .periodic import DEFAULT_PERIOD, DynMcb8AsapPeriodicScheduler
from .yield_opt import build_allocations, improve_average_yield

__all__ = ["LongJobThrottlingScheduler"]


class LongJobThrottlingScheduler(DynMcb8AsapPeriodicScheduler):
    """DYNMCB8-ASAP-PER with a yield cap on long-running jobs."""

    def __init__(
        self,
        period: float = DEFAULT_PERIOD,
        *,
        long_job_virtual_time: float = 4 * 3600.0,
        long_job_yield_cap: float = 0.5,
    ) -> None:
        super().__init__(period)
        if long_job_virtual_time <= 0:
            raise ConfigurationError(
                f"long_job_virtual_time must be > 0, got {long_job_virtual_time}"
            )
        if not (MINIMUM_YIELD <= long_job_yield_cap <= 1.0):
            raise ConfigurationError(
                f"long_job_yield_cap must be in [{MINIMUM_YIELD}, 1], "
                f"got {long_job_yield_cap}"
            )
        self.long_job_virtual_time = long_job_virtual_time
        self.long_job_yield_cap = long_job_yield_cap

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"dynmcb8-asap-throttled-per-{int(self.period)}"

    def _repack_all(
        self, context: SchedulingContext, decision: AllocationDecision
    ) -> AllocationDecision:
        placements, yield_value = self.repack(context, list(context.jobs.values()))
        yields: Dict[int, float] = {}
        for job_id in placements:
            view = context.jobs[job_id]
            value = yield_value
            if view.virtual_time >= self.long_job_virtual_time:
                value = min(value, self.long_job_yield_cap)
            yields[job_id] = max(MINIMUM_YIELD, value)
        # Redistribute leftover CPU with the usual heuristic, but only grant
        # the increases to short jobs; long jobs stay frozen at their cap.
        # Keeping the full placement set in the heuristic call accounts for
        # the capped jobs' CPU usage, and granting a subset of the computed
        # increases can only lower per-node allocations, so feasibility holds.
        short_jobs = {
            job_id
            for job_id in placements
            if context.jobs[job_id].virtual_time < self.long_job_virtual_time
        }
        if short_jobs:
            improved = improve_average_yield(
                placements, yields, context.jobs, context.cluster
            )
            for job_id in sorted(short_jobs):
                yields[job_id] = improved[job_id]
        decision.running = build_allocations(placements, yields)
        return decision
