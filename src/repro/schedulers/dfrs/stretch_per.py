"""DYNMCB8-STRETCH-PER: periodic packing driven by estimated stretch (§III-B).

Instead of maximizing the instantaneous minimum yield, this variant minimizes
an *estimate* of the maximum stretch at the next scheduling event.  Since job
execution times are unknown, the estimated stretch of job *j* is its flow
time over its virtual time; assuming the job runs until the next event (one
period ``T`` later) with yield ``y_j`` the estimate becomes
``(flow_j + T) / (vt_j + y_j T)``.  A binary search finds the smallest target
value for which the induced CPU requirements can be packed by MCB8; jobs are
evicted by priority when even the most permissive target is infeasible.

Where the other algorithms finish with the average-*yield* improvement
heuristic, this one improves the average *estimated stretch*: leftover CPU is
repeatedly given to the job whose estimated stretch at the next event is the
worst among those that can still be sped up.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ...core.allocation import AllocationDecision
from ...core.cluster import CAPACITY_EPSILON
from ...core.context import JobView, SchedulingContext
from ...packing.yield_search import PackingJob, minimize_estimated_stretch
from .periodic import DEFAULT_PERIOD, DynMcb8PeriodicScheduler
from .priority import sort_by_increasing_priority
from .yield_opt import build_allocations

__all__ = ["DynMcb8StretchPeriodicScheduler"]


class DynMcb8StretchPeriodicScheduler(DynMcb8PeriodicScheduler):
    """The paper's DYNMCB8-STRETCH-PER algorithm."""

    def __init__(self, period: float = DEFAULT_PERIOD) -> None:
        super().__init__(period)

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"dynmcb8-stretch-per-{int(self.period)}"

    # -- periodic repacking, stretch flavoured ---------------------------------
    def _repack_all(
        self, context: SchedulingContext, decision: AllocationDecision
    ) -> AllocationDecision:
        placements, yields = self._stretch_repack(
            context, list(context.jobs.values())
        )
        yields = self._improve_average_stretch(placements, yields, context)
        decision.running = build_allocations(placements, yields)
        return decision

    def _stretch_repack(
        self, context: SchedulingContext, candidates: List[JobView]
    ) -> Tuple[Dict[int, Tuple[int, ...]], Dict[int, float]]:
        """Pack candidates minimizing the estimated max stretch, evicting by priority."""
        ordered = list(reversed(sort_by_increasing_priority(candidates)))
        while ordered:
            packing_jobs = [
                PackingJob(
                    job_id=view.job_id,
                    num_tasks=view.num_tasks,
                    cpu_need=view.cpu_need,
                    mem_requirement=view.mem_requirement,
                    flow_time=view.flow_time,
                    virtual_time=view.virtual_time,
                )
                for view in ordered
            ]
            result = minimize_estimated_stretch(
                packing_jobs,
                context.cluster.num_nodes,
                self.period,
                capacities=context.packing_capacities(),
            )
            if result.success:
                return dict(result.assignments), dict(result.yields)
            ordered.pop()
        return {}, {}

    def _improve_average_stretch(
        self,
        placements: Dict[int, Tuple[int, ...]],
        yields: Dict[int, float],
        context: SchedulingContext,
    ) -> Dict[int, float]:
        """Give leftover CPU to the jobs with the worst estimated stretch."""
        improved = dict(yields)
        if not placements:
            return improved
        cluster = context.cluster
        allocated = np.zeros(cluster.num_nodes, dtype=float)
        capacity = cluster.cpu_capacity_vector()
        tasks_per_node: Dict[int, Dict[int, int]] = {}
        for job_id, nodes in placements.items():
            need = context.jobs[job_id].cpu_need
            counts: Dict[int, int] = {}
            for node in nodes:
                counts[node] = counts.get(node, 0) + 1
            tasks_per_node[job_id] = counts
            for node, count in counts.items():
                allocated[node] += count * need * improved[job_id]

        def estimated_stretch(job_id: int) -> float:
            view = context.jobs[job_id]
            denominator = view.virtual_time + improved[job_id] * self.period
            return (view.flow_time + self.period) / max(denominator, 1e-9)

        while True:
            best_job = None
            worst_stretch = -1.0
            for job_id in placements:
                if improved[job_id] >= 1.0 - 1e-9:
                    continue
                counts = tasks_per_node[job_id]
                if all(
                    allocated[node] < capacity[node] - CAPACITY_EPSILON
                    for node in counts
                ):
                    stretch = estimated_stretch(job_id)
                    if stretch > worst_stretch:
                        worst_stretch = stretch
                        best_job = job_id
            if best_job is None:
                break
            counts = tasks_per_node[best_job]
            need = context.jobs[best_job].cpu_need
            delta = min(
                (capacity[node] - allocated[node]) / (count * need)
                for node, count in counts.items()
            )
            delta = min(delta, 1.0 - improved[best_job])
            if delta <= 1e-9:
                improved[best_job] = min(1.0, improved[best_job] + 1e-9)
                continue
            improved[best_job] += delta
            for node, count in counts.items():
                allocated[node] += count * need * delta
        return improved
