"""Virtual-time based job priority (paper §III-A).

The priority of a job is::

    priority = max(30, flow_time) / virtual_time ** 2

where the *flow time* is the time since submission and the *virtual time* is
the integral of the job's yield since submission (its "subjective" execution
time so far).  A job that has never received CPU has infinite priority, which
forces its admission; the flow-time numerator guarantees that paused jobs are
eventually resumed (no starvation); the square gives short-running jobs an
edge.  Jobs are considered for pausing in *increasing* priority order and for
resuming in *decreasing* priority order.

The exponent is exposed for the ablation benchmark discussed in DESIGN.md §4
(the paper reports that exponent 1 gives markedly inferior results).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from ...core.context import JobView
from ...core.metrics import STRETCH_BOUND_SECONDS

__all__ = [
    "job_priority",
    "priority_of_view",
    "sort_by_increasing_priority",
    "sort_by_decreasing_priority",
]


def job_priority(
    flow_time: float,
    virtual_time: float,
    *,
    bound: float = STRETCH_BOUND_SECONDS,
    exponent: float = 2.0,
) -> float:
    """Priority value of a job; ``inf`` for jobs with zero virtual time."""
    if flow_time < 0:
        raise ValueError(f"flow_time must be >= 0, got {flow_time}")
    if virtual_time < 0:
        raise ValueError(f"virtual_time must be >= 0, got {virtual_time}")
    if virtual_time == 0.0:
        return math.inf
    return max(bound, flow_time) / (virtual_time ** exponent)


def priority_of_view(view: JobView, *, exponent: float = 2.0) -> float:
    """Priority of a job view (see :func:`job_priority`)."""
    return job_priority(view.flow_time, view.virtual_time, exponent=exponent)


def sort_by_increasing_priority(
    views: Iterable[JobView], *, exponent: float = 2.0
) -> List[JobView]:
    """Jobs ordered from first-to-pause to last-to-pause.

    Ties are broken by submission time (earlier submissions are paused later)
    and then by job id, so the ordering is deterministic.
    """
    return sorted(
        views,
        key=lambda v: (
            priority_of_view(v, exponent=exponent),
            -v.submit_time,
            -v.job_id,
        ),
    )


def sort_by_decreasing_priority(
    views: Iterable[JobView], *, exponent: float = 2.0
) -> List[JobView]:
    """Jobs ordered from first-to-resume to last-to-resume."""
    return list(reversed(sort_by_increasing_priority(views, exponent=exponent)))
