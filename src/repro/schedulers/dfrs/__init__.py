"""Dynamic Fractional Resource Scheduling algorithms (paper §III)."""

from .dynmcb8 import DynMcb8Scheduler
from .fairness import LongJobThrottlingScheduler
from .greedy import GreedyScheduler
from .greedy_pmtn import GreedyPmtnMigrScheduler, GreedyPmtnScheduler
from .periodic import (
    DEFAULT_PERIOD,
    DynMcb8AsapPeriodicScheduler,
    DynMcb8PeriodicScheduler,
)
from .priority import job_priority, priority_of_view
from .stretch_per import DynMcb8StretchPeriodicScheduler
from .weighted import (
    WeightedYieldScheduler,
    inverse_size_weight,
    uniform_weight,
    weighted_fair_yields,
    weighted_improve_yield,
)
from .yield_opt import fair_yields, improve_average_yield

__all__ = [
    "DynMcb8Scheduler",
    "LongJobThrottlingScheduler",
    "GreedyScheduler",
    "GreedyPmtnMigrScheduler",
    "GreedyPmtnScheduler",
    "DEFAULT_PERIOD",
    "DynMcb8AsapPeriodicScheduler",
    "DynMcb8PeriodicScheduler",
    "job_priority",
    "priority_of_view",
    "DynMcb8StretchPeriodicScheduler",
    "WeightedYieldScheduler",
    "inverse_size_weight",
    "uniform_weight",
    "weighted_fair_yields",
    "weighted_improve_yield",
    "fair_yields",
    "improve_average_yield",
]
