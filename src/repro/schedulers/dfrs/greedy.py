"""GREEDY: incremental DFRS scheduling without preemption (paper §III-A).

For every job awaiting admission, each task is placed on the memory-feasible
node with the lowest CPU load.  If some task cannot be placed the whole job
is postponed with bounded exponential backoff (``min(2^12, 2^count)``
seconds).  Once placements are fixed, every running job receives the fair
yield ``1 / max(1, Λ)`` and the average-yield improvement heuristic
distributes the remaining CPU capacity.

GREEDY never pauses or migrates jobs, which is exactly why its maximum
stretch can grow without bound: a short job can be postponed arbitrarily long
behind memory-hungry jobs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...core.allocation import AllocationDecision
from ...core.context import JobView, SchedulingContext
from ..base import Scheduler
from .placement import greedy_place_job, usage_from_placements
from .yield_opt import build_allocations, fair_yields, improve_average_yield

__all__ = ["GreedyScheduler", "MAX_BACKOFF_SECONDS"]

#: Upper bound of the exponential backoff (2^12 seconds, paper §III-A).
MAX_BACKOFF_SECONDS = 2 ** 12


class GreedyScheduler(Scheduler):
    """The paper's GREEDY algorithm."""

    name = "greedy"
    #: Plain GREEDY never pauses and never resumes; the PMTN subclasses
    #: flip this back on.
    resumes_paused_jobs = False

    def __init__(self) -> None:
        self._retry_counts: Dict[int, int] = {}
        self._retry_times: Dict[int, float] = {}

    def start(self, cluster, start_time: float) -> None:
        super().start(cluster, start_time)
        self._retry_counts.clear()
        self._retry_times.clear()

    # -- helpers ---------------------------------------------------------------
    def _eligible_pending(self, context: SchedulingContext) -> List[JobView]:
        """Pending jobs whose backoff timer (if any) has expired."""
        views = []
        for view in context.pending_jobs():
            retry_at = self._retry_times.get(view.job_id, view.submit_time)
            if retry_at <= context.time + 1e-9:
                views.append(view)
        views.sort(key=lambda v: (v.submit_time, v.job_id))
        return views

    def _postpone(
        self, view: JobView, context: SchedulingContext, decision: AllocationDecision
    ) -> None:
        count = self._retry_counts.get(view.job_id, 0) + 1
        self._retry_counts[view.job_id] = count
        delay = min(MAX_BACKOFF_SECONDS, 2 ** count)
        self._retry_times[view.job_id] = context.time + delay
        decision.request_wakeup(context.time + delay)

    def _forget(self, job_id: int) -> None:
        self._retry_counts.pop(job_id, None)
        self._retry_times.pop(job_id, None)

    def _finalize(
        self,
        placements: Dict[int, Tuple[int, ...]],
        context: SchedulingContext,
        decision: AllocationDecision,
    ) -> AllocationDecision:
        """Assign fair yields, improve the average yield, emit the decision."""
        yields = fair_yields(placements, context.jobs, context.cluster)
        yields = improve_average_yield(
            placements, yields, context.jobs, context.cluster
        )
        decision.running = build_allocations(placements, yields)
        return decision

    # -- policy ----------------------------------------------------------------
    def schedule(self, context: SchedulingContext) -> AllocationDecision:
        decision = AllocationDecision()
        placements: Dict[int, Tuple[int, ...]] = {
            view.job_id: view.assignment  # type: ignore[misc]
            for view in context.running_jobs()
        }
        usage = usage_from_placements(
            placements, context.jobs, context.cluster,
            unavailable=context.down_nodes,
        )

        for view in self._eligible_pending(context):
            nodes = greedy_place_job(view, usage)
            if nodes is None:
                self._postpone(view, context, decision)
            else:
                placements[view.job_id] = tuple(nodes)
                self._forget(view.job_id)

        return self._finalize(placements, context, decision)
