"""DYNMCB8: global reallocation via vector packing at every event (§III-B).

At every job submission or completion the whole set of active jobs (running,
paused, and pending) is repacked from scratch: a binary search on the yield
finds the largest value for which the MCB8 vector-packing heuristic can place
every task, all placed jobs receive that yield, and the average-yield
heuristic then distributes leftover CPU.  If no yield admits a packing (the
memory requirements alone do not fit), the job with the smallest priority is
evicted from consideration and the search is retried.

This is the most aggressive DFRS algorithm: with no rescheduling penalty it
is nearly optimal, but its heavy use of preemption and migration makes it
lose to the periodic variants once a realistic penalty is charged.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...core.allocation import AllocationDecision
from ...core.context import JobView, SchedulingContext
from ...packing.yield_search import PackingJob, maximize_min_yield
from ..base import Scheduler
from .priority import sort_by_increasing_priority
from .yield_opt import build_allocations, improve_average_yield

__all__ = ["DynMcb8Scheduler"]


class DynMcb8Scheduler(Scheduler):
    """The paper's DYNMCB8 algorithm."""

    name = "dynmcb8"

    def schedule(self, context: SchedulingContext) -> AllocationDecision:
        decision = AllocationDecision()
        placements, yield_value = self.repack(context, list(context.jobs.values()))
        yields = {job_id: yield_value for job_id in placements}
        yields = improve_average_yield(
            placements, yields, context.jobs, context.cluster
        )
        decision.running = build_allocations(placements, yields)
        return decision

    def repack(
        self, context: SchedulingContext, candidates: List[JobView]
    ) -> Tuple[Dict[int, Tuple[int, ...]], float]:
        """Pack as many candidate jobs as possible at the best common yield.

        Jobs are evicted in increasing priority order until the packing
        becomes feasible.  Returns the per-job placements and the achieved
        minimum yield.
        """
        # Evict lowest-priority jobs first, so process a mutable list sorted
        # from most to least deserving (we pop from the end).
        ordered = list(reversed(sort_by_increasing_priority(candidates)))
        while ordered:
            packing_jobs = [
                PackingJob(
                    job_id=view.job_id,
                    num_tasks=view.num_tasks,
                    cpu_need=view.cpu_need,
                    mem_requirement=view.mem_requirement,
                    flow_time=view.flow_time,
                    virtual_time=view.virtual_time,
                )
                for view in ordered
            ]
            result = maximize_min_yield(
                packing_jobs,
                context.cluster.num_nodes,
                # None on homogeneous, fully-up clusters (the unit-bin fast
                # path); per-node (cpu, mem) capacities otherwise, with down
                # nodes as zero-capacity bins no packing can land on.
                capacities=context.packing_capacities(),
            )
            if result.success:
                return dict(result.assignments), result.yield_value
            ordered.pop()
        return {}, 1.0
