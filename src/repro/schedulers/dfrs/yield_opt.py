"""Yield assignment helpers shared by the DFRS schedulers.

Two steps are composed by every DFRS algorithm except DYNMCB8-STRETCH-PER
(paper §III-A):

1. :func:`fair_yields` — given fixed placements, give every job the same
   yield ``1 / max(1, Λ)`` where Λ is the maximum CPU load (sum of CPU
   *needs*) over all nodes.  This maximizes the minimum yield for the given
   placement.
2. :func:`improve_average_yield` — repeatedly pick, among the jobs whose
   nodes all have spare CPU capacity, the one with the smallest total CPU
   need (best improvement of the average yield per unit of CPU consumed) and
   raise its yield as much as possible.  This never decreases any yield.

Placements are expressed as a mapping ``job_id -> tuple of node indices`` and
job characteristics are read from :class:`~repro.core.context.JobView`
objects, so these helpers are usable both on current allocations and on
hypothetical packings.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from ...core.allocation import JobAllocation
from ...core.cluster import CAPACITY_EPSILON, Cluster
from ...core.context import JobView
from ...core.job import MINIMUM_YIELD

__all__ = ["fair_yields", "improve_average_yield", "build_allocations"]


def _node_loads(
    placements: Mapping[int, Tuple[int, ...]],
    jobs: Mapping[int, JobView],
    num_nodes: int,
) -> np.ndarray:
    """Per-node sum of CPU needs implied by ``placements``."""
    loads = np.zeros(num_nodes, dtype=float)
    for job_id, nodes in placements.items():
        need = jobs[job_id].cpu_need
        for node in nodes:
            loads[node] += need
    return loads


def fair_yields(
    placements: Mapping[int, Tuple[int, ...]],
    jobs: Mapping[int, JobView],
    cluster: Cluster,
) -> Dict[int, float]:
    """Identical yield ``1 / max(1, Λ)`` for every placed job.

    On heterogeneous clusters Λ is the maximum *speed-normalised* load
    (``load / cpu_capacity``), so the common yield keeps every node —
    fast or slow — within its own CPU capacity.
    """
    if not placements:
        return {}
    loads = _node_loads(placements, jobs, cluster.num_nodes)
    if cluster.cpu_capacities is not None:
        loads = loads / cluster.cpu_capacity_vector()
    max_load = float(loads.max()) if loads.size else 0.0
    value = 1.0 / max(1.0, max_load)
    value = min(1.0, max(MINIMUM_YIELD, value))
    return {job_id: value for job_id in placements}


def improve_average_yield(
    placements: Mapping[int, Tuple[int, ...]],
    yields: Mapping[int, float],
    jobs: Mapping[int, JobView],
    cluster: Cluster,
) -> Dict[int, float]:
    """Greedy average-yield improvement (paper §III-A).

    Returns a new yield mapping that is point-wise ``>=`` the input and keeps
    every node's allocated CPU fraction within capacity.
    """
    improved: Dict[int, float] = dict(yields)
    if not placements:
        return improved

    # Allocated CPU fraction per node under the current yields, and each
    # node's CPU capacity (the literal 1.0 of the paper's model on
    # homogeneous clusters; the per-node vector otherwise).
    allocated = np.zeros(cluster.num_nodes, dtype=float)
    capacity = cluster.cpu_capacity_vector()
    tasks_per_node: Dict[int, Dict[int, int]] = {}
    for job_id, nodes in placements.items():
        need = jobs[job_id].cpu_need
        counts: Dict[int, int] = {}
        for node in nodes:
            counts[node] = counts.get(node, 0) + 1
        tasks_per_node[job_id] = counts
        for node, count in counts.items():
            allocated[node] += count * need * improved[job_id]

    while True:
        best_job = None
        best_need = float("inf")
        for job_id, nodes in placements.items():
            if improved[job_id] >= 1.0 - 1e-9:
                continue
            counts = tasks_per_node[job_id]
            # Every node hosting this job must have spare CPU capacity.
            if all(
                allocated[node] < capacity[node] - CAPACITY_EPSILON
                for node in counts
            ):
                total_need = jobs[job_id].total_cpu_need
                if total_need < best_need:
                    best_need = total_need
                    best_job = job_id
        if best_job is None:
            break
        counts = tasks_per_node[best_job]
        need = jobs[best_job].cpu_need
        # Largest yield increase that keeps every hosting node within capacity.
        delta = min(
            (capacity[node] - allocated[node]) / (count * need)
            for node, count in counts.items()
        )
        delta = min(delta, 1.0 - improved[best_job])
        if delta <= 1e-9:
            # Numerical corner: mark the job as saturated and continue.
            improved[best_job] = min(1.0, improved[best_job] + 1e-9)
            continue
        improved[best_job] += delta
        for node, count in counts.items():
            allocated[node] += count * need * delta
    return improved


def build_allocations(
    placements: Mapping[int, Tuple[int, ...]],
    yields: Mapping[int, float],
) -> Dict[int, JobAllocation]:
    """Combine placements and yields into :class:`JobAllocation` objects."""
    return {
        job_id: JobAllocation.create(nodes, yields[job_id])
        for job_id, nodes in placements.items()
    }
