"""Periodic DYNMCB8 variants: DYNMCB8-PER and DYNMCB8-ASAP-PER (§III-B).

DYNMCB8-PER invokes the full MCB8 repacking only every ``period`` seconds
(T = 600 s in the paper); between two scheduling events incoming jobs wait in
a queue and running jobs keep their placements and yields.  This retains most
of the benefit of DYNMCB8 while bounding the preemption/migration churn.

DYNMCB8-ASAP-PER additionally tries to start newly submitted jobs
immediately using the greedy memory-constrained placement; when that
succeeds, the yields of all running jobs are recomputed with the fair-share
rule (placements are untouched, so this costs nothing) — this lets short jobs
run to completion between two scheduling events.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...core.allocation import AllocationDecision
from ...core.context import SchedulingContext
from ...exceptions import ConfigurationError
from .dynmcb8 import DynMcb8Scheduler
from .placement import greedy_place_job, usage_from_placements
from .yield_opt import build_allocations, fair_yields, improve_average_yield

__all__ = ["DynMcb8PeriodicScheduler", "DynMcb8AsapPeriodicScheduler", "DEFAULT_PERIOD"]

#: Scheduling period used throughout the paper's experiments (10 minutes).
DEFAULT_PERIOD = 600.0


class DynMcb8PeriodicScheduler(DynMcb8Scheduler):
    """DYNMCB8-PER: full repacking every ``period`` seconds."""

    def __init__(self, period: float = DEFAULT_PERIOD) -> None:
        if period <= 0:
            raise ConfigurationError(f"period must be > 0, got {period}")
        self.period = period
        self._next_tick: Optional[float] = None

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"dynmcb8-per-{int(self.period)}"

    def start(self, cluster, start_time: float) -> None:
        super().start(cluster, start_time)
        self._next_tick = None

    # -- periodic machinery -----------------------------------------------
    def _is_tick(self, context: SchedulingContext) -> bool:
        """True when a full repacking must happen at this event."""
        if self._next_tick is None:
            # First event of the run: schedule immediately and start the cycle.
            return True
        if context.repack_requested:
            # Engine-requested immediate repack (``repack_on_failure``): a
            # node just failed, so recover now instead of at the next tick.
            # The periodic cycle restarts from this event (``_arm_next_tick``
            # re-arms at ``time + period``).
            return True
        return context.time + 1e-9 >= self._next_tick

    def _arm_next_tick(self, context: SchedulingContext, decision: AllocationDecision) -> None:
        self._next_tick = context.time + self.period
        decision.request_wakeup(self._next_tick)

    def _repack_all(
        self, context: SchedulingContext, decision: AllocationDecision
    ) -> AllocationDecision:
        placements, yield_value = self.repack(context, list(context.jobs.values()))
        yields = {job_id: yield_value for job_id in placements}
        yields = improve_average_yield(
            placements, yields, context.jobs, context.cluster
        )
        decision.running = build_allocations(placements, yields)
        return decision

    def _between_ticks(
        self, context: SchedulingContext, decision: AllocationDecision
    ) -> AllocationDecision:
        """Decision taken at a non-tick event (keep everything as it is)."""
        decision.running = context.current_allocations()
        return decision

    # -- policy --------------------------------------------------------------
    def schedule(self, context: SchedulingContext) -> AllocationDecision:
        decision = AllocationDecision()
        if self._is_tick(context):
            if not context.jobs:
                # Nothing to schedule: let the periodic cycle go dormant; the
                # next event (necessarily a submission) restarts it.
                self._next_tick = None
                return decision
            self._arm_next_tick(context, decision)
            return self._repack_all(context, decision)
        return self._between_ticks(context, decision)


class DynMcb8AsapPeriodicScheduler(DynMcb8PeriodicScheduler):
    """DYNMCB8-ASAP-PER: periodic repacking plus eager greedy admission."""

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"dynmcb8-asap-per-{int(self.period)}"

    def _between_ticks(
        self, context: SchedulingContext, decision: AllocationDecision
    ) -> AllocationDecision:
        placements: Dict[int, Tuple[int, ...]] = {
            view.job_id: view.assignment  # type: ignore[misc]
            for view in context.running_jobs()
        }
        pending = sorted(
            context.pending_jobs(), key=lambda v: (v.submit_time, v.job_id)
        )
        if not pending:
            decision.running = context.current_allocations()
            return decision

        usage = usage_from_placements(
            placements, context.jobs, context.cluster,
            unavailable=context.down_nodes,
        )
        admitted_any = False
        for view in pending:
            nodes = greedy_place_job(view, usage)
            if nodes is not None:
                placements[view.job_id] = tuple(nodes)
                admitted_any = True
        if not admitted_any:
            decision.running = context.current_allocations()
            return decision

        # Recompute CPU shares for everyone (placements unchanged, so this is
        # free); leftover capacity is redistributed as usual.
        yields = fair_yields(placements, context.jobs, context.cluster)
        yields = improve_average_yield(
            placements, yields, context.jobs, context.cluster
        )
        decision.running = build_allocations(placements, yields)
        return decision
