"""User-priority (weighted-yield) DFRS scheduling.

The paper's conclusion lists "mechanisms for implementing user priorities,
such as those supported in batch scheduling systems" as needed future work.
This module provides that mechanism on top of DYNMCB8-ASAP-PER:

* every job receives a **weight** from a user-supplied weight function (a
  plain callable on the job view, so weights can encode users, queues, job
  size, or anything else visible to a non-clairvoyant scheduler);
* at every repacking, instead of giving all placed jobs the same yield, the
  scheduler performs **weighted max–min sharing**: it finds the largest
  ``z`` such that giving every job the yield ``min(1, weight × z)`` keeps
  every node's allocated CPU within capacity, for the placements chosen by
  the MCB8 packing;
* leftover CPU is then handed out in decreasing weight order (ties broken by
  the usual smallest-total-need rule).

With all weights equal to 1 the behaviour reduces exactly to
DYNMCB8-ASAP-PER.  Weighted sharing only changes CPU shares, never
placements, so the preemption/migration profile is unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Tuple

import numpy as np

from ...core.allocation import AllocationDecision
from ...core.cluster import CAPACITY_EPSILON, Cluster
from ...core.context import JobView, SchedulingContext
from ...core.job import MINIMUM_YIELD
from ...exceptions import ConfigurationError
from .periodic import DEFAULT_PERIOD, DynMcb8AsapPeriodicScheduler
from .yield_opt import build_allocations

__all__ = [
    "WeightFunction",
    "uniform_weight",
    "inverse_size_weight",
    "weighted_fair_yields",
    "weighted_improve_yield",
    "WeightedYieldScheduler",
]

#: A weight function maps a job view to a strictly positive weight.
WeightFunction = Callable[[JobView], float]


def uniform_weight(view: JobView) -> float:
    """Every job weighs the same (reduces to plain max–min sharing)."""
    return 1.0


def inverse_size_weight(view: JobView) -> float:
    """Favour narrow jobs: weight ``1 / num_tasks``.

    This encodes the common administrative policy of protecting small
    (interactive, debugging) jobs from wide production runs.
    """
    return 1.0 / view.num_tasks


def _check_weights(weights: Mapping[int, float]) -> None:
    for job_id, weight in weights.items():
        if weight <= 0 or not np.isfinite(weight):
            raise ConfigurationError(
                f"job {job_id}: weight must be finite and > 0, got {weight}"
            )


def weighted_fair_yields(
    placements: Mapping[int, Tuple[int, ...]],
    jobs: Mapping[int, JobView],
    cluster: Cluster,
    weights: Mapping[int, float],
    *,
    iterations: int = 40,
) -> Dict[int, float]:
    """Weighted max–min yields for fixed placements.

    Finds (by bisection) the largest ``z`` such that yields
    ``min(1, weight_j × z)`` keep the allocated CPU of every node within
    capacity, then returns those yields clamped to ``[MINIMUM_YIELD, 1]``.
    """
    if not placements:
        return {}
    _check_weights({job_id: weights[job_id] for job_id in placements})

    # Per-node task counts per job, reused by every feasibility probe.
    counts: Dict[int, Dict[int, int]] = {}
    for job_id, nodes in placements.items():
        per_node: Dict[int, int] = {}
        for node in nodes:
            per_node[node] = per_node.get(node, 0) + 1
        counts[job_id] = per_node

    capacity = cluster.cpu_capacity_vector()

    def feasible(z: float) -> bool:
        allocated = np.zeros(cluster.num_nodes, dtype=float)
        for job_id, per_node in counts.items():
            view = jobs[job_id]
            value = min(1.0, weights[job_id] * z)
            for node, count in per_node.items():
                allocated[node] += count * view.cpu_need * value
        return bool(np.all(allocated <= capacity + CAPACITY_EPSILON))

    max_weight = max(weights[job_id] for job_id in placements)
    low, high = 0.0, 1.0 / max_weight  # z beyond this point changes nothing...
    # ...unless smaller weights still grow; extend until every yield saturates.
    while any(min(1.0, weights[job_id] * high) < 1.0 for job_id in placements) and feasible(high):
        low = high
        high *= 2.0
    if feasible(high):
        low = high
    for _ in range(iterations):
        mid = (low + high) / 2.0
        if feasible(mid):
            low = mid
        else:
            high = mid
    return {
        job_id: min(1.0, max(MINIMUM_YIELD, weights[job_id] * low))
        for job_id in placements
    }


def weighted_improve_yield(
    placements: Mapping[int, Tuple[int, ...]],
    yields: Mapping[int, float],
    jobs: Mapping[int, JobView],
    cluster: Cluster,
    weights: Mapping[int, float],
) -> Dict[int, float]:
    """Hand leftover CPU to jobs in decreasing weight order.

    Like the paper's average-yield heuristic, this never decreases a yield
    and never violates node capacities; the only difference is the order in
    which candidate jobs are considered.
    """
    improved: Dict[int, float] = dict(yields)
    if not placements:
        return improved
    _check_weights({job_id: weights[job_id] for job_id in placements})

    allocated = np.zeros(cluster.num_nodes, dtype=float)
    capacity = cluster.cpu_capacity_vector()
    counts: Dict[int, Dict[int, int]] = {}
    for job_id, nodes in placements.items():
        need = jobs[job_id].cpu_need
        per_node: Dict[int, int] = {}
        for node in nodes:
            per_node[node] = per_node.get(node, 0) + 1
        counts[job_id] = per_node
        for node, count in per_node.items():
            allocated[node] += count * need * improved[job_id]

    while True:
        best_job = None
        best_key: Tuple[float, float] = (0.0, 0.0)
        for job_id, per_node in counts.items():
            if improved[job_id] >= 1.0 - 1e-9:
                continue
            if all(
                allocated[node] < capacity[node] - CAPACITY_EPSILON
                for node in per_node
            ):
                key = (weights[job_id], -jobs[job_id].total_cpu_need)
                if best_job is None or key > best_key:
                    best_key = key
                    best_job = job_id
        if best_job is None:
            break
        per_node = counts[best_job]
        need = jobs[best_job].cpu_need
        delta = min(
            (capacity[node] - allocated[node]) / (count * need)
            for node, count in per_node.items()
        )
        delta = min(delta, 1.0 - improved[best_job])
        if delta <= 1e-9:
            improved[best_job] = min(1.0, improved[best_job] + 1e-9)
            continue
        improved[best_job] += delta
        for node, count in per_node.items():
            allocated[node] += count * need * delta
    return improved


class WeightedYieldScheduler(DynMcb8AsapPeriodicScheduler):
    """DYNMCB8-ASAP-PER with weighted max–min CPU sharing."""

    def __init__(
        self,
        period: float = DEFAULT_PERIOD,
        *,
        weight_function: WeightFunction = inverse_size_weight,
    ) -> None:
        super().__init__(period)
        if not callable(weight_function):
            raise ConfigurationError("weight_function must be callable")
        self.weight_function = weight_function

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"dynmcb8-asap-weighted-per-{int(self.period)}"

    def _weights(self, context: SchedulingContext, placements) -> Dict[int, float]:
        return {
            job_id: float(self.weight_function(context.jobs[job_id]))
            for job_id in placements
        }

    def _repack_all(
        self, context: SchedulingContext, decision: AllocationDecision
    ) -> AllocationDecision:
        placements, _ = self.repack(context, list(context.jobs.values()))
        weights = self._weights(context, placements)
        yields = weighted_fair_yields(placements, context.jobs, context.cluster, weights)
        yields = weighted_improve_yield(
            placements, yields, context.jobs, context.cluster, weights
        )
        decision.running = build_allocations(placements, yields)
        return decision
