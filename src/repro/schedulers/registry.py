"""Name-based scheduler registry.

Every algorithm evaluated in the paper is constructible from a short string
(e.g. ``"dynmcb8-asap-per-600"``), which the experiment harness, the CLI, and
the benchmarks use to stay declarative.  Periodic algorithms accept an
optional ``-<seconds>`` suffix overriding the default 600-second period.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List

from ..exceptions import ConfigurationError
from .base import Scheduler
from .batch.conservative import ConservativeBackfillingScheduler
from .batch.easy import EasyBackfillingScheduler
from .batch.fcfs import FcfsScheduler
from .batch.gang import GangScheduler
from .dfrs.dynmcb8 import DynMcb8Scheduler
from .dfrs.fairness import LongJobThrottlingScheduler
from .dfrs.greedy import GreedyScheduler
from .dfrs.greedy_pmtn import GreedyPmtnMigrScheduler, GreedyPmtnScheduler
from .dfrs.periodic import (
    DEFAULT_PERIOD,
    DynMcb8AsapPeriodicScheduler,
    DynMcb8PeriodicScheduler,
)
from .dfrs.stretch_per import DynMcb8StretchPeriodicScheduler
from .dfrs.weighted import WeightedYieldScheduler

__all__ = [
    "create_scheduler",
    "available_algorithms",
    "algorithm_catalog",
    "PAPER_ALGORITHMS",
    "DFRS_ALGORITHMS",
    "BATCH_ALGORITHMS",
]

#: The nine algorithms evaluated in the paper, in the order of Table I.
PAPER_ALGORITHMS: List[str] = [
    "fcfs",
    "easy",
    "greedy",
    "greedy-pmtn",
    "greedy-pmtn-migr",
    "dynmcb8",
    "dynmcb8-per-600",
    "dynmcb8-asap-per-600",
    "dynmcb8-stretch-per-600",
]

BATCH_ALGORITHMS: List[str] = ["fcfs", "easy"]
DFRS_ALGORITHMS: List[str] = [name for name in PAPER_ALGORITHMS if name not in BATCH_ALGORITHMS]

_SIMPLE_FACTORIES: Dict[str, Callable[[], Scheduler]] = {
    "fcfs": FcfsScheduler,
    "easy": EasyBackfillingScheduler,
    "conservative": ConservativeBackfillingScheduler,
    "gang": GangScheduler,
    "greedy": GreedyScheduler,
    "greedy-pmtn": GreedyPmtnScheduler,
    "greedy-pmtn-migr": GreedyPmtnMigrScheduler,
    "dynmcb8": DynMcb8Scheduler,
}

#: Algorithms taking an integer suffix interpreted as their period in seconds.
_PERIODIC_FACTORIES: Dict[str, Callable[[float], Scheduler]] = {
    "dynmcb8-per": DynMcb8PeriodicScheduler,
    "dynmcb8-asap-per": DynMcb8AsapPeriodicScheduler,
    "dynmcb8-stretch-per": DynMcb8StretchPeriodicScheduler,
    # Extensions (paper's future work): long-job yield throttling and
    # user-priority weighted sharing on top of DYNMCB8-ASAP-PER.  Not part of
    # PAPER_ALGORITHMS.
    "dynmcb8-asap-throttled-per": LongJobThrottlingScheduler,
    "dynmcb8-asap-weighted-per": WeightedYieldScheduler,
}

#: Algorithms taking an integer suffix with a non-period meaning.
_INTEGER_SUFFIX_FACTORIES: Dict[str, Callable[[int], Scheduler]] = {
    # gang-<rows>: idealised gang scheduling with the given multiprogramming level.
    "gang": lambda rows: GangScheduler(max_rows=rows),
}

_PERIODIC_PATTERN = re.compile(r"^(?P<base>[a-z0-9\-]+?)(?:-(?P<period>\d+))?$")


def available_algorithms() -> List[str]:
    """Names accepted by :func:`create_scheduler` (periodic names unsuffixed)."""
    return sorted(list(_SIMPLE_FACTORIES) + list(_PERIODIC_FACTORIES))


def algorithm_catalog() -> List[Dict[str, object]]:
    """Structured registry listing for user-facing output.

    One entry per registered base name, sorted, with the name grammar a user
    needs to construct valid registry strings: whether the name accepts a
    ``-<seconds>`` period suffix (and its default), whether an integer suffix
    has a non-period meaning, and whether the name appears in the paper's
    evaluated set (possibly via its default-period variant).
    """
    entries: List[Dict[str, object]] = []
    for name in available_algorithms():
        periodic = name in _PERIODIC_FACTORIES
        integer_suffix = name in _INTEGER_SUFFIX_FACTORIES
        entry: Dict[str, object] = {
            "name": name,
            "periodic": periodic,
            "integer_suffix": integer_suffix,
            "grammar": f"{name}[-<seconds>]" if periodic else name,
            "paper": (
                name in PAPER_ALGORITHMS
                or (periodic and f"{name}-{int(DEFAULT_PERIOD)}" in PAPER_ALGORITHMS)
            ),
        }
        if periodic:
            entry["default_period"] = DEFAULT_PERIOD
        if integer_suffix:
            entry["grammar"] = f"{name}[-<rows>]"
        entries.append(entry)
    return entries


def create_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduler from its registry name.

    Periodic algorithms accept an optional period suffix, e.g.
    ``"dynmcb8-per"`` (default 600 s) or ``"dynmcb8-per-60"``.
    """
    key = name.strip().lower()
    if key in _SIMPLE_FACTORIES:
        return _SIMPLE_FACTORIES[key]()
    match = _PERIODIC_PATTERN.match(key)
    if match:
        base = match.group("base")
        period = match.group("period")
        if base in _PERIODIC_FACTORIES:
            seconds = float(period) if period is not None else DEFAULT_PERIOD
            return _PERIODIC_FACTORIES[base](seconds)
        if base in _INTEGER_SUFFIX_FACTORIES and period is not None:
            return _INTEGER_SUFFIX_FACTORIES[base](int(period))
    raise ConfigurationError(
        f"unknown scheduling algorithm {name!r}; known algorithms: "
        f"{', '.join(available_algorithms())}"
    )
