"""Scheduling policies: batch baselines (FCFS, EASY) and the DFRS family."""

from .base import Scheduler
from .batch.conservative import ConservativeBackfillingScheduler
from .batch.easy import EasyBackfillingScheduler
from .batch.fcfs import FcfsScheduler
from .batch.gang import GangScheduler
from .dfrs.dynmcb8 import DynMcb8Scheduler
from .dfrs.fairness import LongJobThrottlingScheduler
from .dfrs.greedy import GreedyScheduler
from .dfrs.greedy_pmtn import GreedyPmtnMigrScheduler, GreedyPmtnScheduler
from .dfrs.periodic import (
    DEFAULT_PERIOD,
    DynMcb8AsapPeriodicScheduler,
    DynMcb8PeriodicScheduler,
)
from .dfrs.stretch_per import DynMcb8StretchPeriodicScheduler
from .dfrs.weighted import WeightedYieldScheduler, inverse_size_weight, uniform_weight
from .registry import (
    BATCH_ALGORITHMS,
    DFRS_ALGORITHMS,
    PAPER_ALGORITHMS,
    available_algorithms,
    create_scheduler,
)

__all__ = [
    "Scheduler",
    "ConservativeBackfillingScheduler",
    "EasyBackfillingScheduler",
    "FcfsScheduler",
    "GangScheduler",
    "DynMcb8Scheduler",
    "LongJobThrottlingScheduler",
    "GreedyScheduler",
    "GreedyPmtnMigrScheduler",
    "GreedyPmtnScheduler",
    "DEFAULT_PERIOD",
    "DynMcb8AsapPeriodicScheduler",
    "DynMcb8PeriodicScheduler",
    "DynMcb8StretchPeriodicScheduler",
    "WeightedYieldScheduler",
    "inverse_size_weight",
    "uniform_weight",
    "BATCH_ALGORITHMS",
    "DFRS_ALGORITHMS",
    "PAPER_ALGORITHMS",
    "available_algorithms",
    "create_scheduler",
]
