"""Trace persistence: the internal JSON format and SWF export.

SWF is the archive interchange format, but it cannot carry the DFRS
annotations (fractional CPU needs, per-task memory fractions) losslessly.
The internal JSON format stores exactly the fields of
:class:`~repro.core.job.JobSpec` plus the target cluster, so a preprocessed
or transformed trace can be saved once and replayed bit-identically::

    {
      "format": "repro-dfrs-trace-v1",
      "name": "downey-seed7+rescale-load",
      "cluster": {"nodes": 128, "cores_per_node": 4, "node_memory_gb": 8.0},
      "jobs": [
        {"job_id": 0, "submit_time": 12.5, "num_tasks": 4,
         "cpu_need": 1.0, "mem_requirement": 0.1, "execution_time": 360.0},
        ...
      ]
    }

SWF export (``workload_to_swf_records``) is lossy by construction and
documented as such: tasks map to processors, the memory fraction maps to KB
per processor against the cluster's node memory, and CPU needs are dropped
(re-importing applies the paper's preprocessing afresh).  ``.gz`` suffixes
compress transparently in both directions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, List, Mapping, Optional, Union

from ..core.cluster import Cluster
from ..core.job import JobSpec
from ..exceptions import TraceFormatError
from ..workloads.model import Workload
from ..workloads.swf import SwfRecord, open_trace_text, swf_header, write_swf

__all__ = [
    "TRACE_JSON_FORMAT",
    "write_trace_json",
    "load_trace_json",
    "trace_json_payload_to_workload",
    "workload_to_swf_records",
    "write_workload_swf",
]

TRACE_JSON_FORMAT = "repro-dfrs-trace-v1"

_JOB_FIELDS = (
    "job_id",
    "submit_time",
    "num_tasks",
    "cpu_need",
    "mem_requirement",
    "execution_time",
)


def _read_text(path: Path) -> str:
    with open_trace_text(path, "rt") as handle:
        return handle.read()


def _write_text(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open_trace_text(path, "wt") as handle:
        handle.write(text)


def write_trace_json(workload: Workload, destination: Union[str, Path]) -> Path:
    """Write a workload to the internal JSON trace format."""
    path = Path(destination)
    payload = {
        "format": TRACE_JSON_FORMAT,
        "name": workload.name,
        "cluster": {
            "nodes": workload.cluster.num_nodes,
            "cores_per_node": workload.cluster.cores_per_node,
            "node_memory_gb": workload.cluster.node_memory_gb,
        },
        "jobs": [
            {field: getattr(spec, field) for field in _JOB_FIELDS}
            for spec in workload.jobs
        ],
    }
    _write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_trace_json(
    source: Union[str, Path], *, cluster: Optional[Cluster] = None
) -> Workload:
    """Load a workload from the internal JSON trace format.

    With ``cluster`` given, the stored cluster is overridden (the job specs
    themselves are cluster-independent fractions).
    """
    path = Path(source)
    if not path.exists():
        raise TraceFormatError(f"trace file not found: {path}")
    try:
        payload = json.loads(_read_text(path))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
        raise TraceFormatError(f"cannot read JSON trace {path}: {error}") from None
    return trace_json_payload_to_workload(
        payload, cluster=cluster, origin=str(path), name_fallback=path.stem
    )


def trace_json_payload_to_workload(
    payload: Any,
    *,
    cluster: Optional[Cluster] = None,
    origin: str = "<payload>",
    name_fallback: str = "trace",
) -> Workload:
    """Build a workload from an already-parsed internal-format payload.

    The parsing half of :func:`load_trace_json`, for callers (the CLI's
    format sniffing) that already hold the decoded JSON and should not read
    the file a second time.
    """
    if not isinstance(payload, Mapping) or payload.get("format") != TRACE_JSON_FORMAT:
        raise TraceFormatError(
            f"{origin} is not a {TRACE_JSON_FORMAT!r} trace "
            "(missing or unknown 'format' field)"
        )
    cluster_spec = payload.get("cluster", {})
    stored_cluster = Cluster(
        num_nodes=int(cluster_spec.get("nodes", 128)),
        cores_per_node=int(cluster_spec.get("cores_per_node", 4)),
        node_memory_gb=float(cluster_spec.get("node_memory_gb", 8.0)),
    )
    jobs: List[JobSpec] = []
    for entry in payload.get("jobs", []):
        try:
            jobs.append(JobSpec(**{field: entry[field] for field in _JOB_FIELDS}))
        except (KeyError, TypeError) as error:
            raise TraceFormatError(
                f"{origin}: malformed job entry {entry!r}: {error}"
            ) from None
    return Workload(
        str(payload.get("name", name_fallback)),
        cluster if cluster is not None else stored_cluster,
        jobs,
    )


def workload_to_swf_records(workload: Workload) -> List[SwfRecord]:
    """Convert a workload to SWF records (lossy: CPU needs are dropped).

    Tasks map to (requested and allocated) processors; the per-task memory
    fraction maps to KB per processor against the workload cluster's node
    memory, which round-trips through the §IV-C preprocessing's memory rule.
    """
    node_kb = workload.cluster.node_memory_gb * 1024 * 1024
    records: List[SwfRecord] = []
    for spec in workload.jobs:
        memory_kb = round(spec.mem_requirement * node_kb, 1)
        records.append(
            SwfRecord(
                job_number=spec.job_id + 1,
                submit_time=spec.submit_time,
                wait_time=0.0,
                run_time=spec.execution_time,
                allocated_processors=spec.num_tasks,
                average_cpu_time=spec.execution_time,
                used_memory_kb=memory_kb,
                requested_processors=spec.num_tasks,
                requested_time=spec.execution_time,
                requested_memory_kb=memory_kb,
                status=1,
            )
        )
    return records


def write_workload_swf(workload: Workload, destination: Union[str, Path]) -> Path:
    """Write a workload as an SWF file (``.gz`` compresses transparently)."""
    path = Path(destination)
    header = swf_header(
        computer=workload.name,
        max_nodes=workload.cluster.num_nodes,
        max_procs=workload.cluster.num_nodes * workload.cluster.cores_per_node,
        note="exported by repro-dfrs trace (DFRS CPU-need annotations are not preserved)",
    )
    write_swf(workload_to_swf_records(workload), path, header=header)
    return path
