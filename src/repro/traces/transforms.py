"""Composable, spec-expressible trace transforms.

A :class:`TraceTransform` rewrites one arrival-ordered spec stream into
another.  Transforms chain over any :class:`~repro.traces.source.JobSource`
through :class:`TransformedSource` (spec type ``"transform"``), so trace
surgery that previously required ad-hoc driver code is now declarative::

    {
      "type": "transform",
      "base": {"type": "downey", "num_jobs": 5000, "seed": 7},
      "steps": [
        {"type": "time-window", "start": 0, "end": 604800},
        {"type": "rescale-load", "target_load": 0.7},
        {"type": "perturb", "runtime_factor": 0.1, "seed": 1}
      ]
    }

Contract (mirrors the source contract):

* input and output streams are arrival-ordered; every transform preserves
  that invariant (buffering transforms re-sort before emitting);
* transforms are deterministic — all randomness comes from an explicit
  ``seed`` field, so a transform chain is a pure description;
* ``streaming`` is True when the transform holds O(1) specs at a time.
  ``rescale-load`` and ``bootstrap`` necessarily buffer the stream (both
  need whole-trace statistics) and are marked ``streaming = False``; a
  chain is bounded-memory iff every step is streaming.

Sequential splicing of several traces is a *source* operation —
see :class:`repro.traces.source.ConcatTraceSource` (spec type ``"concat"``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from ..core.cluster import Cluster
from ..core.job import JobSpec
from ..exceptions import ConfigurationError
from ..workloads.model import offered_load
from .source import JobSource, register_trace_source, trace_source_from_dict

__all__ = [
    "TraceTransform",
    "TimeWindow",
    "ScaleInterarrival",
    "RescaleLoad",
    "Perturb",
    "FilterJobs",
    "PredicateFilter",
    "Head",
    "BootstrapResample",
    "TransformedSource",
    "register_transform",
    "transform_from_dict",
    "available_transforms",
]


class TraceTransform:
    """Abstract rewrite of one arrival-ordered spec stream into another."""

    kind: str = "abstract"
    #: True when the transform holds O(1) specs at a time.
    streaming: bool = True
    #: True when ``to_dict()`` round-trips through ``transform_from_dict``.
    spec_expressible: bool = True

    def apply(self, stream: Iterator[JobSpec], cluster: Cluster) -> Iterator[JobSpec]:
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError


# --------------------------------------------------------------------------- #
# Registry                                                                     #
# --------------------------------------------------------------------------- #
_TRANSFORM_TYPES: Dict[str, Callable[..., TraceTransform]] = {}


def register_transform(kind: str, factory: Callable[..., TraceTransform]) -> None:
    """Register a transform type under its spec ``type`` name."""
    if kind in _TRANSFORM_TYPES:
        raise ConfigurationError(f"trace transform type {kind!r} already registered")
    _TRANSFORM_TYPES[kind] = factory


def available_transforms() -> List[str]:
    """Registered transform type names, sorted."""
    return sorted(_TRANSFORM_TYPES)


def transform_from_dict(data: Mapping[str, Any]) -> TraceTransform:
    """Build a transform from its spec dictionary (inverse of ``to_dict``)."""
    payload = dict(data)
    kind = payload.pop("type", None)
    if kind is None:
        raise ConfigurationError("trace transform spec needs a 'type' field")
    try:
        factory = _TRANSFORM_TYPES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown trace transform type {kind!r}; known types: "
            f"{', '.join(available_transforms())}"
        ) from None
    try:
        return factory(**payload)
    except TypeError as error:
        raise ConfigurationError(
            f"invalid options for trace transform {kind!r}: {error}"
        ) from None


def _sorted_buffer(stream: Iterator[JobSpec]) -> List[JobSpec]:
    """Materialize a stream, restoring arrival order defensively."""
    buffer = list(stream)
    buffer.sort(key=lambda spec: (spec.submit_time, spec.job_id))
    return buffer


# --------------------------------------------------------------------------- #
# Streaming transforms                                                         #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TimeWindow(TraceTransform):
    """Keep only jobs submitted in ``[start, end)``, optionally rebased.

    Relies on arrival order to stop reading the upstream as soon as the
    window has passed, so slicing a week out of a year-long trace touches
    only a week of specs (plus the prefix before ``start``).
    """

    start: float = 0.0
    end: Optional[float] = None
    rebase: bool = True

    kind = "time-window"

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigurationError(f"start must be >= 0, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise ConfigurationError("end must be > start")

    def apply(self, stream: Iterator[JobSpec], cluster: Cluster) -> Iterator[JobSpec]:
        def _windowed() -> Iterator[JobSpec]:
            for spec in stream:
                if spec.submit_time < self.start:
                    continue
                if self.end is not None and spec.submit_time >= self.end:
                    break
                if self.rebase:
                    yield replace(spec, submit_time=spec.submit_time - self.start)
                else:
                    yield spec

        return _windowed()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "start": self.start,
            "end": self.end,
            "rebase": self.rebase,
        }


@dataclass(frozen=True)
class ScaleInterarrival(TraceTransform):
    """Multiply every inter-arrival gap by a constant factor (streaming)."""

    factor: float = 1.0

    kind = "scale-interarrival"

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ConfigurationError(f"factor must be > 0, got {self.factor}")

    def apply(self, stream: Iterator[JobSpec], cluster: Cluster) -> Iterator[JobSpec]:
        def _scaled() -> Iterator[JobSpec]:
            base: Optional[float] = None
            for spec in stream:
                if base is None:
                    base = spec.submit_time
                yield replace(
                    spec,
                    submit_time=base + (spec.submit_time - base) * self.factor,
                )

        return _scaled()

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "factor": self.factor}


@dataclass(frozen=True)
class FilterJobs(TraceTransform):
    """Keep only jobs inside the given width/runtime/memory bounds."""

    min_tasks: Optional[int] = None
    max_tasks: Optional[int] = None
    min_runtime_seconds: Optional[float] = None
    max_runtime_seconds: Optional[float] = None
    max_memory_fraction: Optional[float] = None

    kind = "filter"

    def _keep(self, spec: JobSpec) -> bool:
        if self.min_tasks is not None and spec.num_tasks < self.min_tasks:
            return False
        if self.max_tasks is not None and spec.num_tasks > self.max_tasks:
            return False
        if (
            self.min_runtime_seconds is not None
            and spec.execution_time < self.min_runtime_seconds
        ):
            return False
        if (
            self.max_runtime_seconds is not None
            and spec.execution_time > self.max_runtime_seconds
        ):
            return False
        if (
            self.max_memory_fraction is not None
            and spec.mem_requirement > self.max_memory_fraction
        ):
            return False
        return True

    def apply(self, stream: Iterator[JobSpec], cluster: Cluster) -> Iterator[JobSpec]:
        return (spec for spec in stream if self._keep(spec))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "min_tasks": self.min_tasks,
            "max_tasks": self.max_tasks,
            "min_runtime_seconds": self.min_runtime_seconds,
            "max_runtime_seconds": self.max_runtime_seconds,
            "max_memory_fraction": self.max_memory_fraction,
        }


@dataclass(frozen=True)
class PredicateFilter(TraceTransform):
    """Filter by an arbitrary predicate (code-only, not spec-expressible).

    The ``key`` string stands in for the predicate in spec dictionaries,
    mirroring the other non-expressible escape hatches.
    """

    predicate: Callable[[JobSpec], bool] = None  # type: ignore[assignment]
    key: str = "predicate"

    kind = "predicate-filter"
    spec_expressible = False

    def __post_init__(self) -> None:
        if self.predicate is None:
            raise ConfigurationError("PredicateFilter needs a predicate callable")

    def apply(self, stream: Iterator[JobSpec], cluster: Cluster) -> Iterator[JobSpec]:
        return (spec for spec in stream if self.predicate(spec))

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "key": self.key}


@dataclass(frozen=True)
class Head(TraceTransform):
    """Keep only the first ``count`` jobs of the stream."""

    count: int = 1

    kind = "head"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(f"count must be >= 1, got {self.count}")

    def apply(self, stream: Iterator[JobSpec], cluster: Cluster) -> Iterator[JobSpec]:
        return itertools.islice(stream, self.count)

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "count": self.count}


@dataclass(frozen=True)
class Perturb(TraceTransform):
    """Seeded multiplicative jitter on runtimes and/or widths (streaming).

    Runtimes are multiplied by ``lognormal(0, runtime_factor)`` and widths by
    ``lognormal(0, width_factor)`` (rounded, clamped to ``[1, num_nodes]``).
    Submission times are untouched, so arrival order is trivially preserved,
    and the RNG is drawn twice per job in a fixed order, so a given seed
    always produces the same perturbation regardless of which factors are
    enabled.
    """

    runtime_factor: float = 0.0
    width_factor: float = 0.0
    seed: int = 0

    kind = "perturb"

    def __post_init__(self) -> None:
        if self.runtime_factor < 0 or self.width_factor < 0:
            raise ConfigurationError("perturbation factors must be >= 0")

    def apply(self, stream: Iterator[JobSpec], cluster: Cluster) -> Iterator[JobSpec]:
        def _perturbed() -> Iterator[JobSpec]:
            rng = np.random.default_rng(self.seed)
            for spec in stream:
                runtime_mult = float(rng.lognormal(0.0, self.runtime_factor))
                width_mult = float(rng.lognormal(0.0, self.width_factor))
                runtime = max(1.0, spec.execution_time * runtime_mult)
                width = int(round(spec.num_tasks * width_mult))
                width = min(max(width, 1), cluster.num_nodes)
                yield replace(spec, execution_time=runtime, num_tasks=width)

        return _perturbed()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "runtime_factor": self.runtime_factor,
            "width_factor": self.width_factor,
            "seed": self.seed,
        }


# --------------------------------------------------------------------------- #
# Buffering transforms (whole-trace statistics needed)                         #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RescaleLoad(TraceTransform):
    """Rescale inter-arrival gaps so the trace reaches a target offered load.

    The same computation as :func:`repro.workloads.scaling.scale_to_load`
    (factor = current load / target load), lifted to the transform chain.
    Buffers the stream: the offered load needs the whole trace's demand and
    span before the first job can be emitted.
    """

    target_load: float = 0.0

    kind = "rescale-load"
    streaming = False

    def __post_init__(self) -> None:
        if self.target_load <= 0:
            raise ConfigurationError(
                f"target_load must be > 0, got {self.target_load}"
            )

    def apply(self, stream: Iterator[JobSpec], cluster: Cluster) -> Iterator[JobSpec]:
        def _rescaled() -> Iterator[JobSpec]:
            buffer = _sorted_buffer(stream)
            if len(buffer) < 2:
                raise ConfigurationError(
                    "cannot rescale a trace with fewer than two jobs"
                )
            current = offered_load(buffer, cluster)
            if current <= 0 or not np.isfinite(current):
                raise ConfigurationError(
                    f"trace has degenerate offered load {current}; cannot rescale"
                )
            factor = current / self.target_load
            base = buffer[0].submit_time
            for spec in buffer:
                yield replace(
                    spec, submit_time=base + (spec.submit_time - base) * factor
                )

        return _rescaled()

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "target_load": self.target_load}


@dataclass(frozen=True)
class BootstrapResample(TraceTransform):
    """Bootstrap-resample jobs with replacement (seeded, buffering).

    Draws ``num_jobs`` jobs (default: the input size) uniformly with
    replacement, keeps their original submission times, re-sorts into
    arrival order, and renumbers ids from zero so duplicated draws stay a
    valid workload.  The standard tool for confidence intervals on
    trace-driven metrics.
    """

    num_jobs: Optional[int] = None
    seed: int = 0

    kind = "bootstrap"
    streaming = False

    def __post_init__(self) -> None:
        if self.num_jobs is not None and self.num_jobs < 1:
            raise ConfigurationError(f"num_jobs must be >= 1, got {self.num_jobs}")

    def apply(self, stream: Iterator[JobSpec], cluster: Cluster) -> Iterator[JobSpec]:
        def _resampled() -> Iterator[JobSpec]:
            buffer = _sorted_buffer(stream)
            if not buffer:
                return
            rng = np.random.default_rng(self.seed)
            count = self.num_jobs if self.num_jobs is not None else len(buffer)
            draws = sorted(
                int(index) for index in rng.integers(0, len(buffer), size=count)
            )
            for job_id, index in enumerate(draws):
                yield replace(buffer[index], job_id=job_id)

        return _resampled()

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "num_jobs": self.num_jobs, "seed": self.seed}


# --------------------------------------------------------------------------- #
# The transformed source                                                       #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TransformedSource(JobSource):
    """A :class:`JobSource` with a transform chain applied left to right."""

    base: JobSource = None  # type: ignore[assignment]
    steps: Tuple[TraceTransform, ...] = ()

    kind = "transform"

    def __post_init__(self) -> None:
        if self.base is None:
            raise ConfigurationError("TransformedSource needs a base source")
        if not self.steps:
            raise ConfigurationError(
                "TransformedSource needs at least one transform step"
            )
        object.__setattr__(self, "steps", tuple(self.steps))
        object.__setattr__(
            self,
            "spec_expressible",
            self.base.spec_expressible
            and all(step.spec_expressible for step in self.steps),
        )
        # The chain's output order is only as trustworthy as its base's.
        object.__setattr__(
            self, "order_by_convention", self.base.order_by_convention
        )

    @property
    def streaming(self) -> bool:
        """True when the whole chain holds O(1) specs at a time."""
        return all(step.streaming for step in self.steps)

    def jobs(self, cluster: Cluster) -> Iterator[JobSpec]:
        stream = self.base.jobs(cluster)
        for step in self.steps:
            stream = step.apply(stream, cluster)
        return stream

    def default_name(self) -> str:
        suffix = "+".join(step.kind for step in self.steps)
        return f"{self.base.default_name()}+{suffix}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "base": self.base.to_dict(),
            "steps": [step.to_dict() for step in self.steps],
        }


def _transformed_from_spec(
    base: Optional[Mapping[str, Any]] = None,
    steps: "tuple | list" = (),
) -> TransformedSource:
    if base is None:
        raise ConfigurationError("transform source spec needs a 'base' source")
    return TransformedSource(
        base=trace_source_from_dict(base),
        steps=tuple(transform_from_dict(step) for step in steps),
    )


register_transform("time-window", TimeWindow)
register_transform("scale-interarrival", ScaleInterarrival)
register_transform("rescale-load", RescaleLoad)
register_transform("perturb", Perturb)
register_transform("filter", FilterJobs)
register_transform("head", Head)
register_transform("bootstrap", BootstrapResample)
register_trace_source("transform", _transformed_from_spec)
