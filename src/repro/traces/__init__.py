"""Streaming workload sources, synthetic generators, and trace transforms.

This package is the workload seam of the reproduction:

* :mod:`~repro.traces.source` — the :class:`JobSource` streaming protocol
  (arrival-ordered, bounded-memory iterators of job specs with a canonical
  ``to_dict``/``from_dict`` spec form) plus adapters for every existing
  path: Lublin, HPC2N-like, SWF files (gzip-aware), internal JSON traces,
  in-memory workloads, arbitrary callables, and sequential splicing;
* :mod:`~repro.traces.generators` — new synthetic models beyond the paper:
  a Feitelson/Downey-style log-uniform runtime + parallelism model
  (``"downey"``) and a diurnal/bursty Markov-modulated Poisson arrival
  process (``"diurnal-poisson"``);
* :mod:`~repro.traces.transforms` — composable, spec-expressible trace
  surgery (time-window slice, load rescale, seeded perturbation, filters,
  head, bootstrap resample) chained over any source via
  :class:`TransformedSource`;
* :mod:`~repro.traces.io` — the internal JSON trace format and (lossy)
  SWF export.

Sources plug into the campaign layer through the ``generator`` and
``transform`` scenario source types (:mod:`repro.campaign.scenario`), into
the CLI through ``repro-dfrs trace``, and into the engine through
:meth:`repro.core.engine.Simulator.run_stream`, which admits jobs lazily so
peak resident state is O(active jobs) even on million-job traces.
"""

from .generators import DiurnalPoissonTraceSource, DowneyTraceSource
from .io import (
    TRACE_JSON_FORMAT,
    load_trace_json,
    trace_json_payload_to_workload,
    workload_to_swf_records,
    write_trace_json,
    write_workload_swf,
)
from .source import (
    CallableTraceSource,
    ConcatTraceSource,
    Hpc2nLikeTraceSource,
    JobSource,
    JsonTraceSource,
    LublinTraceSource,
    SwfTraceSource,
    WorkloadTraceSource,
    available_trace_sources,
    register_trace_source,
    trace_source_from_dict,
)
from .transforms import (
    BootstrapResample,
    FilterJobs,
    Head,
    Perturb,
    PredicateFilter,
    RescaleLoad,
    ScaleInterarrival,
    TimeWindow,
    TraceTransform,
    TransformedSource,
    available_transforms,
    register_transform,
    transform_from_dict,
)

__all__ = [
    "JobSource",
    "LublinTraceSource",
    "Hpc2nLikeTraceSource",
    "SwfTraceSource",
    "JsonTraceSource",
    "WorkloadTraceSource",
    "CallableTraceSource",
    "ConcatTraceSource",
    "register_trace_source",
    "trace_source_from_dict",
    "available_trace_sources",
    "DowneyTraceSource",
    "DiurnalPoissonTraceSource",
    "TraceTransform",
    "TimeWindow",
    "ScaleInterarrival",
    "RescaleLoad",
    "Perturb",
    "FilterJobs",
    "PredicateFilter",
    "Head",
    "BootstrapResample",
    "TransformedSource",
    "register_transform",
    "transform_from_dict",
    "available_transforms",
    "TRACE_JSON_FORMAT",
    "write_trace_json",
    "load_trace_json",
    "trace_json_payload_to_workload",
    "workload_to_swf_records",
    "write_workload_swf",
]
