"""The :class:`JobSource` streaming protocol and its standard adapters.

A *job source* is a named, deterministic, re-iterable producer of an
**arrival-ordered** stream of :class:`~repro.core.job.JobSpec`s for a given
cluster.  Unlike :class:`~repro.workloads.model.Workload` (a materialized
list), a source only promises an iterator — a million-job trace can be
generated, transformed, and simulated (via
:meth:`repro.core.engine.Simulator.run_stream`) without ever being resident
in memory at once.

The contract:

* ``jobs(cluster)`` yields specs with **non-decreasing submit times** and
  unique job ids; the simulation engine enforces both.
* Iterating twice yields the same stream (sources are pure descriptions;
  all randomness is seeded).
* ``to_dict()`` returns the canonical spec form when the source is
  **spec-expressible** (``spec_expressible`` is True); such dictionaries
  round-trip through :func:`trace_source_from_dict` and can appear in
  ``repro-dfrs run`` spec files via the campaign layer's ``generator`` and
  ``transform`` source types.  In-memory adapters (``WorkloadTraceSource``,
  ``CallableTraceSource``) are not spec-expressible: their ``key`` stands in
  for their content in hashes.

Adapters for every pre-existing workload path live here (Lublin, HPC2N-like,
SWF files, internal JSON traces, in-memory workloads, arbitrary callables,
and sequential splicing); the new synthetic models are in
:mod:`repro.traces.generators` and the composable trace surgery in
:mod:`repro.traces.transforms`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..core.cluster import Cluster
from ..core.job import JobSpec
from ..exceptions import ConfigurationError
from ..workloads.model import Workload

if TYPE_CHECKING:  # circular at runtime: transforms imports this module
    from .transforms import TraceTransform

__all__ = [
    "JobSource",
    "LublinTraceSource",
    "Hpc2nLikeTraceSource",
    "SwfTraceSource",
    "JsonTraceSource",
    "WorkloadTraceSource",
    "CallableTraceSource",
    "ConcatTraceSource",
    "register_trace_source",
    "trace_source_from_dict",
    "available_trace_sources",
]


class JobSource:
    """Abstract streaming producer of arrival-ordered job specs."""

    kind: str = "abstract"
    #: True when ``to_dict()`` round-trips through ``trace_source_from_dict``
    #: (i.e. the source can appear in a ``repro-dfrs run`` spec file).
    spec_expressible: bool = True
    #: True when the arrival-order promise rests on external *convention*
    #: (e.g. an SWF archive's sort order) rather than on construction.
    #: Consumers that would fail late on an unsorted stream (the streaming
    #: campaign executor) pre-check such sources with one cheap pass.
    #: Wrapper sources (transform chains, concat splices) propagate the flag
    #: from their bases.
    order_by_convention: bool = False

    def jobs(self, cluster: Cluster) -> Iterator[JobSpec]:
        """Yield the trace's specs in arrival order for ``cluster``."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """Canonical spec dictionary (with a ``type`` field)."""
        raise NotImplementedError

    def default_name(self) -> str:
        """Workload name used when the source is materialized."""
        return self.kind

    def materialize(self, cluster: Cluster, *, name: Optional[str] = None) -> Workload:
        """Collect the full stream into a :class:`Workload`."""
        return Workload(name or self.default_name(), cluster, list(self.jobs(cluster)))

    def transformed(self, *steps: "TraceTransform") -> "JobSource":
        """This source with trace transforms chained on top (left to right)."""
        from .transforms import TransformedSource

        return TransformedSource(base=self, steps=tuple(steps))


# --------------------------------------------------------------------------- #
# Registry                                                                     #
# --------------------------------------------------------------------------- #
_TRACE_SOURCE_TYPES: Dict[str, Callable[..., JobSource]] = {}


def register_trace_source(kind: str, factory: Callable[..., JobSource]) -> None:
    """Register a source type under its spec ``type`` name."""
    if kind in _TRACE_SOURCE_TYPES:
        raise ConfigurationError(f"trace source type {kind!r} already registered")
    _TRACE_SOURCE_TYPES[kind] = factory


def available_trace_sources() -> List[str]:
    """Registered spec-expressible source type names, sorted."""
    return sorted(_TRACE_SOURCE_TYPES)


def trace_source_from_dict(data: Mapping[str, Any]) -> JobSource:
    """Build a trace source from its spec dictionary (inverse of ``to_dict``)."""
    payload = dict(data)
    kind = payload.pop("type", None)
    if kind is None:
        raise ConfigurationError("trace source spec needs a 'type' field")
    try:
        factory = _TRACE_SOURCE_TYPES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown trace source type {kind!r}; known types: "
            f"{', '.join(available_trace_sources())}"
        ) from None
    try:
        return factory(**payload)
    except TypeError as error:
        raise ConfigurationError(
            f"invalid options for trace source {kind!r}: {error}"
        ) from None


# --------------------------------------------------------------------------- #
# Adapters over the existing workload paths                                    #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LublinTraceSource(JobSource):
    """One streaming Lublin–Feitelson synthetic trace (paper §IV-C)."""

    num_jobs: int = 150
    seed: int = 2010

    kind = "lublin"

    def __post_init__(self) -> None:
        if self.num_jobs < 1:
            raise ConfigurationError(f"num_jobs must be >= 1, got {self.num_jobs}")

    def jobs(self, cluster: Cluster) -> Iterator[JobSpec]:
        from ..workloads.lublin import LublinWorkloadGenerator

        return LublinWorkloadGenerator(cluster).iter_jobs(self.num_jobs, seed=self.seed)

    def default_name(self) -> str:
        return f"lublin-seed{self.seed}"

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "num_jobs": self.num_jobs, "seed": self.seed}


@dataclass(frozen=True)
class Hpc2nLikeTraceSource(JobSource):
    """One streaming HPC2N-like synthetic trace (the paper's real-world mimic)."""

    weeks: int = 1
    jobs_per_week: int = 400
    seed: int = 2010

    kind = "hpc2n-like"

    def __post_init__(self) -> None:
        if self.weeks < 1:
            raise ConfigurationError(f"weeks must be >= 1, got {self.weeks}")

    def jobs(self, cluster: Cluster) -> Iterator[JobSpec]:
        from ..workloads.hpc2n import Hpc2nLikeTraceGenerator, record_to_jobspec

        generator = Hpc2nLikeTraceGenerator(cluster, jobs_per_week=self.jobs_per_week)

        def _stream() -> Iterator[JobSpec]:
            job_id = 0
            for record in generator.iter_records(self.weeks, seed=self.seed):
                spec = record_to_jobspec(record, cluster, job_id=job_id)
                if spec is not None:
                    yield spec
                    job_id += 1

        return _stream()

    def default_name(self) -> str:
        return f"hpc2n-like-seed{self.seed}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "weeks": self.weeks,
            "jobs_per_week": self.jobs_per_week,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class SwfTraceSource(JobSource):
    """Stream a Standard Workload Format file (optionally ``.gz``) from disk.

    Records are converted one at a time with the paper's HPC2N preprocessing
    (:func:`repro.workloads.hpc2n.record_to_jobspec`), so multi-gigabyte
    archive traces never need to be resident.  Archive traces are submit-
    ordered by convention; a stray out-of-order record is reported by the
    engine's streaming intake, and :meth:`materialize` sorts regardless.
    """

    path: str = ""

    kind = "swf"
    #: Archive files are submit-ordered by convention, not construction.
    order_by_convention = True

    def __post_init__(self) -> None:
        if not self.path:
            raise ConfigurationError("SwfTraceSource needs a trace file path")

    def jobs(self, cluster: Cluster) -> Iterator[JobSpec]:
        from ..workloads.hpc2n import record_to_jobspec
        from ..workloads.swf import iter_swf_records

        def _stream() -> Iterator[JobSpec]:
            job_id = 0
            for record in iter_swf_records(self.path):
                spec = record_to_jobspec(record, cluster, job_id=job_id)
                if spec is not None:
                    yield spec
                    job_id += 1

        return _stream()

    def default_name(self) -> str:
        from pathlib import Path

        stem = Path(self.path).name
        for suffix in (".gz", ".swf"):
            if stem.endswith(suffix):
                stem = stem[: -len(suffix)]
        return stem or "swf"

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "path": self.path}


@dataclass(frozen=True)
class JsonTraceSource(JobSource):
    """Stream a trace stored in the internal JSON format (see ``traces.io``)."""

    path: str = ""

    kind = "json"

    def __post_init__(self) -> None:
        if not self.path:
            raise ConfigurationError("JsonTraceSource needs a trace file path")

    def jobs(self, cluster: Cluster) -> Iterator[JobSpec]:
        from .io import load_trace_json

        workload = load_trace_json(self.path, cluster=cluster)
        return iter(workload.jobs)

    def default_name(self) -> str:
        from pathlib import Path

        return Path(self.path).stem or "json"

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "path": self.path}


@dataclass(frozen=True)
class WorkloadTraceSource(JobSource):
    """Adapter over an in-memory :class:`Workload` (not spec-expressible)."""

    workload: Workload = None  # type: ignore[assignment]

    kind = "workload"
    spec_expressible = False

    def __post_init__(self) -> None:
        if self.workload is None:
            raise ConfigurationError("WorkloadTraceSource needs a workload")

    def jobs(self, cluster: Cluster) -> Iterator[JobSpec]:
        # Workload sorts its jobs by (submit_time, job_id) on construction,
        # so the stream is arrival-ordered by construction.
        return iter(self.workload.jobs)

    def default_name(self) -> str:
        return self.workload.name

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "key": self.workload.name}


@dataclass(frozen=True)
class CallableTraceSource(JobSource):
    """Arbitrary user-supplied stream factory (not spec-expressible).

    ``factory`` receives the cluster and returns an iterable of specs.  The
    ``key`` string stands in for the factory in spec dictionaries and hashes,
    mirroring :class:`repro.campaign.scenario.CustomSource`.
    """

    factory: Callable[[Cluster], Iterable[JobSpec]] = None  # type: ignore[assignment]
    key: str = "callable"

    kind = "callable"
    spec_expressible = False

    def __post_init__(self) -> None:
        if self.factory is None:
            raise ConfigurationError("CallableTraceSource needs a factory callable")

    def jobs(self, cluster: Cluster) -> Iterator[JobSpec]:
        return iter(self.factory(cluster))

    def default_name(self) -> str:
        return self.key

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "key": self.key}


@dataclass(frozen=True)
class ConcatTraceSource(JobSource):
    """Splice several sources into one sequential stream.

    Each subsequent source is rebased to start ``gap_seconds`` after the
    previous source's last submission, and job ids are renumbered from zero,
    so the result is a single valid arrival-ordered trace.  Splicing is
    fully streaming: only one upstream spec is held at a time.
    """

    sources: Tuple[JobSource, ...] = ()
    gap_seconds: float = 0.0

    kind = "concat"

    def __post_init__(self) -> None:
        if not self.sources:
            raise ConfigurationError("ConcatTraceSource needs at least one source")
        if self.gap_seconds < 0:
            raise ConfigurationError(
                f"gap_seconds must be >= 0, got {self.gap_seconds}"
            )
        object.__setattr__(self, "sources", tuple(self.sources))
        object.__setattr__(
            self,
            "spec_expressible",
            all(source.spec_expressible for source in self.sources),
        )
        object.__setattr__(
            self,
            "order_by_convention",
            any(source.order_by_convention for source in self.sources),
        )

    def jobs(self, cluster: Cluster) -> Iterator[JobSpec]:
        def _stream() -> Iterator[JobSpec]:
            job_id = 0
            offset = 0.0
            for source in self.sources:
                base: Optional[float] = None
                last = 0.0
                for spec in source.jobs(cluster):
                    if base is None:
                        base = spec.submit_time
                    submit = offset + (spec.submit_time - base)
                    last = submit
                    yield replace(spec, job_id=job_id, submit_time=submit)
                    job_id += 1
                if base is not None:
                    offset = last + self.gap_seconds

        return _stream()

    def default_name(self) -> str:
        return "+".join(source.default_name() for source in self.sources)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "sources": [source.to_dict() for source in self.sources],
            "gap_seconds": self.gap_seconds,
        }


def _concat_from_spec(
    sources: Iterable[Mapping[str, Any]] = (), gap_seconds: float = 0.0
) -> ConcatTraceSource:
    return ConcatTraceSource(
        sources=tuple(trace_source_from_dict(spec) for spec in sources),
        gap_seconds=float(gap_seconds),
    )


register_trace_source("lublin", LublinTraceSource)
register_trace_source("hpc2n-like", Hpc2nLikeTraceSource)
register_trace_source("swf", SwfTraceSource)
register_trace_source("json", JsonTraceSource)
register_trace_source("concat", _concat_from_spec)
