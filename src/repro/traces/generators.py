"""New synthetic workload models beyond the paper's Lublin/HPC2N pair.

Two streaming generators are provided, both registered as spec-expressible
trace source types (usable from ``repro-dfrs run`` via the campaign layer's
``generator``/``transform`` sources and from ``repro-dfrs trace``):

* :class:`DowneyTraceSource` (``"downey"``) — a Feitelson/Downey-style
  runtime + parallelism model: job runtimes are log-uniform between
  configurable bounds (Downey's observation that the cumulative runtime
  distribution of production logs is close to uniform in log space), and
  parallelism is log-uniform over the machine width with an explicit serial
  fraction and a bias towards powers of two.  Arrivals are a homogeneous
  Poisson process.

* :class:`DiurnalPoissonTraceSource` (``"diurnal-poisson"``) — a
  non-homogeneous (diurnal) and optionally bursty Poisson arrival process: a
  sinusoidal daily cycle modulates the base rate, and a two-state
  Markov-modulated overlay multiplies it during exponentially-distributed
  burst episodes.  Job shapes are lognormal runtimes with the same
  parallelism model as above.

Both models reuse the paper's CPU-need and memory-requirement annotations
(:class:`~repro.workloads.cpu.CpuNeedModel`,
:class:`~repro.workloads.memory.MemoryRequirementModel`) so generated jobs
drop straight into every DFRS and batch scheduler.  All randomness comes
from one seeded :func:`numpy.random.default_rng`, drawn in a fixed order, so
a (seed, parameters) pair is a complete, reproducible description of the
trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterator, Tuple

import numpy as np

from ..core.cluster import Cluster
from ..core.job import JobSpec
from ..exceptions import ConfigurationError
from .source import JobSource, register_trace_source

if TYPE_CHECKING:  # imported lazily at runtime inside _annotation_models
    from ..workloads.cpu import CpuNeedModel
    from ..workloads.memory import MemoryRequirementModel

__all__ = ["DowneyTraceSource", "DiurnalPoissonTraceSource"]


def _sample_width(
    rng: np.random.Generator,
    num_nodes: int,
    serial_fraction: float,
    power_of_two_fraction: float,
) -> int:
    """Log-uniform parallelism over [1, num_nodes] with a serial spike."""
    if num_nodes <= 1 or rng.random() < serial_fraction:
        return 1
    log_size = rng.uniform(0.0, math.log2(num_nodes))
    if rng.random() < power_of_two_fraction:
        size = 2 ** int(round(log_size))
    else:
        size = int(round(2 ** log_size))
    return int(min(max(size, 1), num_nodes))


def _annotation_models(cluster: Cluster) -> Tuple["CpuNeedModel", "MemoryRequirementModel"]:
    """The paper's §IV-C CPU-need and memory models, built once per stream."""
    from ..workloads.cpu import CpuNeedModel
    from ..workloads.memory import MemoryRequirementModel

    return (
        CpuNeedModel(cores_per_node=cluster.cores_per_node),
        MemoryRequirementModel(),
    )


@dataclass(frozen=True)
class DowneyTraceSource(JobSource):
    """Feitelson/Downey-style log-uniform runtime + parallelism model."""

    num_jobs: int = 1000
    seed: int = 2010
    #: Mean gap of the homogeneous Poisson arrival process, in seconds.
    #: The defaults put a 128-node cluster near offered load 1; chain a
    #: ``rescale-load`` transform for an exact target.
    mean_interarrival_seconds: float = 900.0
    #: Bounds of the log-uniform runtime distribution, in seconds.
    min_runtime_seconds: float = 30.0
    max_runtime_seconds: float = 12 * 3600.0
    #: Fraction of single-task jobs.
    serial_fraction: float = 0.25
    #: Probability that a parallel width is rounded to a power of two.
    power_of_two_fraction: float = 0.6

    kind = "downey"

    def __post_init__(self) -> None:
        if self.num_jobs < 1:
            raise ConfigurationError(f"num_jobs must be >= 1, got {self.num_jobs}")
        if self.mean_interarrival_seconds <= 0:
            raise ConfigurationError("mean_interarrival_seconds must be > 0")
        if not (0 < self.min_runtime_seconds < self.max_runtime_seconds):
            raise ConfigurationError(
                "need 0 < min_runtime_seconds < max_runtime_seconds"
            )
        if not (0.0 <= self.serial_fraction <= 1.0):
            raise ConfigurationError("serial_fraction must be in [0, 1]")
        if not (0.0 <= self.power_of_two_fraction <= 1.0):
            raise ConfigurationError("power_of_two_fraction must be in [0, 1]")

    def jobs(self, cluster: Cluster) -> Iterator[JobSpec]:
        def _stream() -> Iterator[JobSpec]:
            rng = np.random.default_rng(self.seed)
            cpu_model, memory_model = _annotation_models(cluster)
            log_low = math.log(self.min_runtime_seconds)
            log_high = math.log(self.max_runtime_seconds)
            current_time = 0.0
            for job_id in range(self.num_jobs):
                current_time += float(
                    rng.exponential(self.mean_interarrival_seconds)
                )
                size = _sample_width(
                    rng,
                    cluster.num_nodes,
                    self.serial_fraction,
                    self.power_of_two_fraction,
                )
                runtime = math.exp(rng.uniform(log_low, log_high))
                cpu_need = cpu_model.cpu_need(size, rng)
                memory = memory_model.memory_requirement(rng)
                yield JobSpec(
                    job_id=job_id,
                    submit_time=current_time,
                    num_tasks=size,
                    cpu_need=cpu_need,
                    mem_requirement=memory,
                    execution_time=runtime,
                )

        return _stream()

    def default_name(self) -> str:
        return f"downey-seed{self.seed}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "num_jobs": self.num_jobs,
            "seed": self.seed,
            "mean_interarrival_seconds": self.mean_interarrival_seconds,
            "min_runtime_seconds": self.min_runtime_seconds,
            "max_runtime_seconds": self.max_runtime_seconds,
            "serial_fraction": self.serial_fraction,
            "power_of_two_fraction": self.power_of_two_fraction,
        }


@dataclass(frozen=True)
class DiurnalPoissonTraceSource(JobSource):
    """Diurnal + bursty (Markov-modulated) Poisson arrival process.

    The instantaneous arrival rate is::

        rate(t) = base_rate(t) * diurnal(t) * (burst_factor if bursting else 1)

    where ``diurnal(t)`` is a sinusoid dipping to ``1 - diurnal_depth`` at
    the quietest hour and peaking at 1 around ``peak_hour``, and the burst
    overlay is a two-state process with exponentially distributed episode
    durations.  Arrivals are drawn by thinning against the peak rate, which
    keeps the stream exact, ordered, and O(1) per job.
    """

    num_jobs: int = 1000
    seed: int = 2010
    #: Mean gap at the (non-burst) peak rate, in seconds.
    mean_interarrival_seconds: float = 360.0
    #: Relative depth of the daily trough: 0 = flat, 0.9 = nights nearly idle.
    diurnal_depth: float = 0.6
    #: Hour of peak submission activity.
    peak_hour: float = 14.0
    #: Arrival-rate multiplier during burst episodes (1 = no bursts).
    burst_factor: float = 3.0
    #: Mean duration of a burst episode, in seconds.
    mean_burst_seconds: float = 1800.0
    #: Mean gap between burst episodes, in seconds.
    mean_quiet_seconds: float = 4 * 3600.0
    #: Lognormal runtime model (log-seconds).
    runtime_log_mean: float = 7.0
    runtime_log_sigma: float = 1.4
    max_runtime_seconds: float = 2 * 24 * 3600.0
    serial_fraction: float = 0.4
    power_of_two_fraction: float = 0.6

    kind = "diurnal-poisson"

    def __post_init__(self) -> None:
        if self.num_jobs < 1:
            raise ConfigurationError(f"num_jobs must be >= 1, got {self.num_jobs}")
        if self.mean_interarrival_seconds <= 0:
            raise ConfigurationError("mean_interarrival_seconds must be > 0")
        if not (0.0 <= self.diurnal_depth < 1.0):
            raise ConfigurationError("diurnal_depth must be in [0, 1)")
        if self.burst_factor < 1.0:
            raise ConfigurationError("burst_factor must be >= 1")
        if self.mean_burst_seconds <= 0 or self.mean_quiet_seconds <= 0:
            raise ConfigurationError("burst/quiet durations must be > 0")
        if self.runtime_log_sigma < 0:
            raise ConfigurationError("runtime_log_sigma must be >= 0")
        if self.max_runtime_seconds <= 0:
            raise ConfigurationError("max_runtime_seconds must be > 0")
        if not (0.0 <= self.serial_fraction <= 1.0):
            raise ConfigurationError("serial_fraction must be in [0, 1]")
        if not (0.0 <= self.power_of_two_fraction <= 1.0):
            raise ConfigurationError("power_of_two_fraction must be in [0, 1]")

    def _intensity(self, time_seconds: float, bursting: bool) -> float:
        """Relative arrival intensity at ``time_seconds``, in (0, burst_factor]."""
        hour = (time_seconds / 3600.0) % 24.0
        phase = math.cos(2.0 * math.pi * (hour - self.peak_hour) / 24.0)
        diurnal = 1.0 - self.diurnal_depth * (1.0 - phase) / 2.0
        return diurnal * (self.burst_factor if bursting else 1.0)

    def jobs(self, cluster: Cluster) -> Iterator[JobSpec]:
        def _stream() -> Iterator[JobSpec]:
            rng = np.random.default_rng(self.seed)
            cpu_model, memory_model = _annotation_models(cluster)
            peak_rate = self.burst_factor / self.mean_interarrival_seconds
            current_time = 0.0
            bursting = False
            # Next instant at which the burst overlay flips state.
            flip_time = float(rng.exponential(self.mean_quiet_seconds))
            for job_id in range(self.num_jobs):
                # Thinning: candidate gaps at the peak rate, accepted with
                # probability rate(t)/peak_rate.
                while True:
                    current_time += float(rng.exponential(1.0 / peak_rate))
                    while current_time >= flip_time:
                        bursting = not bursting
                        mean = (
                            self.mean_burst_seconds
                            if bursting
                            else self.mean_quiet_seconds
                        )
                        flip_time += float(rng.exponential(mean))
                    accept = self._intensity(current_time, bursting) / self.burst_factor
                    if rng.random() < accept:
                        break
                size = _sample_width(
                    rng,
                    cluster.num_nodes,
                    self.serial_fraction,
                    self.power_of_two_fraction,
                )
                runtime = min(
                    self.max_runtime_seconds,
                    max(1.0, float(rng.lognormal(
                        self.runtime_log_mean, self.runtime_log_sigma
                    ))),
                )
                cpu_need = cpu_model.cpu_need(size, rng)
                memory = memory_model.memory_requirement(rng)
                yield JobSpec(
                    job_id=job_id,
                    submit_time=current_time,
                    num_tasks=size,
                    cpu_need=cpu_need,
                    mem_requirement=memory,
                    execution_time=runtime,
                )

        return _stream()

    def default_name(self) -> str:
        return f"diurnal-poisson-seed{self.seed}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "num_jobs": self.num_jobs,
            "seed": self.seed,
            "mean_interarrival_seconds": self.mean_interarrival_seconds,
            "diurnal_depth": self.diurnal_depth,
            "peak_hour": self.peak_hour,
            "burst_factor": self.burst_factor,
            "mean_burst_seconds": self.mean_burst_seconds,
            "mean_quiet_seconds": self.mean_quiet_seconds,
            "runtime_log_mean": self.runtime_log_mean,
            "runtime_log_sigma": self.runtime_log_sigma,
            "max_runtime_seconds": self.max_runtime_seconds,
            "serial_fraction": self.serial_fraction,
            "power_of_two_fraction": self.power_of_two_fraction,
        }


register_trace_source("downey", DowneyTraceSource)
register_trace_source("diurnal-poisson", DiurnalPoissonTraceSource)
