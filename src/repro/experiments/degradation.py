"""Degradation-factor aggregation across workload instances.

The paper's headline numbers are statistics of the *degradation factor*: for
each instance, every algorithm's maximum bounded stretch is divided by the
best maximum stretch achieved on that instance, and the resulting factors are
averaged (Figure 1), or summarised by average/standard deviation/maximum
(Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence

from ..core.metrics import DegradationStats, aggregate_degradation
from .runner import InstanceResult

__all__ = ["DegradationAggregate", "aggregate_instances"]


@dataclass
class DegradationAggregate:
    """Per-algorithm degradation factors collected over many instances."""

    factors: Dict[str, List[float]] = field(default_factory=dict)

    def add_instance(self, instance: InstanceResult) -> None:
        """Fold one instance's degradation factors into the aggregate."""
        for algorithm, factor in instance.degradation_factors().items():
            self.factors.setdefault(algorithm, []).append(factor)

    def algorithms(self) -> List[str]:
        return list(self.factors)

    def stats(self) -> Dict[str, DegradationStats]:
        """Average / std / max of the degradation factor per algorithm."""
        return {
            algorithm: aggregate_degradation(values)
            for algorithm, values in self.factors.items()
        }

    def averages(self) -> Dict[str, float]:
        """Average degradation factor per algorithm (Figure 1 ordinate)."""
        return {name: stat.average for name, stat in self.stats().items()}

    def best_algorithm(self) -> str:
        """Algorithm with the lowest average degradation factor."""
        averages = self.averages()
        if not averages:
            raise ValueError("no instances have been aggregated")
        return min(averages, key=averages.get)


def aggregate_instances(instances: Iterable[InstanceResult]) -> DegradationAggregate:
    """Build a :class:`DegradationAggregate` from finished instances."""
    aggregate = DegradationAggregate()
    for instance in instances:
        aggregate.add_instance(instance)
    return aggregate
