"""Experiment configuration shared by the CLI, the benchmarks, and the docs.

The paper's full campaign (100 traces × 1,000 jobs × 9 load levels × 9
algorithms × 2 penalty settings, plus 182 HPC2N weeks) takes CPU-days; the
defaults here are deliberately small so that the whole benchmark suite runs
in minutes on a laptop, while :func:`paper_scale` returns the full-size
configuration for users who want to spend the time.  The reproduced claims
are about *relative* behaviour (who wins, by how much, where crossovers
fall), which is already visible at reduced scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from ..core.cluster import Cluster
from ..exceptions import ConfigurationError
from ..schedulers.registry import PAPER_ALGORITHMS

__all__ = ["ExperimentConfig", "quick_scale", "default_scale", "paper_scale"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale and content of a reproduction campaign."""

    #: Cluster simulated for the synthetic (Lublin) experiments.
    cluster: Cluster = field(default_factory=lambda: Cluster(128, 4, 8.0))
    #: Number of independent synthetic traces per load level.
    num_traces: int = 3
    #: Number of jobs per synthetic trace.
    num_jobs: int = 150
    #: Offered-load levels for the scaled-trace experiments (Figure 1).
    load_levels: Tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9)
    #: Algorithms to evaluate, by registry name.
    algorithms: Tuple[str, ...] = tuple(PAPER_ALGORITHMS)
    #: Rescheduling penalty in seconds (0 or 300 in the paper).
    penalty_seconds: float = 300.0
    #: Base random seed; trace ``i`` uses ``seed_base + i``.
    seed_base: int = 2010
    #: Number of 1-week HPC2N-like segments for the real-world column.
    hpc2n_weeks: int = 2
    #: Jobs per HPC2N-like week (the real trace averages ~1,100).
    hpc2n_jobs_per_week: int = 400
    #: Worker processes for instance x algorithm fan-out (1 = serial,
    #: 0 or negative = one worker per CPU); results are identical either way.
    workers: int = 1

    def __post_init__(self) -> None:
        if self.num_traces < 1:
            raise ConfigurationError("num_traces must be >= 1")
        if self.num_jobs < 2:
            raise ConfigurationError("num_jobs must be >= 2")
        if not self.load_levels:
            raise ConfigurationError("load_levels must not be empty")
        for level in self.load_levels:
            if not (0.0 < level):
                raise ConfigurationError(f"invalid load level {level}")
        if not self.algorithms:
            raise ConfigurationError("algorithms must not be empty")
        if self.penalty_seconds < 0:
            raise ConfigurationError("penalty_seconds must be >= 0")
        if self.hpc2n_weeks < 1:
            raise ConfigurationError("hpc2n_weeks must be >= 1")
        if self.hpc2n_jobs_per_week < 2:
            raise ConfigurationError("hpc2n_jobs_per_week must be >= 2")

    def with_penalty(self, penalty_seconds: float) -> "ExperimentConfig":
        """Copy of this configuration with a different rescheduling penalty."""
        return replace(self, penalty_seconds=penalty_seconds)

    def with_algorithms(self, algorithms: Sequence[str]) -> "ExperimentConfig":
        """Copy of this configuration evaluating a different algorithm set."""
        return replace(self, algorithms=tuple(algorithms))


def quick_scale() -> ExperimentConfig:
    """Tiny configuration used by CI-style smoke tests (< 1 minute)."""
    return ExperimentConfig(
        cluster=Cluster(32, 4, 8.0),
        num_traces=2,
        num_jobs=60,
        load_levels=(0.3, 0.7),
        hpc2n_weeks=1,
        hpc2n_jobs_per_week=80,
    )


def default_scale() -> ExperimentConfig:
    """Default laptop-scale configuration used by the benchmark harness."""
    return ExperimentConfig()


def paper_scale() -> ExperimentConfig:
    """The full experimental campaign of the paper (very long running)."""
    return ExperimentConfig(
        cluster=Cluster(128, 4, 8.0),
        num_traces=100,
        num_jobs=1000,
        load_levels=tuple(round(0.1 * i, 1) for i in range(1, 10)),
        hpc2n_weeks=182,
        hpc2n_jobs_per_week=1100,
    )
