"""Parallel experiment execution over a :mod:`multiprocessing` pool.

An experimental campaign is an embarrassingly parallel grid: *instances ×
algorithms* independent simulations (every simulation is deterministic given
its workload and algorithm name, so parallel results are identical to serial
ones).  This module fans that grid out over worker processes:

* :func:`run_instances` — simulate many workloads under many algorithms; the
  unit of parallelism is one ``(workload, algorithm)`` cell, so a single
  slow algorithm does not serialise the whole campaign;
* :func:`generate_instances` — generate the seeded synthetic traces of a
  campaign in parallel (trace ``i`` always uses ``seed_base + i``, so the
  worker that happens to build it is irrelevant to the result).

Workers are seeded deterministically per *task*, never per worker process:
all randomness lives in the workload generators, which take an explicit seed
derived from the experiment configuration.  Nothing reads global RNG state,
which is what makes ``workers=N`` bit-for-bit equal to ``workers=1``.

``workers=1`` (the default everywhere) bypasses the pool entirely and runs
in-process, which keeps unit tests fast and stack traces simple.  ``workers
<= 0`` means "one worker per CPU".
"""

from __future__ import annotations

import logging
import multiprocessing
import os
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..core.engine import SimulationConfig
from ..core.records import SimulationResult
from ..workloads.lublin import LublinWorkloadGenerator
from ..workloads.model import Workload
from ..workloads.scaling import scale_to_load
from .config import ExperimentConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .runner import InstanceResult

__all__ = ["resolve_workers", "map_tasks", "run_instances", "generate_instances"]

_LOGGER = logging.getLogger(__name__)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker-count request: ``None``/``1`` serial, ``<=0`` all CPUs."""
    if workers is None:
        return 1
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


def _pool(workers: int):
    # fork keeps the warm interpreter (and is the only start method that
    # does not require the callables to be importable from __main__ on
    # every platform); fall back to the default context where missing.
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    return context.Pool(processes=workers)


def map_tasks(fn, tasks: Sequence, *, workers: Optional[int] = None) -> List:
    """Map a picklable, deterministic function over tasks, possibly in parallel.

    The generic fan-out primitive under every campaign: results come back in
    task order, and ``workers=1`` (or a single task) degenerates to an
    in-process loop with simple stack traces.  ``fn`` must be importable at
    module level (pool workers pickle it by reference).
    """
    workers = resolve_workers(workers)
    if workers == 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    _LOGGER.debug("running %d tasks on %d workers", len(tasks), workers)
    with _pool(workers) as pool:
        return pool.map(fn, tasks, chunksize=1)


# -- simulation fan-out -------------------------------------------------------

def _run_cell(
    task: Tuple[Workload, str, float, Optional[SimulationConfig]]
) -> SimulationResult:
    workload, algorithm, penalty_seconds, simulation_config = task
    # Imported lazily so worker start-up does not re-enter this module's
    # import of runner (runner imports us for the serial fallback).
    from .runner import run_algorithm

    return run_algorithm(
        workload,
        algorithm,
        penalty_seconds=penalty_seconds,
        simulation_config=simulation_config,
    )


def run_instances(
    workloads: Sequence[Workload],
    algorithms: Sequence[str],
    *,
    penalty_seconds: float = 0.0,
    simulation_config: Optional[SimulationConfig] = None,
    workers: Optional[int] = None,
) -> List["InstanceResult"]:
    """Simulate every workload under every algorithm, possibly in parallel.

    Returns one :class:`~repro.experiments.runner.InstanceResult` per
    workload, in workload order, with per-algorithm results in ``algorithms``
    order — exactly what a serial loop of
    :func:`~repro.experiments.runner.run_instance` produces.
    """
    from .runner import InstanceResult, run_instance

    workers = resolve_workers(workers)
    if workers == 1 or len(workloads) * len(algorithms) <= 1:
        return [
            run_instance(
                workload,
                algorithms,
                penalty_seconds=penalty_seconds,
                simulation_config=simulation_config,
            )
            for workload in workloads
        ]

    tasks = [
        (workload, algorithm, penalty_seconds, simulation_config)
        for workload in workloads
        for algorithm in algorithms
    ]
    _LOGGER.debug(
        "running %d simulations (%d instances x %d algorithms) on %d workers",
        len(tasks), len(workloads), len(algorithms), workers,
    )
    flat = map_tasks(_run_cell, tasks, workers=workers)

    outcomes: List[InstanceResult] = []
    cursor = iter(flat)
    for workload in workloads:
        instance = InstanceResult(workload_name=workload.name)
        for algorithm in algorithms:
            instance.results[algorithm] = next(cursor)
        outcomes.append(instance)
    return outcomes


# -- workload-generation fan-out ----------------------------------------------

def _generate_one(task: Tuple[ExperimentConfig, int, Optional[float]]) -> Workload:
    """Generate trace ``index`` of a campaign — the single source of the
    seeding/naming scheme; the serial :func:`~repro.experiments.runner.
    generate_synthetic_instances` delegates here too, so ``workers=N``
    cannot drift from the serial traces."""
    config, index, load = task
    generator = LublinWorkloadGenerator(config.cluster)
    workload = generator.generate(
        config.num_jobs,
        seed=config.seed_base + index,
        name=f"lublin-{index:03d}",
    )
    if load is not None:
        workload = scale_to_load(workload, load)
    return workload


def generate_instances(
    config: ExperimentConfig,
    *,
    load: Optional[float] = None,
    workers: Optional[int] = None,
) -> List[Workload]:
    """Parallel equivalent of :func:`~repro.experiments.runner.
    generate_synthetic_instances` (same traces, same order)."""
    tasks = [(config, index, load) for index in range(config.num_traces)]
    return map_tasks(_generate_one, tasks, workers=workers)
