"""Scheduling-decision timing study (paper §V, last paragraph).

The paper instruments DYNMCB8 on the unscaled synthetic traces and reports
that allocations for 10 or fewer jobs are computed in under a millisecond for
two thirds of the events, with a mean around 0.25 s and a maximum under
4.5 s — orders of magnitude below typical job inter-arrival times, hence the
feasibility claim.  This module reproduces those statistics on the local
machine (absolute numbers depend on the host; the claim is about the shape).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .config import ExperimentConfig
from .reporting import format_table
from .runner import generate_synthetic_instances, run_algorithm

__all__ = ["TimingResult", "run_timing_study"]


@dataclass
class TimingResult:
    """Statistics of per-event scheduling computation time."""

    algorithm: str
    num_observations: int
    mean_seconds: float
    max_seconds: float
    #: Fraction of small events (<= ``small_job_threshold`` jobs) faster than
    #: ``fast_threshold_seconds``.
    small_event_fast_fraction: float
    small_job_threshold: int
    fast_threshold_seconds: float
    mean_interarrival_seconds: float

    def format(self) -> str:
        rows = [
            ["observations", self.num_observations],
            ["mean scheduling time (s)", self.mean_seconds],
            ["max scheduling time (s)", self.max_seconds],
            [
                f"fraction of <= {self.small_job_threshold}-job events under "
                f"{self.fast_threshold_seconds * 1000:.0f} ms",
                self.small_event_fast_fraction,
            ],
            ["mean job inter-arrival time (s)", self.mean_interarrival_seconds],
        ]
        return format_table(
            ["statistic", "value"],
            rows,
            title=f"Scheduling-time study for {self.algorithm} (§V)",
            float_format="{:.4f}",
        )


def run_timing_study(
    config: ExperimentConfig,
    *,
    algorithm: str = "dynmcb8",
    small_job_threshold: int = 10,
    fast_threshold_seconds: float = 0.001,
) -> TimingResult:
    """Measure scheduling computation time on the unscaled synthetic traces."""
    times: List[float] = []
    counts: List[int] = []
    interarrivals: List[float] = []
    for workload in generate_synthetic_instances(config, load=None):
        result = run_algorithm(workload, algorithm, penalty_seconds=0.0)
        times.extend(result.scheduler_times)
        counts.extend(result.scheduler_job_counts)
        submits = sorted(spec.submit_time for spec in workload.jobs)
        interarrivals.extend(np.diff(submits).tolist())

    times_array = np.asarray(times, dtype=float)
    counts_array = np.asarray(counts, dtype=int)
    small_mask = counts_array <= small_job_threshold
    if small_mask.any():
        fast_fraction = float(
            np.mean(times_array[small_mask] <= fast_threshold_seconds)
        )
    else:
        fast_fraction = 0.0
    return TimingResult(
        algorithm=algorithm,
        num_observations=int(times_array.size),
        mean_seconds=float(times_array.mean()) if times_array.size else 0.0,
        max_seconds=float(times_array.max()) if times_array.size else 0.0,
        small_event_fast_fraction=fast_fraction,
        small_job_threshold=small_job_threshold,
        fast_threshold_seconds=fast_threshold_seconds,
        mean_interarrival_seconds=(
            float(np.mean(interarrivals)) if interarrivals else 0.0
        ),
    )
