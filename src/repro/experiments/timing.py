"""Scheduling-decision timing study (paper §V, last paragraph).

The paper instruments DYNMCB8 on the unscaled synthetic traces and reports
that allocations for 10 or fewer jobs are computed in under a millisecond for
two thirds of the events, with a mean around 0.25 s and a maximum under
4.5 s — orders of magnitude below typical job inter-arrival times, hence the
feasibility claim.  This module reproduces those statistics on the local
machine (absolute numbers depend on the host; the claim is about the shape).

The driver is a thin builder over :mod:`repro.campaign`: the ``timing``
metric collector ships the raw per-event scheduler timings and inter-arrival
gaps back as row metrics, which this module pools into the §V statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..campaign.executor import Campaign
from ..campaign.result import CampaignResult
from ..campaign.studies import timing_scenario
from .config import ExperimentConfig
from .reporting import format_table

__all__ = ["TimingResult", "run_timing_study"]


@dataclass
class TimingResult:
    """Statistics of per-event scheduling computation time."""

    algorithm: str
    num_observations: int
    mean_seconds: float
    max_seconds: float
    #: Fraction of small events (<= ``small_job_threshold`` jobs) faster than
    #: ``fast_threshold_seconds``.
    small_event_fast_fraction: float
    small_job_threshold: int
    fast_threshold_seconds: float
    mean_interarrival_seconds: float
    #: Campaigns behind this artifact (for ``--export-dir`` persistence).
    campaigns: List[CampaignResult] = field(
        default_factory=list, repr=False, compare=False
    )

    def format(self) -> str:
        rows = [
            ["observations", self.num_observations],
            ["mean scheduling time (s)", self.mean_seconds],
            ["max scheduling time (s)", self.max_seconds],
            [
                f"fraction of <= {self.small_job_threshold}-job events under "
                f"{self.fast_threshold_seconds * 1000:.0f} ms",
                self.small_event_fast_fraction,
            ],
            ["mean job inter-arrival time (s)", self.mean_interarrival_seconds],
        ]
        return format_table(
            ["statistic", "value"],
            rows,
            title=f"Scheduling-time study for {self.algorithm} (§V)",
            float_format="{:.4f}",
        )


def run_timing_study(
    config: ExperimentConfig,
    *,
    algorithm: str = "dynmcb8",
    small_job_threshold: int = 10,
    fast_threshold_seconds: float = 0.001,
    campaign: Optional[Campaign] = None,
) -> TimingResult:
    """Measure scheduling computation time on the unscaled synthetic traces.

    Runs are always serial: the reported statistics are wall-clock
    measurements, and fanning them out over a pool would inflate them with
    core contention.  (For the same reason, a cache replays the timings of
    the host that originally ran the scenario.)
    """
    cache_dir = campaign.cache_dir if campaign is not None else None
    campaign = Campaign(workers=1, cache_dir=cache_dir)
    outcome = campaign.run(timing_scenario(config, algorithm=algorithm))

    times: List[float] = []
    counts: List[int] = []
    interarrivals: List[float] = []
    for row in outcome.rows:
        times.extend(row.metric("scheduler_times"))
        counts.extend(row.metric("scheduler_job_counts"))
        interarrivals.extend(row.metric("interarrivals"))

    times_array = np.asarray(times, dtype=float)
    counts_array = np.asarray(counts, dtype=int)
    small_mask = counts_array <= small_job_threshold
    if small_mask.any():
        fast_fraction = float(
            np.mean(times_array[small_mask] <= fast_threshold_seconds)
        )
    else:
        fast_fraction = 0.0
    return TimingResult(
        algorithm=algorithm,
        num_observations=int(times_array.size),
        mean_seconds=float(times_array.mean()) if times_array.size else 0.0,
        max_seconds=float(times_array.max()) if times_array.size else 0.0,
        small_event_fast_fraction=fast_fraction,
        small_job_threshold=small_job_threshold,
        fast_threshold_seconds=fast_threshold_seconds,
        mean_interarrival_seconds=(
            float(np.mean(interarrivals)) if interarrivals else 0.0
        ),
        campaigns=[outcome],
    )
