"""Figure 1 reproduction: average degradation factor vs. offered load.

Figure 1(a) uses no rescheduling penalty; Figure 1(b) charges the 5-minute
penalty.  Each data point of the paper is the average, over 100 instances, of
the per-instance degradation factor at one load level; the reproduction runs
the same sweep at a configurable scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from .config import ExperimentConfig
from .degradation import DegradationAggregate, aggregate_instances
from .reporting import format_figure_series
from .parallel import generate_instances
from .runner import run_instances

__all__ = ["Figure1Result", "run_figure1"]


@dataclass
class Figure1Result:
    """Average degradation factor per algorithm and load level."""

    penalty_seconds: float
    #: load level -> algorithm -> average degradation factor
    points: Dict[float, Dict[str, float]] = field(default_factory=dict)

    def series(self) -> Dict[str, Dict[float, float]]:
        """Transpose to {algorithm -> {load -> average degradation factor}}."""
        output: Dict[str, Dict[float, float]] = {}
        for load, values in self.points.items():
            for algorithm, average in values.items():
                output.setdefault(algorithm, {})[load] = average
        return output

    def format(self) -> str:
        label = (
            "no rescheduling penalty"
            if self.penalty_seconds == 0
            else f"{self.penalty_seconds:.0f}-second rescheduling penalty"
        )
        return format_figure_series(
            self.series(),
            title=(
                "Figure 1: average stretch degradation factor vs. load "
                f"({label})"
            ),
        )


def run_figure1(
    config: ExperimentConfig,
    *,
    penalty_seconds: Optional[float] = None,
) -> Figure1Result:
    """Run the Figure 1 sweep at the configured scale."""
    penalty = config.penalty_seconds if penalty_seconds is None else penalty_seconds
    result = Figure1Result(penalty_seconds=penalty)
    for load in config.load_levels:
        instances = generate_instances(config, load=load, workers=config.workers)
        outcomes = run_instances(
            instances,
            config.algorithms,
            penalty_seconds=penalty,
            workers=config.workers,
        )
        aggregate = aggregate_instances(outcomes)
        result.points[load] = aggregate.averages()
    return result
