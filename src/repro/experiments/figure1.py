"""Figure 1 reproduction: average degradation factor vs. offered load.

Figure 1(a) uses no rescheduling penalty; Figure 1(b) charges the 5-minute
penalty.  Each data point of the paper is the average, over 100 instances, of
the per-instance degradation factor at one load level; the reproduction runs
the same sweep at a configurable scale.

The driver is a thin builder over :mod:`repro.campaign`: it runs the
``figure1`` scenario (synthetic traces × load axis) and reads the averages
off the campaign rows.  Results are byte-identical to the pre-campaign
implementation (see ``tests/experiments/test_golden_outputs.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..campaign.executor import Campaign
from ..campaign.result import CampaignResult
from ..campaign.studies import figure1_scenario
from .config import ExperimentConfig
from .reporting import format_figure_series

__all__ = ["Figure1Result", "run_figure1"]


@dataclass
class Figure1Result:
    """Average degradation factor per algorithm and load level."""

    penalty_seconds: float
    #: load level -> algorithm -> average degradation factor
    points: Dict[float, Dict[str, float]] = field(default_factory=dict)
    #: Campaigns behind this artifact (for ``--export-dir`` persistence).
    campaigns: List[CampaignResult] = field(
        default_factory=list, repr=False, compare=False
    )

    def series(self) -> Dict[str, Dict[float, float]]:
        """Transpose to {algorithm -> {load -> average degradation factor}}."""
        output: Dict[str, Dict[float, float]] = {}
        for load, values in self.points.items():
            for algorithm, average in values.items():
                output.setdefault(algorithm, {})[load] = average
        return output

    def format(self) -> str:
        label = (
            "no rescheduling penalty"
            if self.penalty_seconds == 0
            else f"{self.penalty_seconds:.0f}-second rescheduling penalty"
        )
        return format_figure_series(
            self.series(),
            title=(
                "Figure 1: average stretch degradation factor vs. load "
                f"({label})"
            ),
        )


def run_figure1(
    config: ExperimentConfig,
    *,
    penalty_seconds: Optional[float] = None,
    campaign: Optional[Campaign] = None,
) -> Figure1Result:
    """Run the Figure 1 sweep at the configured scale."""
    penalty = config.penalty_seconds if penalty_seconds is None else penalty_seconds
    campaign = campaign or Campaign(workers=config.workers)
    outcome = campaign.run(figure1_scenario(config, penalty_seconds=penalty))
    result = Figure1Result(penalty_seconds=penalty, campaigns=[outcome])
    for load in config.load_levels:
        result.points[load] = outcome.degradation_averages(load=load)
    return result
