"""Cluster utilization, energy, and fairness study (paper §II-B2 remark).

The paper notes that once the minimum yield is maximized, leftover capacity
either raises the average yield or — on an under-subscribed cluster — lets
idle nodes be powered down.  This experiment quantifies both effects for any
set of algorithms on one synthetic trace per configuration.

The driver is a thin builder over :mod:`repro.campaign`: the ``utilization``
metric collector attaches a
:class:`~repro.core.observers.UtilizationRecorder` inside each worker and
ships back the busy-node/energy/fairness metrics, from which the typed
:class:`~repro.analysis.energy.EnergyReport` and
:class:`~repro.analysis.fairness.FairnessReport` are reconstructed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis.energy import EnergyReport, NodePowerModel
from ..analysis.fairness import FairnessReport
from ..campaign.executor import Campaign
from ..campaign.result import CampaignResult
from ..campaign.studies import utilization_scenario
from ..exceptions import ConfigurationError
from .config import ExperimentConfig
from .reporting import format_table

__all__ = ["AlgorithmUtilization", "UtilizationStudyResult", "run_utilization_study"]


@dataclass(frozen=True)
class AlgorithmUtilization:
    """Utilization profile of one algorithm on one workload."""

    algorithm: str
    max_stretch: float
    mean_busy_nodes: float
    peak_busy_nodes: int
    mean_cpu_allocated: float
    energy: EnergyReport
    fairness: FairnessReport


@dataclass
class UtilizationStudyResult:
    """Outcome of the utilization/energy study."""

    load: float
    penalty_seconds: float
    num_nodes: int
    profiles: List[AlgorithmUtilization] = field(default_factory=list)
    #: Campaigns behind this artifact (for ``--export-dir`` persistence).
    campaigns: List[CampaignResult] = field(
        default_factory=list, repr=False, compare=False
    )

    def profile_for(self, algorithm: str) -> AlgorithmUtilization:
        for profile in self.profiles:
            if profile.algorithm == algorithm:
                return profile
        raise ConfigurationError(f"no profile recorded for algorithm {algorithm!r}")

    def format(self) -> str:
        rows = [
            [
                profile.algorithm,
                profile.max_stretch,
                profile.mean_busy_nodes,
                profile.peak_busy_nodes,
                profile.mean_cpu_allocated,
                f"{100.0 * profile.energy.savings_fraction:.1f}%",
                profile.fairness.jain_stretch,
            ]
            for profile in self.profiles
        ]
        return format_table(
            [
                "algorithm",
                "max stretch",
                "mean busy nodes",
                "peak busy nodes",
                "mean CPU alloc",
                "idle power-down savings",
                "Jain(stretch)",
            ],
            rows,
            title=(
                f"Utilization and energy study ({self.num_nodes} nodes, load "
                f"{self.load:g}, {self.penalty_seconds:.0f}-second penalty)"
            ),
        )


def _profile_from_metrics(algorithm: str, metrics: Dict) -> AlgorithmUtilization:
    """Rebuild the typed utilization profile from campaign row metrics."""
    energy = EnergyReport(
        algorithm=algorithm,
        duration_seconds=metrics["energy_duration_seconds"],
        busy_node_seconds=metrics["energy_busy_node_seconds"],
        idle_node_seconds=metrics["energy_idle_node_seconds"],
        always_on_joules=metrics["energy_always_on_joules"],
        power_down_joules=metrics["energy_power_down_joules"],
    )
    fairness = FairnessReport(
        algorithm=algorithm,
        num_jobs=int(metrics["num_jobs"]),
        max_stretch=metrics["max_stretch"],
        mean_stretch=metrics["mean_stretch"],
        jain_stretch=metrics["jain_stretch"],
        gini_stretch=metrics["gini_stretch"],
        p95_stretch=metrics["p95_stretch"],
    )
    return AlgorithmUtilization(
        algorithm=algorithm,
        max_stretch=metrics["max_stretch"],
        mean_busy_nodes=metrics["mean_busy_nodes"],
        peak_busy_nodes=int(metrics["peak_busy_nodes"]),
        mean_cpu_allocated=metrics["mean_cpu_allocated"],
        energy=energy,
        fairness=fairness,
    )


def run_utilization_study(
    config: ExperimentConfig,
    *,
    load: float = 0.5,
    penalty_seconds: Optional[float] = None,
    algorithms: Optional[Sequence[str]] = None,
    power_model: Optional[NodePowerModel] = None,
    campaign: Optional[Campaign] = None,
) -> UtilizationStudyResult:
    """Profile utilization, energy, and fairness for each algorithm.

    One synthetic trace (the first of the configuration) is scaled to the
    requested load and run under every algorithm with a utilization recorder
    attached.
    """
    penalty = config.penalty_seconds if penalty_seconds is None else penalty_seconds
    names = tuple(algorithms) if algorithms is not None else config.algorithms
    power_options = None
    if power_model is not None:
        power_options = {
            "busy_watts": power_model.busy_watts,
            "idle_watts": power_model.idle_watts,
            "off_watts": power_model.off_watts,
        }
    scenario = utilization_scenario(
        config,
        load=load,
        penalty_seconds=penalty,
        algorithms=names,
        power_options=power_options,
    )
    campaign = campaign or Campaign(workers=config.workers)
    outcome = campaign.run(scenario)

    study = UtilizationStudyResult(
        load=load,
        penalty_seconds=penalty,
        num_nodes=config.cluster.num_nodes,
        campaigns=[outcome],
    )
    for name in names:
        row = outcome.select(algorithm=name)[0]
        study.profiles.append(_profile_from_metrics(name, dict(row.metrics)))
    return study
