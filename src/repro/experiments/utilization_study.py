"""Cluster utilization, energy, and fairness study (paper §II-B2 remark).

The paper notes that once the minimum yield is maximized, leftover capacity
either raises the average yield or — on an under-subscribed cluster — lets
idle nodes be powered down.  This experiment quantifies both effects for any
set of algorithms on one synthetic trace per configuration: it runs each
algorithm with a :class:`~repro.core.observers.UtilizationRecorder` attached
and reports time-weighted busy-node counts, energy consumption under a node
power model, and per-job stretch fairness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis.energy import EnergyReport, NodePowerModel, energy_from_recorder
from ..analysis.fairness import FairnessReport, stretch_fairness
from ..analysis.timeseries import busy_nodes_series, cpu_allocated_series
from ..core.engine import SimulationConfig, Simulator
from ..core.observers import UtilizationRecorder
from ..core.penalties import ReschedulingPenaltyModel
from ..core.records import SimulationResult
from ..exceptions import ConfigurationError
from ..schedulers.registry import create_scheduler
from ..workloads.model import Workload
from .config import ExperimentConfig
from .reporting import format_table
from .runner import generate_synthetic_instances

__all__ = ["AlgorithmUtilization", "UtilizationStudyResult", "run_utilization_study"]


@dataclass(frozen=True)
class AlgorithmUtilization:
    """Utilization profile of one algorithm on one workload."""

    algorithm: str
    max_stretch: float
    mean_busy_nodes: float
    peak_busy_nodes: int
    mean_cpu_allocated: float
    energy: EnergyReport
    fairness: FairnessReport


@dataclass
class UtilizationStudyResult:
    """Outcome of the utilization/energy study."""

    load: float
    penalty_seconds: float
    num_nodes: int
    profiles: List[AlgorithmUtilization] = field(default_factory=list)

    def profile_for(self, algorithm: str) -> AlgorithmUtilization:
        for profile in self.profiles:
            if profile.algorithm == algorithm:
                return profile
        raise ConfigurationError(f"no profile recorded for algorithm {algorithm!r}")

    def format(self) -> str:
        rows = [
            [
                profile.algorithm,
                profile.max_stretch,
                profile.mean_busy_nodes,
                profile.peak_busy_nodes,
                profile.mean_cpu_allocated,
                f"{100.0 * profile.energy.savings_fraction:.1f}%",
                profile.fairness.jain_stretch,
            ]
            for profile in self.profiles
        ]
        return format_table(
            [
                "algorithm",
                "max stretch",
                "mean busy nodes",
                "peak busy nodes",
                "mean CPU alloc",
                "idle power-down savings",
                "Jain(stretch)",
            ],
            rows,
            title=(
                f"Utilization and energy study ({self.num_nodes} nodes, load "
                f"{self.load:g}, {self.penalty_seconds:.0f}-second penalty)"
            ),
        )


def _run_with_recorder(
    workload: Workload, algorithm: str, penalty_seconds: float
) -> tuple:
    recorder = UtilizationRecorder()
    simulator = Simulator(
        workload.cluster,
        create_scheduler(algorithm),
        SimulationConfig(penalty_model=ReschedulingPenaltyModel(penalty_seconds)),
        observers=[recorder],
    )
    result = simulator.run(workload.jobs)
    return result, recorder


def run_utilization_study(
    config: ExperimentConfig,
    *,
    load: float = 0.5,
    penalty_seconds: Optional[float] = None,
    algorithms: Optional[Sequence[str]] = None,
    power_model: Optional[NodePowerModel] = None,
) -> UtilizationStudyResult:
    """Profile utilization, energy, and fairness for each algorithm.

    One synthetic trace (the first of the configuration) is scaled to the
    requested load and run under every algorithm with a utilization recorder
    attached.
    """
    penalty = config.penalty_seconds if penalty_seconds is None else penalty_seconds
    names = tuple(algorithms) if algorithms is not None else config.algorithms
    if not names:
        raise ConfigurationError("algorithms must not be empty")
    model = power_model or NodePowerModel()
    workload = generate_synthetic_instances(config, load=load)[0]

    study = UtilizationStudyResult(
        load=load, penalty_seconds=penalty, num_nodes=workload.cluster.num_nodes
    )
    for name in names:
        result, recorder = _run_with_recorder(workload, name, penalty)
        busy = busy_nodes_series(recorder)
        cpu = cpu_allocated_series(recorder)
        study.profiles.append(
            AlgorithmUtilization(
                algorithm=name,
                max_stretch=result.max_stretch,
                mean_busy_nodes=busy.mean(),
                peak_busy_nodes=int(busy.max()),
                mean_cpu_allocated=cpu.mean(),
                energy=energy_from_recorder(
                    recorder, workload.cluster, algorithm=name, model=model
                ),
                fairness=stretch_fairness(result),
            )
        )
    return study
