"""Table I reproduction: degradation statistics on three workload families.

Table I of the paper reports, for each algorithm and a 5-minute rescheduling
penalty, the average, standard deviation, and maximum degradation factor on:

* the scaled synthetic traces (all load levels pooled together),
* the unscaled synthetic traces straight out of the Lublin model,
* the real-world HPC2N workload split into 1-week segments (reproduced here
  with the HPC2N-like synthetic stand-in, see DESIGN.md).

The driver is a thin builder over :mod:`repro.campaign`: one scenario per
workload family (see :func:`repro.campaign.studies.table1_scenarios`), with
the column statistics pooled from the campaign rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..campaign.executor import Campaign
from ..campaign.result import CampaignResult
from ..campaign.studies import table1_scenarios
from ..core.metrics import DegradationStats
from .config import ExperimentConfig
from .reporting import format_table

__all__ = ["Table1Result", "run_table1"]

_COLUMNS = ("scaled", "unscaled", "real")


@dataclass
class Table1Result:
    """Degradation statistics per algorithm for the three workload families."""

    penalty_seconds: float
    #: column name ("scaled" | "unscaled" | "real") -> algorithm -> stats
    columns: Dict[str, Dict[str, DegradationStats]] = field(default_factory=dict)
    #: Campaigns behind this artifact (for ``--export-dir`` persistence).
    campaigns: List[CampaignResult] = field(
        default_factory=list, repr=False, compare=False
    )

    def format(self) -> str:
        algorithms: List[str] = []
        for column in _COLUMNS:
            for algorithm in self.columns.get(column, {}):
                if algorithm not in algorithms:
                    algorithms.append(algorithm)
        headers = ["algorithm"]
        for column in _COLUMNS:
            headers += [f"{column}.avg", f"{column}.std", f"{column}.max"]
        rows = []
        for algorithm in algorithms:
            row: List[object] = [algorithm]
            for column in _COLUMNS:
                stats = self.columns.get(column, {}).get(algorithm)
                if stats is None:
                    row += ["-", "-", "-"]
                else:
                    row += [stats.average, stats.std, stats.maximum]
            rows.append(row)
        return format_table(
            headers,
            rows,
            title=(
                "Table I: degradation factor (avg/std/max), "
                f"{self.penalty_seconds:.0f}-second rescheduling penalty"
            ),
        )


def run_table1(
    config: ExperimentConfig,
    *,
    penalty_seconds: Optional[float] = None,
    campaign: Optional[Campaign] = None,
) -> Table1Result:
    """Run the Table I campaign at the configured scale."""
    penalty = config.penalty_seconds if penalty_seconds is None else penalty_seconds
    campaign = campaign or Campaign(workers=config.workers)
    result = Table1Result(penalty_seconds=penalty)
    for column, scenario in table1_scenarios(
        config, penalty_seconds=penalty
    ).items():
        outcome = campaign.run(scenario)
        result.columns[column] = outcome.degradation_stats()
        result.campaigns.append(outcome)
    return result
