"""Table I reproduction: degradation statistics on three workload families.

Table I of the paper reports, for each algorithm and a 5-minute rescheduling
penalty, the average, standard deviation, and maximum degradation factor on:

* the scaled synthetic traces (all load levels pooled together),
* the unscaled synthetic traces straight out of the Lublin model,
* the real-world HPC2N workload split into 1-week segments (reproduced here
  with the HPC2N-like synthetic stand-in, see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.metrics import DegradationStats
from ..workloads.hpc2n import Hpc2nLikeTraceGenerator
from .config import ExperimentConfig
from .degradation import aggregate_instances
from .reporting import format_table
from .parallel import generate_instances
from .runner import run_instances

__all__ = ["Table1Result", "run_table1"]

_COLUMNS = ("scaled", "unscaled", "real")


@dataclass
class Table1Result:
    """Degradation statistics per algorithm for the three workload families."""

    penalty_seconds: float
    #: column name ("scaled" | "unscaled" | "real") -> algorithm -> stats
    columns: Dict[str, Dict[str, DegradationStats]] = field(default_factory=dict)

    def format(self) -> str:
        algorithms: List[str] = []
        for column in _COLUMNS:
            for algorithm in self.columns.get(column, {}):
                if algorithm not in algorithms:
                    algorithms.append(algorithm)
        headers = ["algorithm"]
        for column in _COLUMNS:
            headers += [f"{column}.avg", f"{column}.std", f"{column}.max"]
        rows = []
        for algorithm in algorithms:
            row: List[object] = [algorithm]
            for column in _COLUMNS:
                stats = self.columns.get(column, {}).get(algorithm)
                if stats is None:
                    row += ["-", "-", "-"]
                else:
                    row += [stats.average, stats.std, stats.maximum]
            rows.append(row)
        return format_table(
            headers,
            rows,
            title=(
                "Table I: degradation factor (avg/std/max), "
                f"{self.penalty_seconds:.0f}-second rescheduling penalty"
            ),
        )


def run_table1(
    config: ExperimentConfig, *, penalty_seconds: Optional[float] = None
) -> Table1Result:
    """Run the Table I campaign at the configured scale."""
    penalty = config.penalty_seconds if penalty_seconds is None else penalty_seconds
    result = Table1Result(penalty_seconds=penalty)

    # Scaled synthetic traces: pool every load level.
    scaled_workloads = [
        workload
        for load in config.load_levels
        for workload in generate_instances(config, load=load, workers=config.workers)
    ]
    scaled_outcomes = run_instances(
        scaled_workloads,
        config.algorithms,
        penalty_seconds=penalty,
        workers=config.workers,
    )
    result.columns["scaled"] = aggregate_instances(scaled_outcomes).stats()

    # Unscaled synthetic traces, straight from the Lublin model.
    unscaled_outcomes = run_instances(
        generate_instances(config, load=None, workers=config.workers),
        config.algorithms,
        penalty_seconds=penalty,
        workers=config.workers,
    )
    result.columns["unscaled"] = aggregate_instances(unscaled_outcomes).stats()

    # Real-world (HPC2N-like) 1-week segments.
    generator = Hpc2nLikeTraceGenerator(jobs_per_week=config.hpc2n_jobs_per_week)
    real_workloads = [
        generator.generate_workload(1, seed=config.seed_base + week)
        for week in range(config.hpc2n_weeks)
    ]
    real_outcomes = run_instances(
        real_workloads,
        config.algorithms,
        penalty_seconds=penalty,
        workers=config.workers,
    )
    result.columns["real"] = aggregate_instances(real_outcomes).stats()
    return result
