"""Evaluation of the extension schedulers against the paper's winner.

The paper's conclusion sketches two follow-up mechanisms — throttling the
yield of long-running jobs, and user priorities — and this repository also
adds a conservative-backfilling batch baseline.  This experiment compares all
of them against DYNMCB8-ASAP-PER (the paper's best algorithm) and against
EASY on the scaled synthetic traces, using the same degradation-factor
methodology as Table I.

The driver is a thin builder over :mod:`repro.campaign` (the ``extensions``
scenario is the Table I scaled scenario with a different algorithm set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..campaign.executor import Campaign
from ..campaign.result import CampaignResult
from ..campaign.studies import extensions_scenario
from ..core.metrics import DegradationStats
from ..exceptions import ConfigurationError
from .config import ExperimentConfig
from .reporting import format_table

__all__ = ["ExtensionsResult", "run_extensions_comparison", "EXTENSION_ALGORITHMS"]

#: The default algorithm set: paper baselines, the paper's winner, and the
#: three extensions implemented beyond the paper.
EXTENSION_ALGORITHMS: Tuple[str, ...] = (
    "easy",
    "conservative",
    "dynmcb8-asap-per-600",
    "dynmcb8-asap-throttled-per-600",
    "dynmcb8-asap-weighted-per-600",
)


@dataclass
class ExtensionsResult:
    """Degradation statistics of the extension algorithms."""

    penalty_seconds: float
    load_levels: Tuple[float, ...]
    stats: Dict[str, DegradationStats] = field(default_factory=dict)
    #: Campaigns behind this artifact (for ``--export-dir`` persistence).
    campaigns: List[CampaignResult] = field(
        default_factory=list, repr=False, compare=False
    )

    def best_algorithm(self) -> str:
        if not self.stats:
            raise ConfigurationError("the comparison produced no statistics")
        return min(self.stats, key=lambda name: self.stats[name].average)

    def format(self) -> str:
        rows = [
            [name, stats.average, stats.std, stats.maximum]
            for name, stats in sorted(
                self.stats.items(), key=lambda pair: pair[1].average
            )
        ]
        return format_table(
            ["algorithm", "deg. avg", "deg. std", "deg. max"],
            rows,
            title=(
                "Extensions vs. paper algorithms: degradation factors "
                f"(loads {', '.join(f'{l:g}' for l in self.load_levels)}, "
                f"{self.penalty_seconds:.0f}-second penalty)"
            ),
        )


def run_extensions_comparison(
    config: ExperimentConfig,
    *,
    algorithms: Sequence[str] = EXTENSION_ALGORITHMS,
    penalty_seconds: Optional[float] = None,
    campaign: Optional[Campaign] = None,
) -> ExtensionsResult:
    """Run the extension comparison at the configured scale."""
    penalty = config.penalty_seconds if penalty_seconds is None else penalty_seconds
    scenario = extensions_scenario(
        config, penalty_seconds=penalty, algorithms=algorithms
    )
    campaign = campaign or Campaign(workers=config.workers)
    outcome = campaign.run(scenario)
    return ExtensionsResult(
        penalty_seconds=penalty,
        load_levels=tuple(config.load_levels),
        stats=outcome.degradation_stats(),
        campaigns=[outcome],
    )
