"""Experiment harness: regenerates every table and figure of the paper.

Beyond the paper artifacts (Figure 1, Table I, Table II, the §V timing
study), the harness also provides the ablation and extension studies called
out in DESIGN.md §4: the scheduling-period sweep, the packing-heuristic
ablation, the utilization/energy study, and the extension-scheduler
comparison.
"""

from .config import ExperimentConfig, default_scale, paper_scale, quick_scale
from .degradation import DegradationAggregate, aggregate_instances
from .extensions import EXTENSION_ALGORITHMS, ExtensionsResult, run_extensions_comparison
from .figure1 import Figure1Result, run_figure1
from .packing_ablation import (
    PackingAblationResult,
    generate_packing_instances,
    run_packing_ablation,
)
from .parallel import generate_instances, map_tasks, resolve_workers
from .period_sweep import DEFAULT_PERIODS, PeriodSweepResult, run_period_sweep
from .reporting import format_figure_series, format_table
from .runner import (
    InstanceResult,
    generate_synthetic_instances,
    resolve_simulation_config,
    run_algorithm,
    run_instance,
    run_instances,
)
from .table1 import Table1Result, run_table1
from .table2 import TABLE2_ALGORITHMS, CostStatistics, Table2Result, run_table2
from .timing import TimingResult, run_timing_study
from .utilization_study import (
    AlgorithmUtilization,
    UtilizationStudyResult,
    run_utilization_study,
)

__all__ = [
    "ExperimentConfig",
    "default_scale",
    "paper_scale",
    "quick_scale",
    "DegradationAggregate",
    "aggregate_instances",
    "EXTENSION_ALGORITHMS",
    "ExtensionsResult",
    "run_extensions_comparison",
    "Figure1Result",
    "run_figure1",
    "PackingAblationResult",
    "generate_packing_instances",
    "run_packing_ablation",
    "DEFAULT_PERIODS",
    "PeriodSweepResult",
    "run_period_sweep",
    "format_figure_series",
    "format_table",
    "InstanceResult",
    "generate_instances",
    "generate_synthetic_instances",
    "map_tasks",
    "resolve_simulation_config",
    "resolve_workers",
    "run_algorithm",
    "run_instance",
    "run_instances",
    "Table1Result",
    "run_table1",
    "TABLE2_ALGORITHMS",
    "CostStatistics",
    "Table2Result",
    "run_table2",
    "TimingResult",
    "run_timing_study",
    "AlgorithmUtilization",
    "UtilizationStudyResult",
    "run_utilization_study",
]
