"""Table II reproduction: preemption and migration costs under high load.

For the scaled synthetic traces with offered load at least 0.7 and the
5-minute rescheduling penalty, Table II reports — for every algorithm that
preempts or migrates — the average (and worst-trace maximum) of:

* bandwidth consumed by preemptions and by migrations, in GB/s,
* preemption and migration occurrences per hour,
* preemption and migration occurrences per job.

The driver is a thin builder over :mod:`repro.campaign`: the ``table2``
scenario sweeps the high-load levels with the ``costs`` metric collector,
and the statistics are reduced from the campaign rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..campaign.executor import Campaign
from ..campaign.result import CampaignResult
from ..campaign.studies import table2_scenario
from .config import ExperimentConfig
from .reporting import format_table

__all__ = ["CostStatistics", "Table2Result", "run_table2", "TABLE2_ALGORITHMS"]

#: Algorithms reported in Table II (those that preempt and/or migrate).
TABLE2_ALGORITHMS = (
    "greedy-pmtn",
    "greedy-pmtn-migr",
    "dynmcb8",
    "dynmcb8-per-600",
    "dynmcb8-asap-per-600",
    "dynmcb8-stretch-per-600",
)

#: Load levels considered "high load" by Table II.
HIGH_LOAD_THRESHOLD = 0.7


@dataclass(frozen=True)
class CostStatistics:
    """Average and maximum of one cost metric over all instances."""

    average: float
    maximum: float


@dataclass
class Table2Result:
    """Per-algorithm preemption/migration cost statistics."""

    penalty_seconds: float
    #: algorithm -> metric name -> statistics
    metrics: Dict[str, Dict[str, CostStatistics]] = field(default_factory=dict)
    #: Campaigns behind this artifact (for ``--export-dir`` persistence).
    campaigns: List[CampaignResult] = field(
        default_factory=list, repr=False, compare=False
    )

    METRIC_NAMES = (
        "pmtn_bandwidth_gb_per_sec",
        "migr_bandwidth_gb_per_sec",
        "pmtn_per_hour",
        "migr_per_hour",
        "pmtn_per_job",
        "migr_per_job",
    )

    def format(self) -> str:
        headers = ["algorithm"] + [
            f"{name} (avg/max)" for name in self.METRIC_NAMES
        ]
        rows: List[List[object]] = []
        for algorithm, metrics in self.metrics.items():
            row: List[object] = [algorithm]
            for name in self.METRIC_NAMES:
                stats = metrics[name]
                row.append(f"{stats.average:.2f} ({stats.maximum:.2f})")
            rows.append(row)
        return format_table(
            headers,
            rows,
            title=(
                "Table II: preemption and migration costs, scaled synthetic "
                f"traces with load >= {HIGH_LOAD_THRESHOLD}, "
                f"{self.penalty_seconds:.0f}-second penalty"
            ),
        )


def run_table2(
    config: ExperimentConfig,
    *,
    penalty_seconds: Optional[float] = None,
    algorithms: Sequence[str] = TABLE2_ALGORITHMS,
    campaign: Optional[Campaign] = None,
) -> Table2Result:
    """Run the Table II campaign at the configured scale."""
    penalty = config.penalty_seconds if penalty_seconds is None else penalty_seconds
    scenario = table2_scenario(
        config,
        penalty_seconds=penalty,
        algorithms=algorithms,
        high_load_threshold=HIGH_LOAD_THRESHOLD,
    )
    campaign = campaign or Campaign(workers=config.workers)
    outcome = campaign.run(scenario)

    table = Table2Result(penalty_seconds=penalty, campaigns=[outcome])
    for algorithm in algorithms:
        rows = outcome.select(algorithm=algorithm)
        table.metrics[algorithm] = {
            name: CostStatistics(
                average=float(np.mean([row.metric(name) for row in rows]))
                if rows
                else 0.0,
                maximum=float(np.max([row.metric(name) for row in rows]))
                if rows
                else 0.0,
            )
            for name in Table2Result.METRIC_NAMES
        }
    return table
