"""Table II reproduction: preemption and migration costs under high load.

For the scaled synthetic traces with offered load at least 0.7 and the
5-minute rescheduling penalty, Table II reports — for every algorithm that
preempts or migrates — the average (and worst-trace maximum) of:

* bandwidth consumed by preemptions and by migrations, in GB/s,
* preemption and migration occurrences per hour,
* preemption and migration occurrences per job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .config import ExperimentConfig
from .reporting import format_table
from .parallel import generate_instances
from .runner import run_instances

__all__ = ["CostStatistics", "Table2Result", "run_table2", "TABLE2_ALGORITHMS"]

#: Algorithms reported in Table II (those that preempt and/or migrate).
TABLE2_ALGORITHMS = (
    "greedy-pmtn",
    "greedy-pmtn-migr",
    "dynmcb8",
    "dynmcb8-per-600",
    "dynmcb8-asap-per-600",
    "dynmcb8-stretch-per-600",
)

#: Load levels considered "high load" by Table II.
HIGH_LOAD_THRESHOLD = 0.7


@dataclass(frozen=True)
class CostStatistics:
    """Average and maximum of one cost metric over all instances."""

    average: float
    maximum: float


@dataclass
class Table2Result:
    """Per-algorithm preemption/migration cost statistics."""

    penalty_seconds: float
    #: algorithm -> metric name -> statistics
    metrics: Dict[str, Dict[str, CostStatistics]] = field(default_factory=dict)

    METRIC_NAMES = (
        "pmtn_bandwidth_gb_per_sec",
        "migr_bandwidth_gb_per_sec",
        "pmtn_per_hour",
        "migr_per_hour",
        "pmtn_per_job",
        "migr_per_job",
    )

    def format(self) -> str:
        headers = ["algorithm"] + [
            f"{name} (avg/max)" for name in self.METRIC_NAMES
        ]
        rows: List[List[object]] = []
        for algorithm, metrics in self.metrics.items():
            row: List[object] = [algorithm]
            for name in self.METRIC_NAMES:
                stats = metrics[name]
                row.append(f"{stats.average:.2f} ({stats.maximum:.2f})")
            rows.append(row)
        return format_table(
            headers,
            rows,
            title=(
                "Table II: preemption and migration costs, scaled synthetic "
                f"traces with load >= {HIGH_LOAD_THRESHOLD}, "
                f"{self.penalty_seconds:.0f}-second penalty"
            ),
        )


def run_table2(
    config: ExperimentConfig,
    *,
    penalty_seconds: Optional[float] = None,
    algorithms: Sequence[str] = TABLE2_ALGORITHMS,
) -> Table2Result:
    """Run the Table II campaign at the configured scale."""
    penalty = config.penalty_seconds if penalty_seconds is None else penalty_seconds
    loads = [load for load in config.load_levels if load >= HIGH_LOAD_THRESHOLD]
    if not loads:
        raise ValueError(
            "Table II needs at least one load level >= "
            f"{HIGH_LOAD_THRESHOLD}; got {config.load_levels}"
        )
    per_algorithm: Dict[str, Dict[str, List[float]]] = {
        algorithm: {name: [] for name in Table2Result.METRIC_NAMES}
        for algorithm in algorithms
    }
    high_load_workloads = [
        workload
        for load in loads
        for workload in generate_instances(config, load=load, workers=config.workers)
    ]
    instances = run_instances(
        high_load_workloads,
        algorithms,
        penalty_seconds=penalty,
        workers=config.workers,
    )
    for instance in instances:
        for algorithm, result in instance.results.items():
            samples = per_algorithm[algorithm]
            samples["pmtn_bandwidth_gb_per_sec"].append(
                result.preemption_bandwidth_gb_per_sec()
            )
            samples["migr_bandwidth_gb_per_sec"].append(
                result.migration_bandwidth_gb_per_sec()
            )
            samples["pmtn_per_hour"].append(result.preemptions_per_hour())
            samples["migr_per_hour"].append(result.migrations_per_hour())
            samples["pmtn_per_job"].append(result.preemptions_per_job())
            samples["migr_per_job"].append(result.migrations_per_job())

    table = Table2Result(penalty_seconds=penalty)
    for algorithm, samples in per_algorithm.items():
        table.metrics[algorithm] = {
            name: CostStatistics(
                average=float(np.mean(values)) if values else 0.0,
                maximum=float(np.max(values)) if values else 0.0,
            )
            for name, values in samples.items()
        }
    return table
