"""Scheduling-period sensitivity study (paper §III-B, last paragraph).

The paper reports that T = 600 s "is sufficiently small to achieve results
comparable to those using the much smaller period, and sufficiently large to
lead to overhead comparable to that using the much larger period", based on
experiments with T ∈ {60, 600, 3600}.  This experiment reproduces that
sensitivity sweep for any of the periodic DFRS algorithms: for every period it
reports the mean maximum bounded stretch and the preemption/migration rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from .config import ExperimentConfig
from .reporting import format_table
from .parallel import generate_instances
from .runner import run_instances

__all__ = ["PeriodSweepResult", "run_period_sweep", "DEFAULT_PERIODS"]

#: The periods evaluated by the paper (seconds).
DEFAULT_PERIODS: Tuple[float, ...] = (60.0, 600.0, 3600.0)


@dataclass(frozen=True)
class PeriodPoint:
    """Aggregate outcome of one (algorithm base, period) cell."""

    algorithm: str
    period_seconds: float
    mean_max_stretch: float
    max_max_stretch: float
    preemptions_per_hour: float
    migrations_per_hour: float


@dataclass
class PeriodSweepResult:
    """Outcome of the period sensitivity sweep."""

    base_algorithm: str
    load: float
    penalty_seconds: float
    points: List[PeriodPoint] = field(default_factory=list)

    def best_period(self) -> float:
        """Period with the lowest mean maximum stretch."""
        if not self.points:
            raise ConfigurationError("the sweep produced no data points")
        return min(self.points, key=lambda point: point.mean_max_stretch).period_seconds

    def format(self) -> str:
        rows = [
            [
                f"{point.period_seconds:.0f}",
                point.mean_max_stretch,
                point.max_max_stretch,
                point.preemptions_per_hour,
                point.migrations_per_hour,
            ]
            for point in self.points
        ]
        return format_table(
            ["period (s)", "mean max stretch", "worst max stretch", "pmtn/h", "migr/h"],
            rows,
            title=(
                f"Period sensitivity of {self.base_algorithm} "
                f"(load {self.load:g}, {self.penalty_seconds:.0f}-second penalty)"
            ),
        )


def run_period_sweep(
    config: ExperimentConfig,
    *,
    base_algorithm: str = "dynmcb8-asap-per",
    periods: Sequence[float] = DEFAULT_PERIODS,
    load: float = 0.7,
    penalty_seconds: Optional[float] = None,
) -> PeriodSweepResult:
    """Evaluate ``base_algorithm`` for every period in ``periods``.

    ``base_algorithm`` must be the unsuffixed name of a periodic algorithm
    (``dynmcb8-per``, ``dynmcb8-asap-per``, ``dynmcb8-stretch-per``, ...); the
    period suffix is appended internally.
    """
    if not periods:
        raise ConfigurationError("periods must not be empty")
    for period in periods:
        if period <= 0:
            raise ConfigurationError(f"periods must be > 0, got {period}")
    penalty = config.penalty_seconds if penalty_seconds is None else penalty_seconds
    result = PeriodSweepResult(
        base_algorithm=base_algorithm, load=load, penalty_seconds=penalty
    )
    algorithms = [f"{base_algorithm}-{int(period)}" for period in periods]
    instances = generate_instances(config, load=load, workers=config.workers)

    stretches: Dict[str, List[float]] = {name: [] for name in algorithms}
    preemption_rates: Dict[str, List[float]] = {name: [] for name in algorithms}
    migration_rates: Dict[str, List[float]] = {name: [] for name in algorithms}
    outcomes = run_instances(
        instances, algorithms, penalty_seconds=penalty, workers=config.workers
    )
    for outcome in outcomes:
        for name, run in outcome.results.items():
            stretches[name].append(run.max_stretch)
            preemption_rates[name].append(run.preemptions_per_hour())
            migration_rates[name].append(run.migrations_per_hour())

    for period, name in zip(periods, algorithms):
        result.points.append(
            PeriodPoint(
                algorithm=name,
                period_seconds=float(period),
                mean_max_stretch=float(np.mean(stretches[name])),
                max_max_stretch=float(np.max(stretches[name])),
                preemptions_per_hour=float(np.mean(preemption_rates[name])),
                migrations_per_hour=float(np.mean(migration_rates[name])),
            )
        )
    return result
