"""Scheduling-period sensitivity study (paper §III-B, last paragraph).

The paper reports that T = 600 s "is sufficiently small to achieve results
comparable to those using the much smaller period, and sufficiently large to
lead to overhead comparable to that using the much larger period", based on
experiments with T ∈ {60, 600, 3600}.  This experiment reproduces that
sensitivity sweep for any of the periodic DFRS algorithms: for every period it
reports the mean maximum bounded stretch and the preemption/migration rates.

The driver is a thin builder over :mod:`repro.campaign`: the period is a
sweep axis feeding the ``{period}`` algorithm-name template (see
:func:`repro.campaign.studies.period_sweep_scenario`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..campaign.executor import Campaign
from ..campaign.result import CampaignResult
from ..campaign.studies import period_sweep_scenario
from ..exceptions import ConfigurationError
from .config import ExperimentConfig
from .reporting import format_table

__all__ = ["PeriodSweepResult", "run_period_sweep", "DEFAULT_PERIODS"]

#: The periods evaluated by the paper (seconds).
DEFAULT_PERIODS: Tuple[float, ...] = (60.0, 600.0, 3600.0)


@dataclass(frozen=True)
class PeriodPoint:
    """Aggregate outcome of one (algorithm base, period) cell."""

    algorithm: str
    period_seconds: float
    mean_max_stretch: float
    max_max_stretch: float
    preemptions_per_hour: float
    migrations_per_hour: float


@dataclass
class PeriodSweepResult:
    """Outcome of the period sensitivity sweep."""

    base_algorithm: str
    load: float
    penalty_seconds: float
    points: List[PeriodPoint] = field(default_factory=list)
    #: Campaigns behind this artifact (for ``--export-dir`` persistence).
    campaigns: List[CampaignResult] = field(
        default_factory=list, repr=False, compare=False
    )

    def best_period(self) -> float:
        """Period with the lowest mean maximum stretch."""
        if not self.points:
            raise ConfigurationError("the sweep produced no data points")
        return min(self.points, key=lambda point: point.mean_max_stretch).period_seconds

    def format(self) -> str:
        rows = [
            [
                f"{point.period_seconds:.0f}",
                point.mean_max_stretch,
                point.max_max_stretch,
                point.preemptions_per_hour,
                point.migrations_per_hour,
            ]
            for point in self.points
        ]
        return format_table(
            ["period (s)", "mean max stretch", "worst max stretch", "pmtn/h", "migr/h"],
            rows,
            title=(
                f"Period sensitivity of {self.base_algorithm} "
                f"(load {self.load:g}, {self.penalty_seconds:.0f}-second penalty)"
            ),
        )


def run_period_sweep(
    config: ExperimentConfig,
    *,
    base_algorithm: str = "dynmcb8-asap-per",
    periods: Sequence[float] = DEFAULT_PERIODS,
    load: float = 0.7,
    penalty_seconds: Optional[float] = None,
    campaign: Optional[Campaign] = None,
) -> PeriodSweepResult:
    """Evaluate ``base_algorithm`` for every period in ``periods``.

    ``base_algorithm`` must be the unsuffixed name of a periodic algorithm
    (``dynmcb8-per``, ``dynmcb8-asap-per``, ``dynmcb8-stretch-per``, ...); the
    period suffix is appended internally.
    """
    penalty = config.penalty_seconds if penalty_seconds is None else penalty_seconds
    scenario = period_sweep_scenario(
        config,
        base_algorithm=base_algorithm,
        periods=periods,
        load=load,
        penalty_seconds=penalty,
    )
    campaign = campaign or Campaign(workers=config.workers)
    outcome = campaign.run(scenario)

    result = PeriodSweepResult(
        base_algorithm=base_algorithm,
        load=load,
        penalty_seconds=penalty,
        campaigns=[outcome],
    )
    for period in periods:
        rows = outcome.select(
            algorithm=f"{base_algorithm}-{int(period)}", period=int(period)
        )
        result.points.append(
            PeriodPoint(
                algorithm=f"{base_algorithm}-{int(period)}",
                period_seconds=float(period),
                mean_max_stretch=float(
                    np.mean([row.metric("max_stretch") for row in rows])
                ),
                max_max_stretch=float(
                    np.max([row.metric("max_stretch") for row in rows])
                ),
                preemptions_per_hour=float(
                    np.mean([row.metric("pmtn_per_hour") for row in rows])
                ),
                migrations_per_hour=float(
                    np.mean([row.metric("migr_per_hour") for row in rows])
                ),
            )
        )
    return result
