"""Plain-text rendering of reproduced tables and figure series.

The benchmark harness and the CLI print the same rows/series the paper
reports; these helpers keep the formatting in one place so tests can assert
on structure without caring about alignment details.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_figure_series"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render a simple aligned text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_figure_series(
    series: Mapping[str, Mapping[float, float]],
    *,
    x_label: str = "load",
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render {algorithm -> {x -> y}} as a table with one column per x value."""
    xs = sorted({x for values in series.values() for x in values})
    headers = [x_label] + [f"{x:g}" for x in xs]
    rows: List[List[object]] = []
    for name in series:
        row: List[object] = [name]
        for x in xs:
            value = series[name].get(x)
            row.append(float_format.format(value) if value is not None else "-")
        rows.append(row)
    return format_table(headers, rows, title=title, float_format=float_format)
