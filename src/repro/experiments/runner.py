"""Execution layer of the experiment harness.

Runs one or more scheduling algorithms over one or more workload instances
and gathers the per-instance maximum bounded stretches that every downstream
artifact (Figure 1, Table I) is built from.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.cluster import Cluster
from ..core.engine import SimulationConfig, Simulator
from ..core.metrics import degradation_factors
from ..core.penalties import ReschedulingPenaltyModel
from ..core.records import SimulationResult
from ..schedulers.registry import create_scheduler
from ..workloads.model import Workload
from .config import ExperimentConfig

__all__ = [
    "InstanceResult",
    "resolve_simulation_config",
    "run_algorithm",
    "run_instance",
    "run_instances",
    "generate_synthetic_instances",
]

_LOGGER = logging.getLogger(__name__)


@dataclass
class InstanceResult:
    """All algorithm runs for one workload instance."""

    workload_name: str
    results: Dict[str, SimulationResult] = field(default_factory=dict)

    def max_stretches(self) -> Dict[str, float]:
        """Maximum bounded stretch per algorithm."""
        return {name: result.max_stretch for name, result in self.results.items()}

    def degradation_factors(self) -> Dict[str, float]:
        """Per-algorithm degradation factors for this instance."""
        return degradation_factors(self.max_stretches())


def resolve_simulation_config(
    penalty_seconds: float = 0.0,
    simulation_config: Optional[SimulationConfig] = None,
) -> SimulationConfig:
    """Engine configuration for one run.

    An explicit ``simulation_config`` wins wholesale (its own penalty model
    included) so per-scenario engine options such as ``legacy_event_loop``
    reach single-run paths; otherwise a default configuration carrying
    ``penalty_seconds`` is built.
    """
    if simulation_config is not None:
        return simulation_config
    return SimulationConfig(penalty_model=ReschedulingPenaltyModel(penalty_seconds))


def run_algorithm(
    workload: Workload,
    algorithm: str,
    *,
    penalty_seconds: float = 0.0,
    simulation_config: Optional[SimulationConfig] = None,
) -> SimulationResult:
    """Simulate one workload under one algorithm."""
    scheduler = create_scheduler(algorithm)
    simulator = Simulator(
        workload.cluster,
        scheduler,
        resolve_simulation_config(penalty_seconds, simulation_config),
    )
    return simulator.run(workload.jobs)


def run_instance(
    workload: Workload,
    algorithms: Sequence[str],
    *,
    penalty_seconds: float = 0.0,
    simulation_config: Optional[SimulationConfig] = None,
) -> InstanceResult:
    """Simulate one workload under every requested algorithm."""
    instance = InstanceResult(workload_name=workload.name)
    for algorithm in algorithms:
        _LOGGER.debug("running %s on %s", algorithm, workload.name)
        instance.results[algorithm] = run_algorithm(
            workload,
            algorithm,
            penalty_seconds=penalty_seconds,
            simulation_config=simulation_config,
        )
    return instance


def run_instances(
    workloads: Sequence[Workload],
    algorithms: Sequence[str],
    *,
    penalty_seconds: float = 0.0,
    simulation_config: Optional[SimulationConfig] = None,
    workers: Optional[int] = None,
) -> List[InstanceResult]:
    """Simulate many workloads under many algorithms, optionally in parallel.

    With ``workers`` unset (or 1) this is a plain serial loop of
    :func:`run_instance`; larger values fan the *instances × algorithms*
    grid out over a process pool (see :mod:`repro.experiments.parallel`)
    with results identical to the serial run.
    """
    from .parallel import run_instances as _run_instances_parallel

    return _run_instances_parallel(
        workloads,
        algorithms,
        penalty_seconds=penalty_seconds,
        simulation_config=simulation_config,
        workers=workers,
    )


def generate_synthetic_instances(
    config: ExperimentConfig,
    *,
    load: Optional[float] = None,
) -> List[Workload]:
    """Generate the synthetic traces of one experimental cell.

    With ``load=None`` the unscaled traces are returned; otherwise each trace
    is rescaled (identical job mix, stretched inter-arrival times) to the
    requested offered load.  The per-trace seeding/naming scheme lives in
    :func:`repro.experiments.parallel._generate_one`, shared with the
    parallel generator so ``workers=N`` produces the exact same traces.
    """
    from .parallel import _generate_one

    return [
        _generate_one((config, index, load)) for index in range(config.num_traces)
    ]
