"""Execution layer of the experiment harness.

Runs one or more scheduling algorithms over one or more workload instances
and gathers the per-instance maximum bounded stretches that every downstream
artifact (Figure 1, Table I) is built from.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.cluster import Cluster
from ..core.engine import SimulationConfig, Simulator
from ..core.metrics import degradation_factors
from ..core.penalties import ReschedulingPenaltyModel
from ..core.records import SimulationResult
from ..schedulers.registry import create_scheduler
from ..workloads.lublin import LublinWorkloadGenerator
from ..workloads.model import Workload
from ..workloads.scaling import scale_to_load
from .config import ExperimentConfig

__all__ = ["InstanceResult", "run_algorithm", "run_instance", "generate_synthetic_instances"]

_LOGGER = logging.getLogger(__name__)


@dataclass
class InstanceResult:
    """All algorithm runs for one workload instance."""

    workload_name: str
    results: Dict[str, SimulationResult] = field(default_factory=dict)

    def max_stretches(self) -> Dict[str, float]:
        """Maximum bounded stretch per algorithm."""
        return {name: result.max_stretch for name, result in self.results.items()}

    def degradation_factors(self) -> Dict[str, float]:
        """Per-algorithm degradation factors for this instance."""
        return degradation_factors(self.max_stretches())


def run_algorithm(
    workload: Workload,
    algorithm: str,
    *,
    penalty_seconds: float = 0.0,
) -> SimulationResult:
    """Simulate one workload under one algorithm."""
    scheduler = create_scheduler(algorithm)
    simulator = Simulator(
        workload.cluster,
        scheduler,
        SimulationConfig(
            penalty_model=ReschedulingPenaltyModel(penalty_seconds),
        ),
    )
    return simulator.run(workload.jobs)


def run_instance(
    workload: Workload,
    algorithms: Sequence[str],
    *,
    penalty_seconds: float = 0.0,
) -> InstanceResult:
    """Simulate one workload under every requested algorithm."""
    instance = InstanceResult(workload_name=workload.name)
    for algorithm in algorithms:
        _LOGGER.debug("running %s on %s", algorithm, workload.name)
        instance.results[algorithm] = run_algorithm(
            workload, algorithm, penalty_seconds=penalty_seconds
        )
    return instance


def generate_synthetic_instances(
    config: ExperimentConfig,
    *,
    load: Optional[float] = None,
) -> List[Workload]:
    """Generate the synthetic traces of one experimental cell.

    With ``load=None`` the unscaled traces are returned; otherwise each trace
    is rescaled (identical job mix, stretched inter-arrival times) to the
    requested offered load.
    """
    generator = LublinWorkloadGenerator(config.cluster)
    instances: List[Workload] = []
    for index in range(config.num_traces):
        workload = generator.generate(
            config.num_jobs,
            seed=config.seed_base + index,
            name=f"lublin-{index:03d}",
        )
        if load is not None:
            workload = scale_to_load(workload, load)
        instances.append(workload)
    return instances
