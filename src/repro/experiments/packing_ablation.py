"""Packing-heuristic ablation: how much does MCB8's balancing matter?

The paper adopts MCB8 on the strength of prior work; this experiment measures
the choice directly.  For a population of packing instances drawn from the
paper's job-mix distributions, every registered packer
(:data:`repro.packing.PACKER_NAMES`) runs the same minimum-yield binary
search, and the achieved yields are compared against each other and against
the heuristic-independent CPU-capacity upper bound.

The study has no simulation behind it, so it does not build a
:class:`~repro.campaign.scenario.Scenario`; instead it rides the campaign
layer's generic grid primitive (:func:`repro.experiments.parallel.map_tasks`,
one task per ``packer × instance`` cell) and materialises its rows as a
:class:`~repro.campaign.result.CampaignResult` for uniform export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..campaign.result import CampaignResult, RunRecord
from ..campaign.scenario import payload_hash
from ..exceptions import ConfigurationError
from ..packing import (
    PACKER_NAMES,
    PackingJob,
    cpu_capacity_yield_bound,
    get_packer,
    maximize_min_yield,
)
from ..workloads.memory import MemoryRequirementModel
from .reporting import format_table

__all__ = ["PackingAblationResult", "generate_packing_instances", "run_packing_ablation"]


def generate_packing_instances(
    num_instances: int,
    jobs_per_instance: int,
    *,
    seed: int = 0,
    cores_per_node: int = 4,
) -> List[List[PackingJob]]:
    """Random packing instances drawn from the paper's job distributions.

    Job widths follow a power-of-two mix, CPU needs follow the quad-core rule
    (25 % for sequential tasks, 100 % otherwise), and memory requirements
    follow the Setia-style model of §IV-C.
    """
    if num_instances < 1 or jobs_per_instance < 1:
        raise ConfigurationError("num_instances and jobs_per_instance must be >= 1")
    rng = np.random.default_rng(seed)
    memory_model = MemoryRequirementModel()
    instances: List[List[PackingJob]] = []
    for _ in range(num_instances):
        jobs: List[PackingJob] = []
        for job_id in range(jobs_per_instance):
            tasks = int(rng.choice([1, 2, 4, 8, 16], p=[0.4, 0.2, 0.2, 0.15, 0.05]))
            cpu = (1.0 / cores_per_node) if tasks == 1 else 1.0
            jobs.append(
                PackingJob(
                    job_id=job_id,
                    num_tasks=tasks,
                    cpu_need=cpu,
                    mem_requirement=memory_model.memory_requirement(rng),
                )
            )
        instances.append(jobs)
    return instances


@dataclass(frozen=True)
class PackerScore:
    """Aggregate outcome of one packer over the instance population."""

    packer: str
    mean_yield: float
    worst_yield: float
    #: Mean ratio of the achieved yield to the CPU-capacity upper bound.
    mean_bound_ratio: float
    failures: int


@dataclass
class PackingAblationResult:
    """Outcome of the packing-heuristic ablation."""

    num_nodes: int
    num_instances: int
    scores: List[PackerScore] = field(default_factory=list)
    #: Campaign rows behind this artifact (for ``--export-dir`` persistence).
    campaigns: List[CampaignResult] = field(
        default_factory=list, repr=False, compare=False
    )

    def ranking(self) -> List[str]:
        """Packer names sorted by decreasing mean achieved yield."""
        return [
            score.packer
            for score in sorted(self.scores, key=lambda s: -s.mean_yield)
        ]

    def score_for(self, packer: str) -> PackerScore:
        for score in self.scores:
            if score.packer == packer:
                return score
        raise ConfigurationError(f"no score recorded for packer {packer!r}")

    def format(self) -> str:
        rows = [
            [
                score.packer,
                score.mean_yield,
                score.worst_yield,
                score.mean_bound_ratio,
                score.failures,
            ]
            for score in sorted(self.scores, key=lambda s: -s.mean_yield)
        ]
        return format_table(
            ["packer", "mean min-yield", "worst min-yield", "vs. capacity bound", "failures"],
            rows,
            title=(
                f"Packing ablation: achievable minimum yield on {self.num_instances} "
                f"instances, {self.num_nodes} nodes"
            ),
        )


def _score_cell(task: Tuple[str, List[PackingJob], int]) -> Dict[str, float]:
    """One ``packer × instance`` grid cell (module-level for the pool)."""
    packer_name, jobs, num_nodes = task
    packer = get_packer(packer_name)
    bound = cpu_capacity_yield_bound(jobs, num_nodes)
    outcome = maximize_min_yield(jobs, num_nodes, packer=packer)
    if not outcome.success:
        return {"min_yield": 0.0, "bound_ratio": 0.0, "bound": bound, "success": 0}
    return {
        "min_yield": outcome.yield_value,
        "bound_ratio": outcome.yield_value / bound if bound > 0 else 1.0,
        "bound": bound,
        "success": 1,
    }


def run_packing_ablation(
    *,
    num_nodes: int = 32,
    num_instances: int = 25,
    jobs_per_instance: int = 24,
    seed: int = 9,
    packers: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
) -> PackingAblationResult:
    """Compare every requested packer on a shared instance population."""
    from .parallel import map_tasks

    if num_nodes < 1:
        raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
    names = tuple(packers) if packers is not None else PACKER_NAMES
    if not names:
        raise ConfigurationError("packers must not be empty")
    instances = generate_packing_instances(
        num_instances, jobs_per_instance, seed=seed
    )

    spec = {
        "name": "packing-ablation",
        "source": {
            "type": "packing-random",
            "num_instances": num_instances,
            "jobs_per_instance": jobs_per_instance,
            "seed": seed,
        },
        "num_nodes": num_nodes,
        "packers": list(names),
    }
    tasks = [
        (name, jobs, num_nodes) for name in names for jobs in instances
    ]
    metrics = map_tasks(_score_cell, tasks, workers=workers)

    rows: List[RunRecord] = []
    cursor = iter(metrics)
    for cell_index, name in enumerate(names):
        for instance_index in range(len(instances)):
            rows.append(
                RunRecord(
                    cell_index=cell_index,
                    instance_index=instance_index,
                    workload=f"packing-{instance_index:03d}",
                    algorithm=name,
                    params=(("packer", name),),
                    metrics=next(cursor),
                )
            )
    campaign_result = CampaignResult(
        scenario=spec, scenario_hash=payload_hash(spec), rows=rows
    )

    result = PackingAblationResult(
        num_nodes=num_nodes,
        num_instances=len(instances),
        campaigns=[campaign_result],
    )
    for name in names:
        selected = campaign_result.select(algorithm=name)
        yields = [row.metric("min_yield") for row in selected]
        ratios = [row.metric("bound_ratio") for row in selected]
        failures = sum(1 for row in selected if not row.metric("success"))
        result.scores.append(
            PackerScore(
                packer=name,
                mean_yield=float(np.mean(yields)),
                worst_yield=float(np.min(yields)),
                mean_bound_ratio=float(np.mean(ratios)),
                failures=failures,
            )
        )
    return result
