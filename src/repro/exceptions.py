"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that callers
can catch any failure originating from this package with a single handler
while still being able to discriminate between configuration problems,
infeasible allocations, and malformed workload inputs.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "AllocationError",
    "InfeasibleAllocationError",
    "SchedulingError",
    "WorkloadError",
    "TraceFormatError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """Raised when a user-supplied configuration value is invalid."""


class AllocationError(ReproError):
    """Raised when an allocation object is malformed (wrong arity, bad yield)."""


class InfeasibleAllocationError(AllocationError):
    """Raised when an allocation violates node CPU or memory capacities."""


class SchedulingError(ReproError):
    """Raised when a scheduler produces an internally inconsistent decision."""


class WorkloadError(ReproError):
    """Raised for invalid workload specifications (negative runtimes, ...)."""


class TraceFormatError(WorkloadError):
    """Raised when an SWF trace file cannot be parsed."""


class SimulationError(ReproError):
    """Raised when the simulation engine reaches an inconsistent state."""
