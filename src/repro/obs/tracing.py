"""Span tracing helpers and the Chrome trace-event (Perfetto) exporter.

:func:`trace_span` is the coarse-grained instrumentation entry point for
code outside the engine hot loop (serve request handling, trace-source
materialisation, CLI phases): a context manager that times its body into a
telemetry sink's phase moments — and, on a tracing sink, as a span event.
It is a no-op when the sink is None, so call sites need no guards.

:func:`chrome_trace_events` / :func:`write_chrome_trace` turn a tracing
sink's captured span events into the Chrome trace-event JSON format — the
``{"traceEvents": [...]}`` object format with complete (``"ph": "X"``)
events — which loads directly into ``chrome://tracing`` and
https://ui.perfetto.dev.  Timestamps are microseconds relative to the
earliest captured span, so traces are stable artifacts: two runs of the
same spec differ only in durations, never in epoch offsets.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from .telemetry import Telemetry
from .timing import perf_counter

__all__ = ["chrome_trace_events", "trace_span", "write_chrome_trace"]


@contextmanager
def trace_span(name: str, telemetry: Optional[Telemetry]) -> Iterator[None]:
    """Time the body as one occurrence of phase ``name``; no-op on None."""
    if telemetry is None:
        yield
        return
    start = perf_counter()
    try:
        yield
    finally:
        telemetry.record_phase(name, start, perf_counter())


def chrome_trace_events(
    telemetry: Telemetry, *, pid: int = 0, tid: int = 0
) -> List[Dict[str, Any]]:
    """The sink's span events in Chrome trace-event form.

    One complete (``"ph": "X"``) event per captured span, microsecond
    timestamps relative to the earliest span start, plus a process-name
    metadata event so the Perfetto track is labelled.
    """
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": "repro-dfrs"},
        }
    ]
    spans = telemetry.span_events()
    if not spans:
        return events
    origin = min(start for _, start, _ in spans)
    for name, start, duration in sorted(spans, key=lambda s: (s[1], s[0])):
        events.append(
            {
                "name": name,
                "cat": "repro",
                "ph": "X",
                "ts": (start - origin) * 1e6,
                "dur": duration * 1e6,
                "pid": pid,
                "tid": tid,
            }
        )
    return events


def write_chrome_trace(
    telemetry: Telemetry, path: Union[str, Path]
) -> Path:
    """Write the sink as a Perfetto-loadable Chrome trace JSON file.

    The object form is used (not the bare array) so the file can carry the
    run's counters and the dropped-span tally alongside the events.
    """
    target = Path(path)
    payload: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(telemetry),
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": {
                name: telemetry.counters[name]
                for name in sorted(telemetry.counters)
            },
            "dropped_spans": telemetry.dropped_spans,
        },
    }
    target.write_text(
        json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target
