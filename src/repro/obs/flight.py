"""Per-job flight recorder: a causal lifecycle event log with bounded memory.

The telemetry sink observes *aggregate* engine behaviour (phase timings,
counters); the flight recorder observes *individual jobs*: one structured
event per lifecycle transition — submit / admit / start / preempt / migrate
/ resume / checkpoint / failure-kill / complete — each stamped with the
simulated time, the node assignment in force, and the cause of the
transition.  It answers the question the aggregate view cannot: *why* was
job 4711 preempted at t=86400, and where was it running when that happened?

Capture is enabled through the telemetry spec path
(``SimulationConfig(telemetry={"type": "stats", "flight": 65536})``): the
built :class:`~repro.obs.telemetry.Telemetry` sink carries a
:class:`FlightRecorder` on its ``flight`` attribute and the engine attaches
a :class:`FlightObserver` feeding it.  The disabled path (no telemetry, or
telemetry without a ``flight`` capacity) attaches nothing and stays
byte-identical — the recorder is a pure observer and never influences
scheduling decisions.

Memory is bounded: the recorder is a ring buffer of ``capacity`` events;
once full, recording a new event evicts the oldest and increments
:attr:`FlightRecorder.dropped` — a long-haul soak keeps the *latest* window
of history, which is the window a health investigation wants.

Two export formats:

* :func:`write_flight_jsonl` — one JSON object per line, the archival form;
* :func:`write_flight_trace` — Chrome trace-event JSON with **one lane per
  job** (``tid`` = job id): load it at https://ui.perfetto.dev and every
  job is a horizontal track of run slices, with instant markers at the
  preemption/migration/failure points carrying the cause.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from ..exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids core import cycles
    from ..core.allocation import JobAllocation
    from ..core.cluster import Cluster
    from ..core.job import JobSpec

__all__ = [
    "FlightEvent",
    "FlightRecorder",
    "FlightObserver",
    "flight_trace_events",
    "write_flight_jsonl",
    "write_flight_trace",
]

#: Default ring capacity: enough for every event of a 100k-job replay with
#: churn, small enough (~tens of MB) to leave soak-length runs bounded.
DEFAULT_FLIGHT_CAPACITY = 1_048_576

#: The closed vocabulary of event kinds, in rough lifecycle order.
EVENT_KINDS = (
    "submit",
    "admit",
    "start",
    "preempt",
    "checkpoint",
    "failure-kill",
    "migrate",
    "resume",
    "complete",
)

#: Kinds that close a running interval in the per-job timeline view.
_CLOSING_KINDS = frozenset(
    {"preempt", "checkpoint", "failure-kill", "complete"}
)
#: Kinds that open (or re-open) a running interval.
_OPENING_KINDS = frozenset({"start", "resume", "migrate"})


@dataclass(frozen=True)
class FlightEvent:
    """One recorded lifecycle transition of one job."""

    #: Simulated time of the transition (seconds).
    time: float
    #: One of :data:`EVENT_KINDS`.
    kind: str
    job_id: int
    #: Node assignment in force at the transition (the *new* assignment for
    #: start/resume/migrate, the assignment being vacated for preempt/
    #: checkpoint/failure-kill/complete, empty when the job held none).
    nodes: Tuple[int, ...] = ()
    #: Why the transition happened (``"scheduler"``, ``"node-failure:3"``,
    #: an admission verdict, ...); empty when self-evident (submit).
    cause: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the JSON-lines record)."""
        return {
            "time": self.time,
            "kind": self.kind,
            "job_id": self.job_id,
            "nodes": list(self.nodes),
            "cause": self.cause,
        }


class FlightRecorder:
    """Bounded ring buffer of :class:`FlightEvent` records.

    ``capacity`` bounds resident events; recording into a full ring evicts
    the oldest event and increments :attr:`dropped`.  The recorder is a
    passive store — the engine-facing intake lives in
    :class:`FlightObserver`, and the serve layer records admission verdicts
    directly via :meth:`record`.
    """

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY) -> None:
        capacity = int(capacity)
        if capacity <= 0:
            raise ConfigurationError(
                f"flight recorder capacity must be a positive integer, "
                f"got {capacity}"
            )
        self.capacity = capacity
        self.dropped = 0
        self._events: Deque[FlightEvent] = deque(maxlen=capacity)

    def record(
        self,
        time: float,
        kind: str,
        job_id: int,
        *,
        nodes: Tuple[int, ...] = (),
        cause: str = "",
    ) -> None:
        """Append one event, evicting the oldest when the ring is full."""
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(
            FlightEvent(
                time=time, kind=kind, job_id=job_id, nodes=nodes, cause=cause
            )
        )

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[FlightEvent]:
        """The resident events, oldest first."""
        return list(self._events)

    def events_of_job(self, job_id: int) -> List[FlightEvent]:
        """Resident events of one job, oldest first."""
        return [event for event in self._events if event.job_id == job_id]

    def events_of_kind(self, kind: str) -> List[FlightEvent]:
        """Resident events of one kind, oldest first."""
        return [event for event in self._events if event.kind == kind]


class FlightObserver:
    """Engine observer feeding a :class:`FlightRecorder`.

    Implements the :class:`repro.core.observers.SimulationObserver` hook
    protocol structurally (no base-class import, so this module stays
    import-cycle-free from ``repro.core``).  Unused hooks are explicit
    no-ops.

    Two pieces of derived state make the events causal:

    * the job's *last known assignment*, tracked from start/resume/migrate
      allocations, so closing events (preempt, complete, failure kills)
      carry the nodes being vacated even though the engine hands the hook
      only the spec;
    * failure attribution: the engine reports a node-failure eviction
      through ``on_job_evicted`` (with the failed node and the policy)
      *and* the legacy ``on_job_preempted``; the observer records the
      specific ``checkpoint``/``failure-kill`` event at the former and
      swallows the duplicate generic preempt at the latter, so
      scheduler-initiated preemptions are exactly the ``preempt`` events.
    """

    def __init__(self, recorder: FlightRecorder) -> None:
        self.recorder = recorder
        self._assignments: Dict[int, Tuple[int, ...]] = {}
        self._failure_evicted: Set[int] = set()

    # -- lifecycle hooks -------------------------------------------------------
    def on_simulation_start(self, cluster: "Cluster", start_time: float) -> None:
        self._assignments = {}
        self._failure_evicted = set()

    def on_job_submitted(self, time: float, spec: "JobSpec") -> None:
        self.recorder.record(time, "submit", spec.job_id)

    def on_job_started(
        self, time: float, spec: "JobSpec", allocation: "JobAllocation"
    ) -> None:
        nodes = tuple(allocation.nodes)
        self._assignments[spec.job_id] = nodes
        self.recorder.record(
            time, "start", spec.job_id, nodes=nodes, cause="scheduler"
        )

    def on_job_evicted(
        self, time: float, spec: "JobSpec", node: int, killed: bool
    ) -> None:
        job_id = spec.job_id
        self._failure_evicted.add(job_id)
        self.recorder.record(
            time,
            "failure-kill" if killed else "checkpoint",
            job_id,
            nodes=self._assignments.pop(job_id, ()),
            cause=f"node-failure:{node}",
        )

    def on_job_preempted(self, time: float, spec: "JobSpec") -> None:
        job_id = spec.job_id
        if job_id in self._failure_evicted:
            # Already recorded as checkpoint/failure-kill by on_job_evicted;
            # this is the engine's legacy duplicate notification.
            self._failure_evicted.discard(job_id)
            return
        self.recorder.record(
            time,
            "preempt",
            job_id,
            nodes=self._assignments.pop(job_id, ()),
            cause="scheduler",
        )

    def on_job_resumed(
        self, time: float, spec: "JobSpec", allocation: "JobAllocation"
    ) -> None:
        nodes = tuple(allocation.nodes)
        self._assignments[spec.job_id] = nodes
        self.recorder.record(
            time, "resume", spec.job_id, nodes=nodes, cause="scheduler"
        )

    def on_job_migrated(
        self,
        time: float,
        spec: "JobSpec",
        old_nodes: Tuple[int, ...],
        allocation: "JobAllocation",
    ) -> None:
        nodes = tuple(allocation.nodes)
        self._assignments[spec.job_id] = nodes
        self.recorder.record(
            time,
            "migrate",
            spec.job_id,
            nodes=nodes,
            cause=f"scheduler:from={sorted(old_nodes)}",
        )

    def on_job_completed(self, time: float, spec: "JobSpec") -> None:
        job_id = spec.job_id
        self._failure_evicted.discard(job_id)
        self.recorder.record(
            time,
            "complete",
            job_id,
            nodes=self._assignments.pop(job_id, ()),
        )

    # -- hooks the recorder does not consume -----------------------------------
    def on_yield_changed(
        self, time: float, spec: "JobSpec", old_yield: float, new_yield: float
    ) -> None:
        """Yield-only changes keep the placement; not a flight event."""

    def on_node_down(self, time: float, node: int) -> None:
        """Node events are platform-level; victims arrive via on_job_evicted."""

    def on_node_up(self, time: float, node: int) -> None:
        """See :meth:`on_node_down`."""

    def on_allocation_applied(self, time: float, running: Dict[int, Any]) -> None:
        """The per-job hooks above already cover every transition."""

    def on_simulation_end(self, time: float) -> None:
        """The ring keeps its events across runs; nothing to close."""


# --------------------------------------------------------------------------- #
# Export                                                                       #
# --------------------------------------------------------------------------- #
def write_flight_jsonl(
    recorder: FlightRecorder, path: Union[str, Any]
) -> int:
    """Write the resident events as JSON lines; returns the event count.

    Lines are self-describing event objects (see
    :meth:`FlightEvent.to_dict`); :attr:`FlightRecorder.dropped` is the
    caller's to surface (the CLI prints it) — the file stays homogeneous.
    """
    events = recorder.events()
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True))
            handle.write("\n")
    return len(events)


def _instant(event: FlightEvent) -> Dict[str, Any]:
    return {
        "name": event.kind,
        "ph": "i",
        "s": "t",
        "pid": 1,
        "tid": event.job_id,
        "ts": event.time * 1e6,
        "args": {"cause": event.cause, "nodes": list(event.nodes)},
    }


def flight_trace_events(recorder: FlightRecorder) -> List[Dict[str, Any]]:
    """Chrome trace events with one lane (``tid``) per job.

    Per job: ``"M"`` thread-name metadata, one ``"X"`` complete slice per
    maximal running interval (opened by start/resume/migrate, closed by
    preempt/checkpoint/failure-kill/complete or the last recorded instant),
    and ``"i"`` instant markers for every non-interval transition (submit,
    admit, and each interval-closing cause).  Timestamps are simulated
    seconds scaled to microseconds, so the Perfetto timeline reads directly
    in sim-time.
    """
    events = recorder.events()
    trace: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "repro-dfrs flight recorder"},
        }
    ]
    #: job id -> (interval start time, nodes) of the currently open slice.
    open_slices: Dict[int, Tuple[float, Tuple[int, ...]]] = {}
    named: Set[int] = set()
    last_time = events[-1].time if events else 0.0

    def close_slice(job_id: int, end: float, cause: str) -> None:
        start, nodes = open_slices.pop(job_id)
        trace.append(
            {
                "name": "run",
                "ph": "X",
                "pid": 1,
                "tid": job_id,
                "ts": start * 1e6,
                "dur": max(0.0, end - start) * 1e6,
                "args": {"nodes": list(nodes), "until": cause},
            }
        )

    for event in events:
        job_id = event.job_id
        if job_id not in named:
            named.add(job_id)
            trace.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": job_id,
                    "args": {"name": f"job {job_id}"},
                }
            )
        if event.kind in _OPENING_KINDS:
            if job_id in open_slices:
                # A migrate re-places a running job within one event: close
                # the old slice at the migration instant and open the new.
                close_slice(job_id, event.time, event.kind)
            open_slices[job_id] = (event.time, event.nodes)
            if event.kind != "start":
                trace.append(_instant(event))
        elif event.kind in _CLOSING_KINDS:
            if job_id in open_slices:
                close_slice(job_id, event.time, event.kind)
            if event.kind != "complete":
                trace.append(_instant(event))
        else:  # submit / admit
            trace.append(_instant(event))
    # Ring truncation or an unfinished run can leave slices open; close them
    # at the last recorded instant so the export is always well-formed.
    for job_id in sorted(open_slices):
        close_slice(job_id, max(last_time, open_slices[job_id][0]), "open")
    return trace


def write_flight_trace(
    recorder: FlightRecorder, path: Union[str, Any]
) -> None:
    """Write the per-job-lane timeline as a Chrome trace-event JSON file."""
    payload = {
        "traceEvents": flight_trace_events(recorder),
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro-dfrs flight recorder",
            "events": len(recorder),
            "dropped": recorder.dropped,
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
