"""The wall-clock timing seam of the engine and the telemetry sink.

Simulation *results* are a pure function of the spec (the DET103 contract),
so the only wall-clock reads the engine is allowed are monotonic interval
timers — and those must flow through a single seam so the OBS701 rule can
police everything else.  This module is that seam: ``repro.core`` imports
:func:`perf_counter` from here (never from :mod:`time` directly), which
keeps every wall-clock read in the simulator greppable, auditable, and
mockable in one place.

The readings are *interval* timestamps (``time.perf_counter``): differences
are meaningful, absolute values are not, and nothing here ever touches
calendar time.
"""

from __future__ import annotations

import time

__all__ = ["perf_counter"]

#: Monotonic high-resolution interval timer.  ``repro.core`` modules must
#: call this binding (the clock/telemetry seam) instead of ``time.*`` —
#: direct wall-clock reads inside the engine are flagged by OBS701.
perf_counter = time.perf_counter
