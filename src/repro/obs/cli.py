"""``repro-dfrs profile`` — single-run engine profiling.

``profile run SPEC`` executes one ``(instance, algorithm)`` simulation of a
scenario spec under tracing telemetry and prints the phase-timing profile
(engine phases, packer phases, counters, sustained events/sec);
``profile replay SPEC`` replays the same workload through the serving layer
instead, so the profile includes the service's intake path.

``--trace-out trace.json`` additionally writes the span timeline in Chrome
trace-event format — load it at ``chrome://tracing`` or
https://ui.perfetto.dev to see the run as a flame chart.

The profiled run is a *real* run: the same engine, schedulers, and platform
that ``repro-dfrs run`` drives, with the scenario's own penalty model,
platform events, and overhead models applied.  Only the telemetry sink
differs from an unprofiled run, and the disabled path is pinned
byte-identical by ``tests/obs/test_disabled_path.py``.
"""

from __future__ import annotations

import argparse
from dataclasses import replace as dataclasses_replace
from typing import Any, Dict, List, Optional, Tuple

from ..campaign.scenario import Scenario
from ..campaign.spec import load_scenario
from ..core.cluster import Cluster
from ..core.engine import SimulationConfig, Simulator
from ..exceptions import ConfigurationError
from ..schedulers.registry import create_scheduler
from .telemetry import Telemetry
from .timing import perf_counter
from .tracing import write_chrome_trace

__all__ = ["add_profile_subparser", "run_profile_command"]


def add_profile_subparser(subparsers: "argparse._SubParsersAction") -> None:
    """Wire ``profile run`` / ``profile replay`` into the main CLI parser."""
    profile = subparsers.add_parser(
        "profile",
        help="profile one simulation of a scenario spec (phase timings, "
        "events/sec, optional Chrome trace)",
    )
    profile_sub = profile.add_subparsers(dest="profile_command", required=True)
    for mode, help_text in (
        ("run", "profile one materialized engine run of the scenario"),
        ("replay", "profile a streaming replay through the serving layer"),
    ):
        sub = profile_sub.add_parser(mode, help=help_text)
        sub.add_argument("spec", type=str, help="scenario spec file (.json/.toml)")
        sub.add_argument(
            "--algorithm",
            default=None,
            help="algorithm to profile (default: the scenario's first)",
        )
        sub.add_argument(
            "--instance",
            type=int,
            default=0,
            help="workload instance index to profile (default 0)",
        )
        sub.add_argument(
            "--trace-out",
            default=None,
            help="write the span timeline as Chrome trace-event JSON here",
        )
        sub.add_argument(
            "--max-spans",
            type=int,
            default=200_000,
            help="span-event capture bound for --trace-out (default 200000)",
        )
        if mode == "replay":
            sub.add_argument(
                "--acceleration",
                type=float,
                default=None,
                help=(
                    "simulated seconds per wall second; omit to replay flat "
                    "out (max-throughput mode)"
                ),
            )


def _resolve_cell(
    scenario: Scenario, algorithm: Optional[str]
) -> Tuple[Dict[str, Any], str]:
    """First sweep cell's parameters and the algorithm under profile."""
    cell = scenario.expand()[0]
    params = dict(cell.params)
    algorithms = scenario.resolved_algorithms(cell.params)
    if algorithm is None:
        return params, algorithms[0]
    return params, algorithm


def _profiled_config(
    scenario: Scenario, params: Dict[str, Any], telemetry: Telemetry
) -> SimulationConfig:
    config = scenario.simulation_config(
        scenario.resolved_platform(params), scenario.resolved_models(params)
    )
    return dataclasses_replace(config, telemetry=telemetry)


def _pick_workload(scenario: Scenario, cluster: Cluster, instance: int) -> Any:
    workloads = scenario.source.workloads(cluster)
    if not 0 <= instance < len(workloads):
        raise ConfigurationError(
            f"--instance {instance} out of range: the scenario source has "
            f"{len(workloads)} instance(s)"
        )
    return workloads[instance]


def _format_profile(
    telemetry: Telemetry, *, events: int, wall_seconds: float, title: str
) -> str:
    from ..experiments.reporting import format_table

    summary = telemetry.summary()
    rows: List[List[str]] = []
    for name, stats in summary["phases"].items():
        if stats["count"] == 0:
            continue
        share = (
            stats["total_seconds"] / wall_seconds * 100.0
            if wall_seconds > 0.0
            else 0.0
        )
        rows.append(
            [
                name,
                f"{stats['count']}",
                f"{stats['total_seconds']:.4f}",
                f"{stats['mean_ms']:.4f}",
                f"{stats['max_ms']:.4f}",
                f"{share:.1f}%",
            ]
        )
    rows.sort(key=lambda row: -float(row[2]))
    lines = [
        format_table(
            ["phase", "count", "total s", "mean ms", "max ms", "wall %"],
            rows,
            title=title,
        )
    ]
    for name, value in sorted(summary["counters"].items()):
        lines.append(f"{name:<32} {value}")
    for name, stats in sorted(summary["gauges"].items()):
        if stats["n"]:
            lines.append(
                f"{name:<32} mean {stats['mean']:.1f}  max {stats['max']:.1f}"
            )
    lines.append(f"{'wall seconds':<32} {wall_seconds:.3f}")
    if events:
        lines.append(f"{'events/sec':<32} {events / wall_seconds:.0f}")
    if summary.get("dropped_spans"):
        lines.append(
            f"{'dropped spans':<32} {summary['dropped_spans']} "
            "(raise --max-spans for a complete trace)"
        )
    return "\n".join(lines)


def _profile_run(args: argparse.Namespace, scenario: Scenario) -> int:
    params, algorithm = _resolve_cell(scenario, args.algorithm)
    telemetry = Telemetry(
        capture_spans=args.trace_out is not None, max_spans=args.max_spans
    )
    cluster = scenario.cluster
    workload = _pick_workload(scenario, cluster, args.instance)
    simulator = Simulator(
        cluster,
        create_scheduler(algorithm),
        _profiled_config(scenario, params, telemetry),
    )
    start = perf_counter()
    result = simulator.run(workload.jobs)
    wall = perf_counter() - start
    print(
        _format_profile(
            telemetry,
            events=simulator.events_processed,
            wall_seconds=wall,
            title=(
                f"profile run: {scenario.name} / {algorithm} "
                f"({len(workload.jobs)} jobs, {cluster.num_nodes} nodes, "
                f"makespan {result.makespan:.0f} s)"
            ),
        )
    )
    if args.trace_out is not None:
        write_chrome_trace(telemetry, args.trace_out)
        print(f"wrote {args.trace_out}")
    return 0


def _profile_replay(args: argparse.Namespace, scenario: Scenario) -> int:
    from ..serve.service import SchedulerService
    from ..traces.source import WorkloadTraceSource

    params, algorithm = _resolve_cell(scenario, args.algorithm)
    telemetry = Telemetry(
        capture_spans=args.trace_out is not None, max_spans=args.max_spans
    )
    cluster = scenario.cluster
    sources = scenario.source.streaming_sources(cluster)
    if sources is not None and 0 <= args.instance < len(sources):
        source = sources[args.instance]
    else:
        source = WorkloadTraceSource(
            workload=_pick_workload(scenario, cluster, args.instance)
        )
    service = SchedulerService(
        cluster,
        algorithm,
        config=_profiled_config(scenario, params, telemetry),
        telemetry=telemetry,
    )
    report = service.replay(source, acceleration=args.acceleration)
    print(
        _format_profile(
            telemetry,
            events=service.metrics.placements + report.completions,
            wall_seconds=report.wall_seconds,
            title=(
                f"profile replay: {scenario.name} / {algorithm} "
                f"({report.submitted} jobs, {cluster.num_nodes} nodes, "
                f"{report.placements_per_wall_sec:.0f} placements/sec)"
            ),
        )
    )
    if args.trace_out is not None:
        write_chrome_trace(telemetry, args.trace_out)
        print(f"wrote {args.trace_out}")
    return 0


def run_profile_command(args: argparse.Namespace) -> int:
    """Entry point of ``repro-dfrs profile``."""
    scenario = load_scenario(args.spec)
    if args.profile_command == "replay":
        return _profile_replay(args, scenario)
    return _profile_run(args, scenario)
