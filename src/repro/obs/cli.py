"""``repro-dfrs profile`` — single-run engine profiling.

``profile run SPEC`` executes one ``(instance, algorithm)`` simulation of a
scenario spec under tracing telemetry and prints the phase-timing profile
(engine phases, packer phases, counters, sustained events/sec);
``profile replay SPEC`` replays the same workload through the serving layer
instead, so the profile includes the service's intake path.

``--trace-out trace.json`` additionally writes the span timeline in Chrome
trace-event format — load it at ``chrome://tracing`` or
https://ui.perfetto.dev to see the run as a flame chart.

``--flight-out flight.json`` records the per-job flight log
(:mod:`repro.obs.flight`) alongside: ``*.jsonl`` writes the raw event
lines, any other extension writes a Chrome trace with one Perfetto lane
per job — run slices bounded by preempt/migrate/failure markers, each
carrying its cause.

The profiled run is a *real* run: the same engine, schedulers, and platform
that ``repro-dfrs run`` drives, with the scenario's own penalty model,
platform events, and overhead models applied.  Only the telemetry sink
differs from an unprofiled run, and the disabled path is pinned
byte-identical by ``tests/obs/test_disabled_path.py``.
"""

from __future__ import annotations

import argparse
from dataclasses import replace as dataclasses_replace
from typing import Any, Dict, List, Optional, Tuple

from ..campaign.scenario import Scenario
from ..campaign.spec import load_scenario
from ..core.cluster import Cluster
from ..core.engine import SimulationConfig, Simulator
from ..exceptions import ConfigurationError
from ..schedulers.registry import create_scheduler
from .flight import (
    DEFAULT_FLIGHT_CAPACITY,
    FlightRecorder,
    write_flight_jsonl,
    write_flight_trace,
)
from .telemetry import Telemetry
from .timing import perf_counter
from .tracing import write_chrome_trace

__all__ = [
    "add_obs_subparser",
    "add_profile_subparser",
    "run_obs_command",
    "run_profile_command",
]


def add_obs_subparser(subparsers: "argparse._SubParsersAction") -> None:
    """Wire ``obs bench-diff`` into the main CLI parser."""
    obs = subparsers.add_parser(
        "obs",
        help="observability utilities (benchmark regression gating)",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    diff = obs_sub.add_parser(
        "bench-diff",
        help=(
            "compare a fresh BENCH_*.json payload against a committed "
            "baseline and fail on throughput regressions"
        ),
    )
    diff.add_argument("fresh", help="freshly generated bench payload")
    diff.add_argument("committed", help="committed baseline bench payload")
    diff.add_argument(
        "--threshold",
        type=float,
        default=None,
        help=(
            "maximum tolerated rate drop as a fraction "
            "(default 0.25 = fail below 75%% of the baseline)"
        ),
    )
    diff.add_argument(
        "--key",
        action="append",
        default=None,
        help=(
            "identity field used to pair entries (repeatable; default "
            "benchmark/algorithm/workload/num_jobs, intersected with the "
            "fields each entry actually has)"
        ),
    )


def run_obs_command(args: argparse.Namespace) -> int:
    """Entry point of ``repro-dfrs obs``."""
    from .benchdiff import (
        DEFAULT_KEY_FIELDS,
        DEFAULT_THRESHOLD,
        diff_bench_files,
    )

    assert args.obs_command == "bench-diff"
    threshold = (
        args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    )
    key_fields = tuple(args.key) if args.key else DEFAULT_KEY_FIELDS
    comparisons, regressed, notes = diff_bench_files(
        args.fresh,
        args.committed,
        threshold=threshold,
        key_fields=key_fields,
    )
    for note in notes:
        print(note)
    for comparison in comparisons:
        marker = "REGRESSED" if comparison in regressed else "ok"
        print(f"{marker:9s} {comparison.describe()}")
    if regressed:
        print(
            f"{len(regressed)}/{len(comparisons)} benchmarks regressed "
            f"more than {threshold * 100.0:.0f}%"
        )
        return 1
    print(
        f"{len(comparisons)} benchmarks within {threshold * 100.0:.0f}% "
        "of the committed baseline"
    )
    return 0


def add_profile_subparser(subparsers: "argparse._SubParsersAction") -> None:
    """Wire ``profile run`` / ``profile replay`` into the main CLI parser."""
    profile = subparsers.add_parser(
        "profile",
        help="profile one simulation of a scenario spec (phase timings, "
        "events/sec, optional Chrome trace)",
    )
    profile_sub = profile.add_subparsers(dest="profile_command", required=True)
    for mode, help_text in (
        ("run", "profile one materialized engine run of the scenario"),
        ("replay", "profile a streaming replay through the serving layer"),
    ):
        sub = profile_sub.add_parser(mode, help=help_text)
        sub.add_argument("spec", type=str, help="scenario spec file (.json/.toml)")
        sub.add_argument(
            "--algorithm",
            default=None,
            help="algorithm to profile (default: the scenario's first)",
        )
        sub.add_argument(
            "--instance",
            type=int,
            default=0,
            help="workload instance index to profile (default 0)",
        )
        sub.add_argument(
            "--trace-out",
            default=None,
            help="write the span timeline as Chrome trace-event JSON here",
        )
        sub.add_argument(
            "--max-spans",
            type=int,
            default=200_000,
            help="span-event capture bound for --trace-out (default 200000)",
        )
        sub.add_argument(
            "--flight-out",
            default=None,
            help=(
                "record the per-job flight log and write it here: *.jsonl "
                "= JSON lines, anything else = Chrome trace-event JSON "
                "with one Perfetto lane per job"
            ),
        )
        sub.add_argument(
            "--flight-capacity",
            type=int,
            default=None,
            help=(
                "flight-recorder ring capacity for --flight-out "
                f"(default {DEFAULT_FLIGHT_CAPACITY})"
            ),
        )
        if mode == "replay":
            sub.add_argument(
                "--acceleration",
                type=float,
                default=None,
                help=(
                    "simulated seconds per wall second; omit to replay flat "
                    "out (max-throughput mode)"
                ),
            )


def _resolve_cell(
    scenario: Scenario, algorithm: Optional[str]
) -> Tuple[Dict[str, Any], str]:
    """First sweep cell's parameters and the algorithm under profile."""
    cell = scenario.expand()[0]
    params = dict(cell.params)
    algorithms = scenario.resolved_algorithms(cell.params)
    if algorithm is None:
        return params, algorithms[0]
    return params, algorithm


def _profiled_config(
    scenario: Scenario, params: Dict[str, Any], telemetry: Telemetry
) -> SimulationConfig:
    config = scenario.simulation_config(
        scenario.resolved_platform(params), scenario.resolved_models(params)
    )
    return dataclasses_replace(config, telemetry=telemetry)


def _pick_workload(scenario: Scenario, cluster: Cluster, instance: int) -> Any:
    workloads = scenario.source.workloads(cluster)
    if not 0 <= instance < len(workloads):
        raise ConfigurationError(
            f"--instance {instance} out of range: the scenario source has "
            f"{len(workloads)} instance(s)"
        )
    return workloads[instance]


def _format_profile(
    telemetry: Telemetry, *, events: int, wall_seconds: float, title: str
) -> str:
    from ..experiments.reporting import format_table

    summary = telemetry.summary()
    rows: List[List[str]] = []
    for name, stats in summary["phases"].items():
        if stats["count"] == 0:
            continue
        share = (
            stats["total_seconds"] / wall_seconds * 100.0
            if wall_seconds > 0.0
            else 0.0
        )
        rows.append(
            [
                name,
                f"{stats['count']}",
                f"{stats['total_seconds']:.4f}",
                f"{stats['mean_ms']:.4f}",
                f"{stats['max_ms']:.4f}",
                f"{share:.1f}%",
            ]
        )
    rows.sort(key=lambda row: -float(row[2]))
    lines = [
        format_table(
            ["phase", "count", "total s", "mean ms", "max ms", "wall %"],
            rows,
            title=title,
        )
    ]
    for name, value in sorted(summary["counters"].items()):
        lines.append(f"{name:<32} {value}")
    for name, stats in sorted(summary["gauges"].items()):
        if stats["n"]:
            lines.append(
                f"{name:<32} mean {stats['mean']:.1f}  max {stats['max']:.1f}"
            )
    lines.append(f"{'wall seconds':<32} {wall_seconds:.3f}")
    if events:
        lines.append(f"{'events/sec':<32} {events / wall_seconds:.0f}")
    if summary.get("dropped_spans"):
        lines.append(
            f"{'dropped spans':<32} {summary['dropped_spans']} "
            "(raise --max-spans for a complete trace)"
        )
    return "\n".join(lines)


def _attach_flight(
    telemetry: Telemetry, args: argparse.Namespace
) -> Optional[FlightRecorder]:
    """Attach a flight recorder to the profiled sink when requested."""
    if args.flight_out is None:
        if args.flight_capacity is not None:
            raise ConfigurationError(
                "--flight-capacity only makes sense with --flight-out"
            )
        return None
    capacity = (
        args.flight_capacity
        if args.flight_capacity is not None
        else DEFAULT_FLIGHT_CAPACITY
    )
    telemetry.flight = FlightRecorder(capacity)
    return telemetry.flight


def _write_flight(
    args: argparse.Namespace, recorder: Optional[FlightRecorder]
) -> None:
    if recorder is None:
        return
    if args.flight_out.endswith(".jsonl"):
        count = write_flight_jsonl(recorder, args.flight_out)
        print(f"wrote {args.flight_out} ({count} events)")
    else:
        write_flight_trace(recorder, args.flight_out)
        print(
            f"wrote {args.flight_out} ({len(recorder)} events as per-job "
            "Perfetto lanes)"
        )
    if recorder.dropped:
        print(
            f"flight ring dropped {recorder.dropped} oldest events; raise "
            "--flight-capacity for a complete log"
        )


def _profile_run(args: argparse.Namespace, scenario: Scenario) -> int:
    params, algorithm = _resolve_cell(scenario, args.algorithm)
    telemetry = Telemetry(
        capture_spans=args.trace_out is not None, max_spans=args.max_spans
    )
    flight = _attach_flight(telemetry, args)
    cluster = scenario.cluster
    workload = _pick_workload(scenario, cluster, args.instance)
    simulator = Simulator(
        cluster,
        create_scheduler(algorithm),
        _profiled_config(scenario, params, telemetry),
    )
    start = perf_counter()
    result = simulator.run(workload.jobs)
    wall = perf_counter() - start
    print(
        _format_profile(
            telemetry,
            events=simulator.events_processed,
            wall_seconds=wall,
            title=(
                f"profile run: {scenario.name} / {algorithm} "
                f"({len(workload.jobs)} jobs, {cluster.num_nodes} nodes, "
                f"makespan {result.makespan:.0f} s)"
            ),
        )
    )
    if args.trace_out is not None:
        write_chrome_trace(telemetry, args.trace_out)
        print(f"wrote {args.trace_out}")
    _write_flight(args, flight)
    return 0


def _profile_replay(args: argparse.Namespace, scenario: Scenario) -> int:
    from ..serve.service import SchedulerService
    from ..traces.source import WorkloadTraceSource

    params, algorithm = _resolve_cell(scenario, args.algorithm)
    telemetry = Telemetry(
        capture_spans=args.trace_out is not None, max_spans=args.max_spans
    )
    flight = _attach_flight(telemetry, args)
    cluster = scenario.cluster
    sources = scenario.source.streaming_sources(cluster)
    if sources is not None and 0 <= args.instance < len(sources):
        source = sources[args.instance]
    else:
        source = WorkloadTraceSource(
            workload=_pick_workload(scenario, cluster, args.instance)
        )
    service = SchedulerService(
        cluster,
        algorithm,
        config=_profiled_config(scenario, params, telemetry),
        telemetry=telemetry,
    )
    report = service.replay(source, acceleration=args.acceleration)
    print(
        _format_profile(
            telemetry,
            events=service.metrics.placements + report.completions,
            wall_seconds=report.wall_seconds,
            title=(
                f"profile replay: {scenario.name} / {algorithm} "
                f"({report.submitted} jobs, {cluster.num_nodes} nodes, "
                f"{report.placements_per_wall_sec:.0f} placements/sec)"
            ),
        )
    )
    if args.trace_out is not None:
        write_chrome_trace(telemetry, args.trace_out)
        print(f"wrote {args.trace_out}")
    _write_flight(args, flight)
    return 0


def run_profile_command(args: argparse.Namespace) -> int:
    """Entry point of ``repro-dfrs profile``."""
    scenario = load_scenario(args.spec)
    if args.profile_command == "replay":
        return _profile_replay(args, scenario)
    return _profile_run(args, scenario)
