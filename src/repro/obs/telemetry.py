"""The telemetry sink: named counters, gauges, and phase timers.

:class:`Telemetry` is the in-process sink the engine (and the serve layer)
write into when a run is instrumented.  Three instrument families:

* **counters** — monotonically increasing integers (events processed,
  scheduler invocations, stream admissions);
* **gauges** — sampled values folded into :class:`~repro.metrics.Moments`
  (active jobs per scheduler invocation, queue depths);
* **phase timers** — wall-clock durations of named engine phases
  (``engine.advance``, ``engine.schedule``, ``packing.mcb8``, ...), folded
  into :class:`~repro.metrics.Moments` and optionally kept as individual
  span events for the Chrome-trace exporter (:mod:`repro.obs.tracing`).

Everything merges: counters add, gauges and phases merge through the
accumulators' associative ``merge``, so per-worker telemetry from a
campaign pool combines into exactly the single-process sink (pinned by
``tests/obs/test_telemetry.py``).  :meth:`Telemetry.bundle` serialises the
sink through the :mod:`repro.metrics` accumulator registry — the same
bundle path streaming metrics use — and :func:`summarize_bundle` turns a
(merged) bundle back into the flat JSON summary.

The sink is deliberately cheap when hot: ``record_phase`` appends to a
per-phase buffer and folds into the ``Moments`` in batches, so the
per-event cost is two timer reads and a list append.  When no sink is
attached the engine skips every instrumentation site behind a single
``is None`` check — the disabled path is byte-identical and near-zero
overhead (asserted by ``benchmarks/test_bench_engine_throughput.py``).

Spec forms
----------
Scenario specs and :class:`~repro.core.engine.SimulationConfig` carry a
declarative :class:`TelemetryConfig` (``off`` / ``stats`` / ``tracing``)
rather than a live sink, so configs stay picklable, hashable, and
registry-audited (REG601); each worker builds its own sink via
:meth:`TelemetryConfig.create`.

Wall-clock reads in schedulers and packers flow through the *ambient* sink
(:func:`current_telemetry`), a thread-local the engine activates around
each scheduler invocation — packers pick it up without any plumbing through
the scheduler protocol.
"""

from __future__ import annotations

import functools
import threading
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..exceptions import ConfigurationError
from ..metrics import Accumulator, Moments, SumAccumulator, accumulator_from_dict
from .timing import perf_counter

__all__ = [
    "Telemetry",
    "TelemetryConfig",
    "NoTelemetry",
    "StatsTelemetry",
    "TracingTelemetry",
    "as_telemetry",
    "available_telemetry_configs",
    "current_telemetry",
    "merge_telemetry_bundles",
    "register_telemetry_config",
    "summarize_bundle",
    "telemetry_config_from_dict",
    "timed_phase",
]

#: Span-event cap of the tracing sink: a 1M-job replay emits a few spans per
#: event, so an unbounded list could dominate memory; overflow increments
#: ``dropped_spans`` instead of growing the list.
DEFAULT_MAX_SPANS = 1_000_000

#: Pending phase durations are folded into the ``Moments`` in batches of
#: this size — ``Moments.add`` per hot-loop call would triple the cost of a
#: ``record_phase``.
_FLUSH_THRESHOLD = 2048


class _Span:
    """Reusable context manager returned by :meth:`Telemetry.span`."""

    __slots__ = ("_telemetry", "_name", "_start")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._telemetry.record_phase(self._name, self._start, perf_counter())


class Telemetry:
    """In-process telemetry sink; see the module docstring.

    ``capture_spans`` additionally keeps every phase duration as an
    individual ``(name, start, duration)`` span event (perf-counter
    seconds), feeding the Chrome-trace exporter; ``max_spans`` bounds that
    list.
    """

    def __init__(
        self,
        *,
        capture_spans: bool = False,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        if max_spans < 0:
            raise ConfigurationError(f"max_spans must be >= 0, got {max_spans}")
        self.capture_spans = capture_spans
        self.max_spans = max_spans
        self.counters: Dict[str, int] = {}
        self.dropped_spans = 0
        #: Optional per-job flight recorder (:mod:`repro.obs.flight`); the
        #: engine attaches a :class:`~repro.obs.flight.FlightObserver` when
        #: this is set, so spec-built instrumented runs can carry the job
        #: lifecycle log alongside the aggregate instruments.
        self.flight: Optional[Any] = None
        self._gauges: Dict[str, Moments] = {}
        self._phases: Dict[str, Moments] = {}
        self._pending: Dict[str, List[float]] = {}
        self._pending_gauges: Dict[str, List[float]] = {}
        self._spans: List[Tuple[str, float, float]] = []

    #: Monotonic interval timer (the timing seam) — instrumentation sites
    #: read ``tel.now()`` so every wall-clock read stays behind the sink.
    now = staticmethod(perf_counter)

    # -- intake ----------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Fold one sampled value into gauge ``name`` (batched, like
        phases: a list append per sample, bulk Welford at flush)."""
        pending = self._pending_gauges.get(name)
        if pending is None:
            pending = self._pending_gauges[name] = []
        pending.append(float(value))
        if len(pending) >= _FLUSH_THRESHOLD:
            self._flush_gauge(name)

    def record_phase(self, name: str, start: float, end: float) -> None:
        """Record one timed occurrence of phase ``name``.

        ``start``/``end`` are :meth:`now` readings; the duration lands in
        the phase's ``Moments`` (batched) and, under ``capture_spans``, the
        span event list.
        """
        pending = self._pending.get(name)
        if pending is None:
            pending = self._pending[name] = []
        pending.append(end - start)
        if len(pending) >= _FLUSH_THRESHOLD:
            self._flush_phase(name)
        if self.capture_spans:
            if len(self._spans) < self.max_spans:
                self._spans.append((name, start, end - start))
            else:
                self.dropped_spans += 1

    def span(self, name: str) -> _Span:
        """Context manager timing its body as one occurrence of ``name``."""
        return _Span(self, name)

    # -- read-out --------------------------------------------------------------
    def _flush_phase(self, name: str) -> None:
        pending = self._pending.get(name)
        if not pending:
            return
        moments = self._phases.get(name)
        if moments is None:
            moments = self._phases[name] = Moments()
        moments.update(pending)
        pending.clear()

    def _flush_gauge(self, name: str) -> None:
        pending = self._pending_gauges.get(name)
        if not pending:
            return
        moments = self._gauges.get(name)
        if moments is None:
            moments = self._gauges[name] = Moments()
        moments.update(pending)
        pending.clear()

    def _flush(self) -> None:
        for name in list(self._pending):
            self._flush_phase(name)
        for name in list(self._pending_gauges):
            self._flush_gauge(name)

    def phases(self) -> Dict[str, Moments]:
        """Phase-duration moments (seconds), keyed by phase name."""
        self._flush()
        return dict(self._phases)

    def gauges(self) -> Dict[str, Moments]:
        """Gauge moments, keyed by gauge name."""
        for name in list(self._pending_gauges):
            self._flush_gauge(name)
        return dict(self._gauges)

    def span_events(self) -> List[Tuple[str, float, float]]:
        """Captured ``(name, start, duration)`` span events (seconds)."""
        return list(self._spans)

    # -- merging ---------------------------------------------------------------
    def merge(self, other: "Telemetry") -> None:
        """Fold ``other`` into this sink (associative and commutative on
        counters, gauges, and phases; span events concatenate, subject to
        this sink's cap — span starts are per-process timer readings, so
        cross-process span merges are only meaningful per shard)."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, moments in other.gauges().items():
            mine = self._gauges.get(name)
            if mine is None:
                self._gauges[name] = Moments().merge(moments)
            else:
                mine.merge(moments)
        self._flush()
        for name, moments in other.phases().items():
            mine = self._phases.get(name)
            if mine is None:
                self._phases[name] = Moments().merge(moments)
            else:
                mine.merge(moments)
        if self.capture_spans:
            for span in other.span_events():
                if len(self._spans) < self.max_spans:
                    self._spans.append(span)
                else:
                    self.dropped_spans += 1
        self.dropped_spans += other.dropped_spans

    # -- serialisation ---------------------------------------------------------
    def bundle(self) -> Dict[str, Accumulator]:
        """The sink as a mergeable accumulator bundle.

        Names are prefixed by instrument family (``counter.``, ``gauge.``,
        ``phase.``) so :func:`summarize_bundle` can reconstruct the summary
        from a bundle merged across workers.  Span events are *not* part of
        the bundle — they are a per-process profiling artifact, exported
        through :mod:`repro.obs.tracing` instead.
        """
        self._flush()
        bundle: Dict[str, Accumulator] = {}
        for name, value in self.counters.items():
            bundle[f"counter.{name}"] = SumAccumulator(total=float(value), n=1)
        for name, moments in self._gauges.items():
            bundle[f"gauge.{name}"] = moments
        for name, moments in self._phases.items():
            bundle[f"phase.{name}"] = moments
        return bundle

    def summary(self) -> Dict[str, Any]:
        """Flat JSON-serialisable summary (what campaign rows carry)."""
        return summarize_bundle(self.bundle(), dropped_spans=self.dropped_spans)


def _moments_summary(moments: Moments) -> Dict[str, Any]:
    if moments.n == 0:
        return {"n": 0, "mean": None, "min": None, "max": None}
    return {
        "n": moments.n,
        "mean": moments.mean,
        "min": moments.minimum,
        "max": moments.maximum,
    }


def _phase_summary(moments: Moments) -> Dict[str, Any]:
    if moments.n == 0:
        return {"count": 0, "total_seconds": 0.0, "mean_ms": None, "max_ms": None}
    return {
        "count": moments.n,
        "total_seconds": moments.mean * moments.n,
        "mean_ms": moments.mean * 1e3,
        "max_ms": moments.maximum * 1e3,
    }


def summarize_bundle(
    bundle: Mapping[str, Accumulator], *, dropped_spans: int = 0
) -> Dict[str, Any]:
    """Flat JSON summary of a (possibly merged) telemetry bundle."""
    counters: Dict[str, int] = {}
    gauges: Dict[str, Any] = {}
    phases: Dict[str, Any] = {}
    for name in sorted(bundle):
        accumulator = bundle[name]
        if name.startswith("counter.") and isinstance(accumulator, SumAccumulator):
            counters[name[len("counter."):]] = int(accumulator.total)
        elif name.startswith("gauge.") and isinstance(accumulator, Moments):
            gauges[name[len("gauge."):]] = _moments_summary(accumulator)
        elif name.startswith("phase.") and isinstance(accumulator, Moments):
            phases[name[len("phase."):]] = _phase_summary(accumulator)
    summary: Dict[str, Any] = {
        "counters": counters,
        "gauges": gauges,
        "phases": phases,
    }
    if dropped_spans:
        summary["dropped_spans"] = dropped_spans
    return summary


def merge_telemetry_bundles(
    bundles: Sequence[Mapping[str, Mapping[str, Any]]]
) -> Dict[str, Accumulator]:
    """Merge serialised telemetry bundles from parallel workers, union-wise.

    Unlike :func:`repro.metrics.merge_bundles` (which insists on identical
    name sets, the right contract for collector rows), telemetry instrument
    sets legitimately differ between shards — a packer phase only exists in
    shards whose scheduler ever invoked that packer — so names are merged
    where present.
    """
    merged: Dict[str, Accumulator] = {}
    for bundle in bundles:
        for name, payload in bundle.items():
            accumulator = accumulator_from_dict(payload)
            if name in merged:
                merged[name].merge(accumulator)
            else:
                merged[name] = accumulator
    return merged


# ---------------------------------------------------------------- ambient sink
_ACTIVE = threading.local()


def current_telemetry() -> Optional[Telemetry]:
    """The ambient sink of the calling thread (None when uninstrumented).

    The engine activates its sink around each scheduler invocation, so
    packers and schedulers time themselves without any telemetry parameter
    in the scheduler protocol.
    """
    return getattr(_ACTIVE, "telemetry", None)


def push_telemetry(telemetry: Optional[Telemetry]) -> Optional[Telemetry]:
    """Install ``telemetry`` as the thread's ambient sink; returns the prior."""
    previous = getattr(_ACTIVE, "telemetry", None)
    _ACTIVE.telemetry = telemetry
    return previous


_F = TypeVar("_F", bound=Callable[..., Any])


def timed_phase(name: str) -> Callable[[_F], _F]:
    """Decorator timing each call as phase ``name`` of the ambient sink.

    Near-zero when uninstrumented: one thread-local read per call.  This is
    how packer entry points (``mcb8_pack`` & co.) appear in profiles without
    the packing layer knowing about telemetry plumbing.
    """

    def decorate(function: _F) -> _F:
        @functools.wraps(function)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            telemetry = getattr(_ACTIVE, "telemetry", None)
            if telemetry is None:
                return function(*args, **kwargs)
            start = perf_counter()
            try:
                return function(*args, **kwargs)
            finally:
                telemetry.record_phase(name, start, perf_counter())

        return wrapper  # type: ignore[return-value]

    return decorate


# ------------------------------------------------------------------ spec forms
class TelemetryConfig:
    """Declarative telemetry spec: canonical dict form + ``create()``."""

    #: Stable registry identifier; concrete configs override.
    kind: str = "abstract"

    def create(self) -> Optional[Telemetry]:
        """Build the live sink this spec describes (None when disabled)."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable spec form (``type`` = ``kind``)."""
        raise NotImplementedError


def _validate_flight(flight: Optional[int]) -> None:
    if flight is not None and flight <= 0:
        raise ConfigurationError(
            f"flight recorder capacity must be a positive integer, got {flight}"
        )


def _attach_flight(telemetry: Telemetry, flight: Optional[int]) -> Telemetry:
    if flight is not None:
        # Deferred import: repro.obs.flight is a leaf over repro.exceptions
        # only, but keeping the dependency out of module scope means the
        # telemetry seam never grows import edges the core engine (which
        # imports this module during repro.core initialisation) could trip
        # over.
        from .flight import FlightRecorder

        telemetry.flight = FlightRecorder(flight)
    return telemetry


def _reject_unknown_fields(
    data: Mapping[str, Any], allowed: Iterable[str], kind: str
) -> None:
    unknown = sorted(set(data) - {"type"} - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"telemetry spec {kind!r} has unknown fields: {', '.join(unknown)}"
        )


@dataclass(frozen=True)
class NoTelemetry(TelemetryConfig):
    """Telemetry explicitly off — the spec form of the default path.

    Scenario specs demote this to an absent block entirely, so writing
    ``{"type": "off"}`` changes neither the scenario hash nor any artifact.
    """

    kind = "off"

    def create(self) -> Optional[Telemetry]:
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NoTelemetry":
        _reject_unknown_fields(data, (), cls.kind)
        return cls()


@dataclass(frozen=True)
class StatsTelemetry(TelemetryConfig):
    """Counters, gauges, and phase-timer moments — no span capture.

    The bounded-overhead instrumented mode: memory is O(instrument names)
    regardless of run length, which is what campaign cells and long-haul
    serve deployments want.

    ``flight`` (optional) additionally attaches a per-job flight recorder
    of that ring capacity (:mod:`repro.obs.flight`) — memory then grows to
    O(capacity), still bounded.
    """

    flight: Optional[int] = None

    kind = "stats"

    def __post_init__(self) -> None:
        _validate_flight(self.flight)

    def create(self) -> Optional[Telemetry]:
        return _attach_flight(Telemetry(capture_spans=False), self.flight)

    def to_dict(self) -> Dict[str, Any]:
        spec: Dict[str, Any] = {"type": self.kind}
        if self.flight is not None:
            spec["flight"] = self.flight
        return spec

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StatsTelemetry":
        _reject_unknown_fields(data, ("flight",), cls.kind)
        flight = data.get("flight")
        return cls(flight=None if flight is None else int(flight))


@dataclass(frozen=True)
class TracingTelemetry(TelemetryConfig):
    """Stats plus per-occurrence span events for the Chrome-trace exporter.

    ``flight`` behaves exactly as on :class:`StatsTelemetry`.
    """

    max_spans: int = DEFAULT_MAX_SPANS
    flight: Optional[int] = None

    kind = "tracing"

    def __post_init__(self) -> None:
        if self.max_spans < 0:
            raise ConfigurationError(
                f"max_spans must be >= 0, got {self.max_spans}"
            )
        _validate_flight(self.flight)

    def create(self) -> Optional[Telemetry]:
        return _attach_flight(
            Telemetry(capture_spans=True, max_spans=self.max_spans),
            self.flight,
        )

    def to_dict(self) -> Dict[str, Any]:
        spec: Dict[str, Any] = {"type": self.kind}
        if self.max_spans != DEFAULT_MAX_SPANS:
            spec["max_spans"] = self.max_spans
        if self.flight is not None:
            spec["flight"] = self.flight
        return spec

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TracingTelemetry":
        _reject_unknown_fields(data, ("max_spans", "flight"), cls.kind)
        flight = data.get("flight")
        return cls(
            max_spans=int(data.get("max_spans", DEFAULT_MAX_SPANS)),
            flight=None if flight is None else int(flight),
        )


#: kind -> spec class; the REG601-audited registry of this subsystem.
_TELEMETRY_TYPES: Dict[str, Any] = {}


def register_telemetry_config(kind: str, loader: Any) -> None:
    """Register a telemetry spec class under its ``kind`` (idempotent)."""
    existing = _TELEMETRY_TYPES.get(kind)
    if existing is not None and existing is not loader:
        raise ConfigurationError(
            f"telemetry spec kind {kind!r} is already registered"
        )
    _TELEMETRY_TYPES[kind] = loader


def available_telemetry_configs() -> List[str]:
    """Kinds accepted by :func:`telemetry_config_from_dict`."""
    return sorted(_TELEMETRY_TYPES)


def telemetry_config_from_dict(data: Mapping[str, Any]) -> TelemetryConfig:
    """Build a telemetry spec from its canonical dict form."""
    if not isinstance(data, Mapping) or "type" not in data:
        raise ConfigurationError(
            "telemetry spec must be an object with a 'type' field, got "
            f"{data!r}"
        )
    kind = data["type"]
    loader = _TELEMETRY_TYPES.get(kind)
    if loader is None:
        raise ConfigurationError(
            f"unknown telemetry spec type {kind!r}; known types: "
            f"{', '.join(available_telemetry_configs())}"
        )
    result = loader.from_dict(data)
    assert isinstance(result, TelemetryConfig)
    return result


def as_telemetry(value: Any) -> Optional[Telemetry]:
    """Coerce a config field to a live sink (or None when disabled).

    Accepts None, a live :class:`Telemetry` (callers that want to read the
    sink afterwards pass their own), a :class:`TelemetryConfig`, or a spec
    dict.
    """
    if value is None:
        return None
    if isinstance(value, Telemetry):
        return value
    if isinstance(value, TelemetryConfig):
        return value.create()
    if isinstance(value, Mapping):
        return telemetry_config_from_dict(value).create()
    raise ConfigurationError(
        "telemetry must be a Telemetry sink, a TelemetryConfig, or a spec "
        f"dict, got {type(value).__name__}"
    )


register_telemetry_config(NoTelemetry.kind, NoTelemetry)
register_telemetry_config(StatsTelemetry.kind, StatsTelemetry)
register_telemetry_config(TracingTelemetry.kind, TracingTelemetry)
