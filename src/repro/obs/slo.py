"""SLO-flavoured campaign collectors: JCT, attainment, windowed goodput.

The paper's headline metric is stretch, but operators of a real DFRS
deployment quote *service-level* numbers: job completion time (JCT)
quantiles, the fraction of jobs finishing inside their SLO deadline, and
sustained goodput.  This module adds both as ordinary campaign collectors —
``{"name": "slo", "slo_factor": 5}`` and ``{"name": "goodput",
"window_seconds": 3600}`` in a scenario's ``collectors`` list — with full
streaming support on the mergeable :mod:`repro.metrics` accumulators, so
bounded-memory campaigns over million-job traces carry them too.

**SLO attainment** uses the deadline convention of the cloud-scheduling
literature: job *j* attains its SLO iff ::

    completion_time(j) <= submit_time(j) + slo_factor * execution_time(j)

i.e. turnaround ≤ ``slo_factor`` × nominal runtime — equivalently, raw
stretch ≤ ``slo_factor``.  Materialized campaigns evaluate the predicate
exactly per job; streaming campaigns count mass at or below ``slo_factor``
in the merged stretch sketch, which is exact for jobs with nominal runtime
≥ 30 s (below that, the engine's *bounded* stretch divides by 30 s instead,
making short jobs look slightly better — the same convention every stretch
column of this repo already uses) and has the sketch's documented relative
error at the ``slo_factor`` boundary.

**Goodput** is delivered *useful* work: completed jobs only (work lost to
failure-kills or still in flight does not count), measured as
``num_tasks × cpu_need × execution_time`` CPU-seconds per completed job.
The windowed columns cut the run into fixed windows anchored at the first
submission (sharing the engine's availability windows in streaming mode)
so a soak or a diurnal trace shows throughput floors per window, not just
the whole-run mean.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

import numpy as np

from ..campaign.collectors import MetricCollector, register_collector
from ..core.observers import SimulationObserver
from ..core.records import SimulationResult
from ..exceptions import ConfigurationError
from ..metrics import Accumulator, Moments, SumAccumulator
from ..workloads.model import Workload

__all__ = ["SloCollector", "GoodputCollector"]

#: Default SLO factor: completion within 10x the job's nominal runtime.
DEFAULT_SLO_FACTOR = 10.0


class SloCollector(MetricCollector):
    """JCT quantiles and SLO attainment; see the module docstring.

    Columns: ``slo_factor``, ``slo_total``, ``slo_attained``,
    ``slo_attainment`` (fraction in [0, 1]), ``jct_mean``, ``jct_p50``,
    ``jct_p90``, ``jct_p99``, ``jct_max`` (seconds).
    """

    name = "slo"
    streaming_capable = True

    def __init__(self, *, slo_factor: float = DEFAULT_SLO_FACTOR) -> None:
        factor = float(slo_factor)
        if not np.isfinite(factor) or factor <= 0.0:
            raise ConfigurationError(
                f"slo_factor must be positive and finite, got {slo_factor!r}"
            )
        self.slo_factor = factor

    def collect(
        self,
        result: SimulationResult,
        recorders: Mapping[str, SimulationObserver],
        workload: Workload,
    ) -> Dict[str, Any]:
        turnarounds = [record.turnaround_time for record in result.jobs]
        attained = sum(
            1
            for record in result.jobs
            if record.turnaround_time
            <= self.slo_factor * record.spec.execution_time
        )
        total = len(turnarounds)
        if total:
            jct = np.asarray(turnarounds, dtype=float)
            quantiles = {
                "jct_p50": float(np.percentile(jct, 50.0)),
                "jct_p90": float(np.percentile(jct, 90.0)),
                "jct_p99": float(np.percentile(jct, 99.0)),
            }
        else:
            quantiles = {"jct_p50": 0.0, "jct_p90": 0.0, "jct_p99": 0.0}
        return {
            "slo_factor": self.slo_factor,
            "slo_total": total,
            "slo_attained": attained,
            "slo_attainment": attained / total if total else 1.0,
            "jct_mean": float(np.mean(turnarounds)) if total else 0.0,
            "jct_max": float(np.max(turnarounds)) if total else 0.0,
            **quantiles,
        }

    def stream_partials(self, result: SimulationResult) -> Dict[str, Accumulator]:
        return {"jobs": self._require_job_stats(result)}

    def stream_finalize(self, merged: Mapping[str, Any]) -> Dict[str, Any]:
        job_stats = merged["jobs"]
        turnaround = job_stats.turnaround
        sketch = job_stats.turnaround_sketch
        total = int(turnaround.n)
        # Attainment = mass at or below slo_factor in the stretch sketch
        # (raw stretch <= factor <=> turnaround <= factor x runtime; the
        # 30 s bounded-stretch floor and the sketch's relative error are the
        # two documented approximations of the streaming path).
        attained = 0
        for value, count in job_stats.stretch_sketch.bucket_masses():
            if value <= self.slo_factor:
                attained += count
            else:
                break
        return {
            "slo_factor": self.slo_factor,
            "slo_total": total,
            "slo_attained": attained,
            "slo_attainment": attained / total if total else 1.0,
            "jct_mean": float(turnaround.mean) if total else 0.0,
            "jct_p50": sketch.quantile(0.50) if total else 0.0,
            "jct_p90": sketch.quantile(0.90) if total else 0.0,
            "jct_p99": sketch.quantile(0.99) if total else 0.0,
            "jct_max": float(turnaround.maximum) if total else 0.0,
        }


class GoodputCollector(MetricCollector):
    """Whole-run and per-window goodput/throughput; see the module docstring.

    Columns: ``jobs_per_hour`` (completions over the makespan),
    ``goodput_node_seconds`` (delivered useful CPU-seconds),
    ``goodput_fraction`` (share of nominal capacity over the makespan spent
    on work that completed), ``goodput_windows``, and per-window summaries
    ``mean/min/max_window_jobs_per_hour`` and ``mean/min_window_goodput``
    (CPU-seconds per window second, i.e. mean CPUs usefully busy).

    Windows of ``window_seconds`` are anchored at the first submission.
    Materialized campaigns rebuild them from the per-job records; streaming
    campaigns read the engine's window tallies
    (``SimulationResult.goodput_window_stats``, wired by the executor
    through ``needs_engine_windows``).  Empty interior windows count as
    zero — a throughput *floor* must see the silent hour, not skip it.
    """

    name = "goodput"
    streaming_capable = True
    #: Executor hint, shared with ``availability``: streaming runs set the
    #: engine's ``availability_window_seconds`` to this width (one width per
    #: campaign — mixing collectors with different widths is rejected).
    needs_engine_windows = True

    def __init__(self, *, window_seconds: float = 3600.0) -> None:
        window = float(window_seconds)
        if not np.isfinite(window) or window <= 0.0:
            raise ConfigurationError(
                f"goodput window_seconds must be positive and finite, "
                f"got {window_seconds!r}"
            )
        self.window_seconds = window

    @staticmethod
    def _work(spec: Any) -> float:
        return float(spec.num_tasks * spec.cpu_need * spec.execution_time)

    def _row(
        self,
        *,
        completions: float,
        work: float,
        makespan: float,
        capacity: float,
        window_jobs: List[float],
        window_work: List[float],
    ) -> Dict[str, Any]:
        width = self.window_seconds
        per_hour = [count / (width / 3600.0) for count in window_jobs]
        per_second = [w / width for w in window_work]
        nominal = capacity * makespan
        return {
            "jobs_per_hour": (
                completions / (makespan / 3600.0) if makespan > 0 else 0.0
            ),
            "goodput_node_seconds": work,
            "goodput_fraction": work / nominal if nominal > 0 else 0.0,
            "goodput_windows": len(window_jobs),
            "mean_window_jobs_per_hour": (
                float(np.mean(per_hour)) if per_hour else 0.0
            ),
            "min_window_jobs_per_hour": (
                float(np.min(per_hour)) if per_hour else 0.0
            ),
            "max_window_jobs_per_hour": (
                float(np.max(per_hour)) if per_hour else 0.0
            ),
            "mean_window_goodput": (
                float(np.mean(per_second)) if per_second else 0.0
            ),
            "min_window_goodput": (
                float(np.min(per_second)) if per_second else 0.0
            ),
        }

    def collect(
        self,
        result: SimulationResult,
        recorders: Mapping[str, SimulationObserver],
        workload: Workload,
    ) -> Dict[str, Any]:
        records = result.jobs
        origin = min(
            (record.spec.submit_time for record in records), default=0.0
        )
        jobs: Dict[int, float] = {}
        work: Dict[int, float] = {}
        for record in records:
            index = int(
                (record.completion_time - origin) // self.window_seconds
            )
            jobs[index] = jobs.get(index, 0.0) + 1.0
            work[index] = work.get(index, 0.0) + self._work(record.spec)
        window_jobs, window_work = self._dense_windows(jobs, work)
        return self._row(
            completions=float(len(records)),
            work=float(sum(work.values())),
            makespan=float(result.makespan),
            capacity=float(result.cluster.total_cpu_capacity()),
            window_jobs=window_jobs,
            window_work=window_work,
        )

    @staticmethod
    def _dense_windows(
        jobs: Mapping[int, float], work: Mapping[int, float]
    ) -> Any:
        """Windows 0..max as dense lists, interior gaps explicit zeros."""
        if not jobs:
            return [], []
        top = max(jobs)
        window_jobs = [jobs.get(i, 0.0) for i in range(top + 1)]
        window_work = [work.get(i, 0.0) for i in range(top + 1)]
        return window_jobs, window_work

    def stream_partials(self, result: SimulationResult) -> Dict[str, Accumulator]:
        stats = result.goodput_window_stats
        if stats is None:
            raise ConfigurationError(
                f"collector {self.name!r} needs the engine's goodput window "
                "tallies (streaming_metrics with availability_window_seconds "
                "set; the campaign executor wires this automatically)"
            )
        jobs = {index: values[0] for index, values in stats.items()}
        work = {index: values[1] for index, values in stats.items()}
        window_jobs, window_work = self._dense_windows(jobs, work)
        # Per-window tallies pool into moments (count/mean/min/max stay
        # exact) instead of travelling per-window: the campaign merge
        # contract requires identical bundle name sets across instances.
        jobs_moments = Moments()
        jobs_moments.update(window_jobs)
        work_moments = Moments()
        work_moments.update(window_work)
        makespan = float(result.makespan)
        capacity = float(result.cluster.total_cpu_capacity())
        return {
            "completions": SumAccumulator(
                total=float(sum(window_jobs)), n=1
            ),
            "work": SumAccumulator(total=float(sum(window_work)), n=1),
            "span_seconds": SumAccumulator(total=makespan, n=1),
            "capacity_seconds": SumAccumulator(
                total=capacity * makespan, n=1
            ),
            "window_jobs": jobs_moments,
            "window_work": work_moments,
        }

    def stream_finalize(self, merged: Mapping[str, Any]) -> Dict[str, Any]:
        width = self.window_seconds
        window_jobs = merged["window_jobs"]
        window_work = merged["window_work"]
        span = float(merged["span_seconds"].total)
        capacity_seconds = float(merged["capacity_seconds"].total)
        completions = float(merged["completions"].total)
        work = float(merged["work"].total)
        row = {
            "jobs_per_hour": (
                completions / (span / 3600.0) if span > 0 else 0.0
            ),
            "goodput_node_seconds": work,
            "goodput_fraction": (
                work / capacity_seconds if capacity_seconds > 0 else 0.0
            ),
            "goodput_windows": int(window_jobs.n),
            "mean_window_jobs_per_hour": 0.0,
            "min_window_jobs_per_hour": 0.0,
            "max_window_jobs_per_hour": 0.0,
            "mean_window_goodput": 0.0,
            "min_window_goodput": 0.0,
        }
        if window_jobs.n:
            row["mean_window_jobs_per_hour"] = window_jobs.mean / (
                width / 3600.0
            )
            row["min_window_jobs_per_hour"] = window_jobs.minimum / (
                width / 3600.0
            )
            row["max_window_jobs_per_hour"] = window_jobs.maximum / (
                width / 3600.0
            )
        if window_work.n:
            row["mean_window_goodput"] = window_work.mean / width
            row["min_window_goodput"] = window_work.minimum / width
        return row


register_collector(SloCollector.name, SloCollector)
register_collector(GoodputCollector.name, GoodputCollector)
