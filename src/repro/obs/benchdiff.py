"""Regression gating between fresh and committed benchmark payloads.

``repro-dfrs obs bench-diff FRESH COMMITTED`` pairs up the entries of two
``BENCH_*.json`` artifacts (``BENCH_engine.json``, ``BENCH_serve.json``,
``BENCH_soak.json`` — any file whose entries carry a throughput-rate field)
and fails when a fresh rate fell more than ``--threshold`` (default 25%)
below its committed counterpart.  CI runs it after regenerating the bench
artifacts so a PR that quietly halves engine throughput turns the bench job
red instead of silently rewriting the committed baseline.

Matching is tolerant by design: entries are keyed on the intersection of
the identity fields both sides actually carry (``--key`` overrides the
candidate set), entries only one side has are reported and skipped, and
when several committed entries share a key the *slowest* one is the
baseline — committed artifacts may accumulate repeats, and a fresh run
should never be punished for beating the best of them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError

__all__ = [
    "DEFAULT_KEY_FIELDS",
    "DEFAULT_THRESHOLD",
    "RATE_FIELDS",
    "BenchComparison",
    "compare_bench_payloads",
    "diff_bench_files",
    "load_bench_entries",
]

#: Identity fields tried, in order, when pairing entries (``--key`` overrides).
DEFAULT_KEY_FIELDS: Tuple[str, ...] = (
    "benchmark",
    "algorithm",
    "workload",
    "num_jobs",
)

#: Throughput-rate fields recognised, in preference order.  An entry's rate
#: is the first of these it carries; entries with neither are skipped (they
#: measure something other than throughput).
RATE_FIELDS: Tuple[str, ...] = (
    "events_per_wall_sec",
    "placements_per_wall_sec",
)

DEFAULT_THRESHOLD = 0.25


@dataclass(frozen=True)
class BenchComparison:
    """One matched fresh/committed entry pair and its verdict."""

    key: Tuple[Tuple[str, Any], ...]
    rate_field: str
    fresh_rate: float
    committed_rate: float

    @property
    def ratio(self) -> float:
        """fresh / committed; >1.0 means the fresh run is faster."""
        if self.committed_rate <= 0.0:
            return 1.0
        return self.fresh_rate / self.committed_rate

    def regressed(self, threshold: float) -> bool:
        return self.ratio < 1.0 - threshold

    def describe(self) -> str:
        label = ", ".join(f"{name}={value}" for name, value in self.key)
        return (
            f"[{label}] {self.rate_field}: "
            f"fresh {self.fresh_rate:.1f} vs committed "
            f"{self.committed_rate:.1f} ({self.ratio * 100.0:.1f}%)"
        )


def load_bench_entries(path: str) -> List[Dict[str, Any]]:
    """Entries of one bench artifact, whatever its outer shape.

    Accepts the committed ``{"entries": [...]}`` wrapper, a bare list, or a
    single entry dict (``BENCH_soak.json`` is one run, not a sweep).
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and isinstance(payload.get("entries"), list):
        entries = payload["entries"]
    elif isinstance(payload, list):
        entries = payload
    elif isinstance(payload, dict):
        entries = [payload]
    else:
        raise ConfigurationError(
            f"{path}: expected a bench payload (dict or list), "
            f"got {type(payload).__name__}"
        )
    for entry in entries:
        if not isinstance(entry, dict):
            raise ConfigurationError(
                f"{path}: bench entries must be objects, "
                f"got {type(entry).__name__}"
            )
    return list(entries)


def _entry_rate(entry: Dict[str, Any]) -> Optional[Tuple[str, float]]:
    for field in RATE_FIELDS:
        value = entry.get(field)
        if isinstance(value, (int, float)):
            return field, float(value)
    return None


def _entry_key(
    entry: Dict[str, Any], key_fields: Sequence[str]
) -> Tuple[Tuple[str, Any], ...]:
    return tuple(
        (name, entry[name]) for name in key_fields if name in entry
    )


def compare_bench_payloads(
    fresh: Sequence[Dict[str, Any]],
    committed: Sequence[Dict[str, Any]],
    *,
    key_fields: Sequence[str] = DEFAULT_KEY_FIELDS,
) -> Tuple[List[BenchComparison], List[str]]:
    """Pair fresh entries with committed baselines.

    Returns ``(comparisons, notes)`` where ``notes`` lists everything that
    could not be compared (missing counterpart, no rate field) — reported,
    never fatal, so adding a brand-new benchmark doesn't break the gate.
    """
    notes: List[str] = []
    # Slowest committed rate per key: repeats accumulate in committed
    # artifacts and the weakest baseline is the conservative one.
    baselines: Dict[Tuple[Tuple[str, Any], ...], Tuple[str, float]] = {}
    for entry in committed:
        rate = _entry_rate(entry)
        if rate is None:
            continue
        key = _entry_key(entry, key_fields)
        existing = baselines.get(key)
        if existing is None or rate[1] < existing[1]:
            baselines[key] = rate
    comparisons: List[BenchComparison] = []
    for entry in fresh:
        key = _entry_key(entry, key_fields)
        label = ", ".join(f"{n}={v}" for n, v in key) or "<unkeyed entry>"
        rate = _entry_rate(entry)
        if rate is None:
            notes.append(f"skipped [{label}]: no rate field")
            continue
        baseline = baselines.get(key)
        if baseline is None:
            notes.append(f"skipped [{label}]: no committed counterpart")
            continue
        if baseline[0] != rate[0]:
            notes.append(
                f"skipped [{label}]: rate field mismatch "
                f"(fresh {rate[0]}, committed {baseline[0]})"
            )
            continue
        comparisons.append(
            BenchComparison(
                key=key,
                rate_field=rate[0],
                fresh_rate=rate[1],
                committed_rate=baseline[1],
            )
        )
    return comparisons, notes


def diff_bench_files(
    fresh_path: str,
    committed_path: str,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    key_fields: Sequence[str] = DEFAULT_KEY_FIELDS,
) -> Tuple[List[BenchComparison], List[BenchComparison], List[str]]:
    """Compare two bench artifacts; returns (all, regressed, notes)."""
    if not 0.0 < threshold < 1.0:
        raise ConfigurationError(
            f"threshold must be in (0, 1), got {threshold}"
        )
    fresh = load_bench_entries(fresh_path)
    committed = load_bench_entries(committed_path)
    comparisons, notes = compare_bench_payloads(
        fresh, committed, key_fields=key_fields
    )
    regressed = [c for c in comparisons if c.regressed(threshold)]
    return comparisons, regressed, notes
