"""Long-haul soak harness for the serving stack.

``repro-dfrs soak`` runs the *whole* serve deployment — live
:class:`~repro.serve.service.SchedulerService`, JSON-lines
:class:`~repro.serve.protocol.ServiceServer` on a real socket, accelerated
:class:`~repro.core.clock.WallClock` — for a configured wall-clock budget,
feeding it a trace paced to the accelerated clock exactly as a live client
would.  While the service runs, a scraper coroutine periodically connects
like any monitoring agent and pulls the ``metrics`` and ``metrics-prom``
ops plus this process's RSS into a JSON-lines health log; at the end the
harness asserts the three health invariants a long-haul deployment must
hold:

* **flat memory** — the least-squares slope of RSS over wall time stays
  under ``max_rss_slope_mb_per_min`` (a leaky recorder or unbounded ledger
  shows up here long before OOM);
* **sustained throughput** — placements per wall second stay above
  ``min_placements_per_sec`` (a degrading scheduler hot loop shows up as a
  sagging rate);
* **bounded backlog** — the instantaneous queue depth never exceeds
  ``max_queue_depth`` (admission plus capacity keep up with offered load).

The result is a :class:`SoakReport`: every sample, every violation, and a
``BENCH_soak.json``-shaped payload (written by
``benchmarks/test_bench_soak.py`` and compared across PRs by
``repro-dfrs obs bench-diff``).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.clock import WallClock
from ..core.cluster import Cluster
from ..core.engine import SimulationConfig
from ..exceptions import ConfigurationError
from ..serve.loadtest import peak_rss_mb
from ..serve.protocol import ServiceServer
from ..serve.service import SchedulerService
from ..traces.source import JobSource

__all__ = ["SoakConfig", "SoakReport", "run_soak"]


def current_rss_mb() -> Optional[float]:
    """Resident set size of this process right now, in MiB.

    Reads ``/proc/self/statm`` (Linux); falls back to the peak-RSS
    high-water mark elsewhere, which degrades the slope check to a
    monotone-but-safe approximation.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            pages = int(handle.read().split()[1])
        import resource  # local import: POSIX-only, like peak_rss_mb

        page_size = resource.getpagesize()
        return pages * page_size / (1024.0 * 1024.0)
    except (OSError, ValueError, ImportError, IndexError):
        return peak_rss_mb()


def rss_slope_mb_per_min(samples: List[Tuple[float, float]]) -> float:
    """Least-squares slope of ``(wall_seconds, rss_mb)`` samples, MB/minute.

    Fewer than two samples (or zero wall-time variance) slope 0.0 — a soak
    too short to measure is reported flat, not failing.
    """
    n = len(samples)
    if n < 2:
        return 0.0
    mean_t = sum(t for t, _ in samples) / n
    mean_r = sum(r for _, r in samples) / n
    var_t = sum((t - mean_t) ** 2 for t, _ in samples)
    if var_t <= 0.0:
        return 0.0
    cov = sum((t - mean_t) * (r - mean_r) for t, r in samples)
    return cov / var_t * 60.0


@dataclass(frozen=True)
class SoakConfig:
    """Knobs of one soak run; defaults match the CI smoke."""

    #: Simulated seconds per wall second — the soak's time compression.
    acceleration: float = 3600.0
    #: Wall-clock budget; the feeder stops submitting at this point and the
    #: run drains.  The trace ending earlier also ends the run.
    wall_seconds: float = 60.0
    #: Seconds between health scrapes.
    scrape_interval_seconds: float = 2.0
    #: Cap on the post-budget drain (None = wait for every admitted job;
    #: a timed-out drain is reported, not a health violation — long tails
    #: are a property of the trace, not of the serving stack).
    max_drain_seconds: Optional[float] = None
    #: Health invariants (see module docstring).
    max_rss_slope_mb_per_min: float = 30.0
    min_placements_per_sec: float = 1.0
    max_queue_depth: int = 10_000
    #: SLO factor forwarded to the service.
    slo_factor: float = 10.0

    def __post_init__(self) -> None:
        if self.acceleration <= 0.0:
            raise ConfigurationError(
                f"acceleration must be > 0, got {self.acceleration}"
            )
        if self.wall_seconds <= 0.0:
            raise ConfigurationError(
                f"wall_seconds must be > 0, got {self.wall_seconds}"
            )
        if self.scrape_interval_seconds <= 0.0:
            raise ConfigurationError(
                f"scrape_interval_seconds must be > 0, got "
                f"{self.scrape_interval_seconds}"
            )


@dataclass
class SoakReport:
    """Everything one soak run measured."""

    algorithm: str
    workload: str
    nodes: int
    acceleration: float
    wall_seconds: float
    sim_seconds: float
    submitted: int
    accepted: int
    placements: int
    completions: int
    placements_per_wall_sec: float
    #: One dict per scrape: wall/sim time, rss, counters, queue depth.
    samples: List[Dict[str, Any]] = field(default_factory=list)
    #: Human-readable invariant violations; empty == healthy.
    violations: List[str] = field(default_factory=list)
    rss_slope_mb_per_min: float = 0.0
    max_queue_depth_seen: int = 0
    final_rss_mb: Optional[float] = None
    slo_attainment: float = 1.0
    #: Last scraped Prometheus page (proves the metrics-prom op stayed up).
    prometheus: Optional[str] = None
    #: False when the post-budget drain hit ``max_drain_seconds``.
    drained: bool = True

    @property
    def healthy(self) -> bool:
        return not self.violations

    def bench_payload(self) -> Dict[str, Any]:
        """The committed ``BENCH_soak.json`` shape."""
        return {
            "benchmark": "serve-soak",
            "algorithm": self.algorithm,
            "workload": self.workload,
            "nodes": self.nodes,
            "acceleration": self.acceleration,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "jobs_submitted": self.submitted,
            "jobs_accepted": self.accepted,
            "placements": self.placements,
            "completions": self.completions,
            "placements_per_wall_sec": self.placements_per_wall_sec,
            "samples": len(self.samples),
            "rss_slope_mb_per_min": self.rss_slope_mb_per_min,
            "max_queue_depth": self.max_queue_depth_seen,
            "peak_rss_mb": peak_rss_mb(),
            "slo_attainment": self.slo_attainment,
            "drained": self.drained,
            "healthy": self.healthy,
            "violations": list(self.violations),
        }


async def _scrape(
    host: str, port: int, op: str
) -> Dict[str, Any]:
    """One JSON-lines request against the running soak server."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write((json.dumps({"op": op}) + "\n").encode("utf-8"))
        await writer.drain()
        line = await reader.readline()
    finally:
        writer.close()
    reply = json.loads(line.decode("utf-8"))
    assert isinstance(reply, dict)
    if not reply.get("ok"):
        raise ConfigurationError(
            f"soak scrape op {op!r} failed: {reply.get('error')!r}"
        )
    return reply


async def _run_soak_async(
    cluster: Cluster,
    algorithm: str,
    source: JobSource,
    config: SoakConfig,
    engine_config: Optional[SimulationConfig],
    health_log: Optional[str],
    on_sample: Optional[Any],
) -> SoakReport:
    service = SchedulerService(
        cluster,
        algorithm,
        config=engine_config
        or SimulationConfig(streaming_metrics=True),
        slo_factor=config.slo_factor,
    )
    clock = WallClock(config.acceleration)
    specs = iter(source.jobs(cluster))
    try:
        first = next(specs)
    except StopIteration:
        raise ConfigurationError("soak trace is empty") from None
    await service.start(clock=clock, start_time=first.submit_time)
    server = ServiceServer(service, host="127.0.0.1", port=0)
    host, port = await server.start()

    loop = asyncio.get_running_loop()
    deadline = loop.time() + config.wall_seconds
    samples: List[Dict[str, Any]] = []
    rss_series: List[Tuple[float, float]] = []
    log_handle = open(health_log, "w", encoding="utf-8") if health_log else None
    prometheus: Optional[str] = None
    stop_scraping = asyncio.Event()

    async def feeder() -> None:
        spec: Optional[Any] = first
        while spec is not None and loop.time() < deadline:
            delay = clock.wall_seconds_until(spec.submit_time)
            if delay > 0.0:
                # Cap each sleep at the remaining budget so trace gaps past
                # the deadline end the feed instead of overshooting it.
                remaining = deadline - loop.time()
                if remaining <= 0.0:
                    break
                await asyncio.sleep(min(delay, remaining))
                if clock.now() < spec.submit_time:
                    continue
            await service.submit(
                num_tasks=spec.num_tasks,
                cpu_need=spec.cpu_need,
                mem_requirement=spec.mem_requirement,
                execution_time=spec.execution_time,
                job_id=spec.job_id,
                submit_time=max(spec.submit_time, clock.now()),
            )
            spec = next(specs, None)

    async def scraper() -> None:
        nonlocal prometheus
        while not stop_scraping.is_set():
            try:
                await asyncio.wait_for(
                    stop_scraping.wait(),
                    timeout=config.scrape_interval_seconds,
                )
                break
            except asyncio.TimeoutError:
                pass
            metrics = (await _scrape(host, port, "metrics"))["metrics"]
            prom_reply = await _scrape(host, port, "metrics-prom")
            prometheus = prom_reply["prom"]
            wall = service.wall_seconds()
            rss = current_rss_mb()
            sample = {
                "wall_seconds": wall,
                "sim_time": metrics["sim_time"],
                "rss_mb": rss,
                "submitted": metrics["submitted"],
                "accepted": metrics["accepted"],
                "placements": metrics["placements"],
                "completions": metrics["completions"],
                "queue_depth": metrics["queue_depth"],
                "placements_per_wall_sec": metrics["placements_per_wall_sec"],
                "slo_attainment": metrics["slo_attainment"],
                "prom_bytes": len(prometheus),
            }
            samples.append(sample)
            if rss is not None:
                rss_series.append((wall, rss))
            if log_handle is not None:
                log_handle.write(json.dumps(sample, sort_keys=True) + "\n")
                log_handle.flush()
            if on_sample is not None:
                on_sample(sample)

    feed_task = loop.create_task(feeder())
    scrape_task = loop.create_task(scraper())
    drained = True
    try:
        await asyncio.wait_for(
            feed_task, timeout=config.wall_seconds + 60.0
        )
        # Budget reached (or trace exhausted): drain what was admitted so
        # completion counters are meaningful, then stop scraping.
        if config.max_drain_seconds is None:
            await service.drain()
        else:
            try:
                await asyncio.wait_for(
                    service.drain(), timeout=config.max_drain_seconds
                )
            except asyncio.TimeoutError:
                drained = False
    finally:
        stop_scraping.set()
        await scrape_task
        if log_handle is not None:
            log_handle.close()
        await server.close()
    snapshot = service.metrics_snapshot()
    await service.shutdown()

    wall = service.wall_seconds()
    report = SoakReport(
        algorithm=algorithm,
        workload=source.default_name(),
        nodes=cluster.num_nodes,
        acceleration=config.acceleration,
        wall_seconds=wall,
        sim_seconds=float(snapshot["sim_time"]),
        submitted=int(snapshot["submitted"]),
        accepted=int(snapshot["accepted"]),
        placements=int(snapshot["placements"]),
        completions=int(snapshot["completions"]),
        placements_per_wall_sec=(
            float(snapshot["placements"]) / wall if wall > 0.0 else 0.0
        ),
        samples=samples,
        rss_slope_mb_per_min=rss_slope_mb_per_min(rss_series),
        max_queue_depth_seen=max(
            (int(s["queue_depth"]) for s in samples), default=0
        ),
        final_rss_mb=rss_series[-1][1] if rss_series else None,
        slo_attainment=float(snapshot["slo_attainment"]),
        prometheus=prometheus,
        drained=drained,
    )
    _check_invariants(report, config)
    return report


def _check_invariants(report: SoakReport, config: SoakConfig) -> None:
    if report.rss_slope_mb_per_min > config.max_rss_slope_mb_per_min:
        report.violations.append(
            f"rss slope {report.rss_slope_mb_per_min:.2f} MB/min exceeds "
            f"bound {config.max_rss_slope_mb_per_min:.2f}"
        )
    if report.placements_per_wall_sec < config.min_placements_per_sec:
        report.violations.append(
            f"placement rate {report.placements_per_wall_sec:.2f}/s below "
            f"floor {config.min_placements_per_sec:.2f}/s"
        )
    if report.max_queue_depth_seen > config.max_queue_depth:
        report.violations.append(
            f"queue depth peaked at {report.max_queue_depth_seen}, above "
            f"ceiling {config.max_queue_depth}"
        )


def run_soak(
    cluster: Cluster,
    algorithm: str,
    source: JobSource,
    *,
    config: Optional[SoakConfig] = None,
    engine_config: Optional[SimulationConfig] = None,
    health_log: Optional[str] = None,
    on_sample: Optional[Any] = None,
) -> SoakReport:
    """Run one soak (see module docstring) and return its report.

    ``health_log`` appends one JSON line per scrape; ``on_sample`` is an
    optional callback receiving each sample dict as it lands (the CLI's
    progress line).  The caller decides what a non-healthy report means —
    the CI smoke fails on it, exploratory runs just print the violations.
    """
    return asyncio.run(
        _run_soak_async(
            cluster,
            algorithm,
            source,
            config or SoakConfig(),
            engine_config,
            health_log,
            on_sample,
        )
    )
