"""Observability: telemetry, span tracing, profiling, Prometheus exposition.

The eighth subsystem contract.  Three pieces, all opt-in and all
near-zero-overhead when disabled:

* :class:`Telemetry` — the in-process sink of named counters, gauges, and
  phase timers, backed by the mergeable :mod:`repro.metrics` accumulators
  so per-worker telemetry merges exactly across campaign pools
  (:mod:`repro.obs.telemetry`);
* :func:`trace_span` and the Chrome trace-event / Perfetto exporter
  (:mod:`repro.obs.tracing`), driven by ``repro-dfrs profile run|replay``;
* the Prometheus text-exposition renderer (:mod:`repro.obs.prometheus`),
  served by the ``metrics-prom`` op of the serve JSON-lines protocol.

The second observability layer builds on that seam:

* the per-job **flight recorder** (:mod:`repro.obs.flight`) — a bounded
  ring of causal lifecycle events (submit/start/preempt/migrate/...),
  enabled via ``{"type": "stats", "flight": <capacity>}`` specs, exported
  as JSON lines or per-job Perfetto lanes;
* **SLO / goodput collectors** (:mod:`repro.obs.slo`) — streaming-capable
  campaign collectors for JCT, SLO attainment, and windowed goodput;
* the **soak harness** (:mod:`repro.obs.soak`) — a long-haul accelerated
  serve driver with scraped health samples and invariant checks, and the
  bench-regression differ (:mod:`repro.obs.benchdiff`).

Declarative spec forms (``{"type": "off" | "stats" | "tracing"}``) travel
in scenario specs and :class:`~repro.core.engine.SimulationConfig`; the
``type`` registry is REG601-audited like every other subsystem.  The
wall-clock *seam* of the engine lives in :mod:`repro.obs.timing` — the only
module ``repro.core`` may read interval timers through (policed by OBS701).
"""

from .flight import (
    FlightEvent,
    FlightObserver,
    FlightRecorder,
    flight_trace_events,
    write_flight_jsonl,
    write_flight_trace,
)
from .prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
    render_summary_dict,
    render_telemetry,
)
from .telemetry import (
    NoTelemetry,
    StatsTelemetry,
    Telemetry,
    TelemetryConfig,
    TracingTelemetry,
    as_telemetry,
    available_telemetry_configs,
    current_telemetry,
    merge_telemetry_bundles,
    push_telemetry,
    register_telemetry_config,
    summarize_bundle,
    telemetry_config_from_dict,
    timed_phase,
)
from .tracing import chrome_trace_events, trace_span, write_chrome_trace

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "FlightEvent",
    "FlightObserver",
    "FlightRecorder",
    "NoTelemetry",
    "StatsTelemetry",
    "Telemetry",
    "TelemetryConfig",
    "TracingTelemetry",
    "as_telemetry",
    "available_telemetry_configs",
    "chrome_trace_events",
    "current_telemetry",
    "flight_trace_events",
    "merge_telemetry_bundles",
    "push_telemetry",
    "register_telemetry_config",
    "render_prometheus",
    "render_summary_dict",
    "render_telemetry",
    "summarize_bundle",
    "telemetry_config_from_dict",
    "timed_phase",
    "trace_span",
    "write_chrome_trace",
    "write_flight_jsonl",
    "write_flight_trace",
]
