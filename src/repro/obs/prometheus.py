"""Prometheus text-exposition rendering (format version 0.0.4).

Turns the serve layer's metrics snapshot — and, when the service is
instrumented, its telemetry sink — into the plain-text exposition format a
Prometheus server scrapes.  The serve JSON-lines protocol exposes the
rendered text through the ``metrics-prom`` op (see
:mod:`repro.serve.protocol`), and ``repro-dfrs loadtest --prom-out`` writes
one final exposition for soak-run artifacts.

Only the stable subset of the format is emitted: ``# HELP`` / ``# TYPE``
headers, counter/gauge/summary samples, ``quantile`` labels on the latency
summary.  Metric names are sanitised to the Prometheus charset and rendered
in sorted order so the output is deterministic for a given snapshot.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .telemetry import Telemetry

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "render_summary_dict",
    "render_telemetry",
]

#: What a conforming scrape endpoint advertises for this exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_FIRST = re.compile(r"^[^a-zA-Z_:]")

#: Snapshot fields exported as counters (monotonic tallies), with help text.
_SNAPSHOT_COUNTERS: Tuple[Tuple[str, str], ...] = (
    ("submitted", "Jobs submitted to the service"),
    ("accepted", "Jobs accepted by admission control"),
    ("rejected", "Jobs rejected by admission control"),
    ("shed", "Jobs shed by admission control"),
    ("cancelled", "Jobs cancelled by clients"),
    ("starts", "Job start placements applied"),
    ("resumes", "Job resume placements applied"),
    ("migrations", "Job migrations applied"),
    ("preemptions", "Job preemptions applied"),
    ("completions", "Jobs completed"),
    ("placements", "Placement actions applied (starts + resumes + migrations)"),
    ("slo_attained", "Completed jobs that met their SLO deadline"),
    ("slo_total", "Completed jobs evaluated against the SLO deadline"),
)

#: Snapshot fields exported as gauges, with help text.
_SNAPSHOT_GAUGES: Tuple[Tuple[str, str], ...] = (
    ("sim_time", "Current simulated time in seconds"),
    ("wall_seconds", "Wall-clock seconds since the service started"),
    ("placements_per_wall_sec", "Sustained placement rate"),
    ("queue_depth", "Jobs currently pending placement"),
    ("slo_factor", "SLO deadline multiplier over nominal runtime"),
    ("slo_attainment", "Fraction of completed jobs that met their SLO"),
)


def _metric_name(*parts: str) -> str:
    """Join and sanitise name parts to the Prometheus metric charset."""
    name = "_".join(_INVALID_CHARS.sub("_", part) for part in parts if part)
    return _INVALID_FIRST.sub("_", name) if name else "_"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _format_value(value: float) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _sample(
    lines: List[str],
    name: str,
    metric_type: str,
    help_text: str,
    samples: List[Tuple[str, float]],
) -> None:
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {metric_type}")
    for labels, value in samples:
        lines.append(f"{name}{labels} {_format_value(value)}")


def render_telemetry(
    telemetry: Telemetry, *, prefix: str = "repro"
) -> List[str]:
    """Exposition lines of one telemetry sink (counters, gauges, phases)."""
    lines: List[str] = []
    for name in sorted(telemetry.counters):
        metric = _metric_name(prefix, name) + "_total"
        _sample(
            lines, metric, "counter",
            f"Telemetry counter {name}",
            [("", float(telemetry.counters[name]))],
        )
    for name, moments in sorted(telemetry.gauges().items()):
        if moments.n == 0:
            continue
        metric = _metric_name(prefix, name)
        _sample(
            lines, metric, "gauge",
            f"Telemetry gauge {name} (mean of sampled values)",
            [("", moments.mean)],
        )
    phases = {
        name: moments
        for name, moments in sorted(telemetry.phases().items())
        if moments.n > 0
    }
    if phases:
        base = _metric_name(prefix, "phase")
        _sample(
            lines, base + "_seconds_total", "counter",
            "Cumulative wall-clock seconds per telemetry phase",
            [
                (f'{{phase="{_escape_label(name)}"}}', moments.mean * moments.n)
                for name, moments in phases.items()
            ],
        )
        _sample(
            lines, base + "_count", "counter",
            "Occurrences per telemetry phase",
            [
                (f'{{phase="{_escape_label(name)}"}}', float(moments.n))
                for name, moments in phases.items()
            ],
        )
    return lines


def render_prometheus(
    snapshot: Mapping[str, Any],
    *,
    telemetry: Optional[Telemetry] = None,
    prefix: str = "repro_serve",
) -> str:
    """Render a service metrics snapshot as a Prometheus exposition.

    ``snapshot`` is :meth:`repro.serve.SchedulerService.metrics_snapshot`
    output (the ``bundle`` field is ignored — accumulators serialise for
    merging, not scraping).  ``telemetry`` appends the engine sink's
    instruments under the ``repro_engine`` namespace.
    """
    lines: List[str] = []
    for field, help_text in _SNAPSHOT_COUNTERS:
        if field in snapshot:
            _sample(
                lines, _metric_name(prefix, field) + "_total", "counter",
                help_text, [("", float(snapshot[field]))],
            )
    for field, help_text in _SNAPSHOT_GAUGES:
        if field in snapshot:
            _sample(
                lines, _metric_name(prefix, field), "gauge",
                help_text, [("", float(snapshot[field]))],
            )
    latency = snapshot.get("queue_latency")
    if isinstance(latency, Mapping) and latency:
        metric = _metric_name(prefix, "queue_latency_seconds")
        quantiles: List[Tuple[str, float]] = []
        for key, quantile in (("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99")):
            if key in latency:
                quantiles.append(
                    (f'{{quantile="{quantile}"}}', float(latency[key]))
                )
        if quantiles:
            _sample(
                lines, metric, "summary",
                "Queue latency (submission to first placement), sketched "
                "quantiles", quantiles,
            )
        for stat in ("mean", "max"):
            if stat in latency:
                _sample(
                    lines, metric + "_" + stat, "gauge",
                    f"Queue latency {stat} in seconds",
                    [("", float(latency[stat]))],
                )
    jct = snapshot.get("jct")
    if isinstance(jct, Mapping) and jct:
        metric = _metric_name(prefix, "jct_seconds")
        quantiles = []
        for key, quantile in (("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99")):
            if key in jct:
                quantiles.append(
                    (f'{{quantile="{quantile}"}}', float(jct[key]))
                )
        if quantiles:
            _sample(
                lines, metric, "summary",
                "Job completion time (submission to completion), sketched "
                "quantiles", quantiles,
            )
        for stat in ("mean", "max"):
            if stat in jct:
                _sample(
                    lines, metric + "_" + stat, "gauge",
                    f"Job completion time {stat} in seconds",
                    [("", float(jct[stat]))],
                )
    if telemetry is not None:
        lines.extend(render_telemetry(telemetry, prefix="repro_engine"))
    return "\n".join(lines) + "\n" if lines else ""


def render_summary_dict(
    summary: Mapping[str, Any], *, prefix: str = "repro"
) -> str:
    """Exposition of a telemetry *summary* dict (merged campaign rows).

    The summary shape is :meth:`repro.obs.Telemetry.summary` /
    :func:`repro.obs.summarize_bundle` output; useful for exporting a
    campaign cell's merged telemetry without a live sink.
    """
    lines: List[str] = []
    counters: Dict[str, Any] = dict(summary.get("counters", {}))
    for name in sorted(counters):
        _sample(
            lines, _metric_name(prefix, name) + "_total", "counter",
            f"Telemetry counter {name}", [("", float(counters[name]))],
        )
    phases: Dict[str, Any] = dict(summary.get("phases", {}))
    if phases:
        base = _metric_name(prefix, "phase")
        _sample(
            lines, base + "_seconds_total", "counter",
            "Cumulative wall-clock seconds per telemetry phase",
            [
                (
                    f'{{phase="{_escape_label(name)}"}}',
                    float(phases[name].get("total_seconds", 0.0)),
                )
                for name in sorted(phases)
            ],
        )
        _sample(
            lines, base + "_count", "counter",
            "Occurrences per telemetry phase",
            [
                (
                    f'{{phase="{_escape_label(name)}"}}',
                    float(phases[name].get("count", 0)),
                )
                for name in sorted(phases)
            ],
        )
    return "\n".join(lines) + "\n" if lines else ""
