"""Scenario builders for the repository's standard studies.

Every experiment driver in :mod:`repro.experiments` is a thin wrapper that
builds its scenario(s) here, runs them through a
:class:`~repro.campaign.executor.Campaign`, and formats the rows.  The
builders take the familiar :class:`~repro.experiments.config.ExperimentConfig`
so that scale knobs (traces, jobs, loads, seeds) stay in one place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from .scenario import CollectorSpec, Hpc2nLikeSource, LublinSource, Scenario

if TYPE_CHECKING:  # runtime import would cycle through the driver package
    from ..experiments.config import ExperimentConfig

__all__ = [
    "lublin_source",
    "scaled_scenario",
    "unscaled_scenario",
    "hpc2n_scenario",
    "figure1_scenario",
    "table1_scenarios",
    "table2_scenario",
    "extensions_scenario",
    "period_sweep_scenario",
    "utilization_scenario",
    "timing_scenario",
    "compare_scenario",
]

_STRETCH = (CollectorSpec("stretch"),)
_STRETCH_AND_COSTS = (CollectorSpec("stretch"), CollectorSpec("costs"))


def lublin_source(config: "ExperimentConfig", *, num_traces: Optional[int] = None) -> LublinSource:
    """The synthetic-trace source of an experiment configuration."""
    return LublinSource(
        num_traces=config.num_traces if num_traces is None else num_traces,
        num_jobs=config.num_jobs,
        seed_base=config.seed_base,
    )


def scaled_scenario(
    name: str,
    config: "ExperimentConfig",
    *,
    penalty_seconds: float,
    algorithms: Optional[Sequence[str]] = None,
    collectors: Tuple[CollectorSpec, ...] = _STRETCH,
    loads: Optional[Sequence[float]] = None,
) -> Scenario:
    """Synthetic traces swept over offered-load levels."""
    return Scenario(
        name=name,
        source=lublin_source(config),
        cluster=config.cluster,
        algorithms=tuple(algorithms if algorithms is not None else config.algorithms),
        penalty_seconds=penalty_seconds,
        sweep=(("load", tuple(loads if loads is not None else config.load_levels)),),
        collectors=collectors,
    )


def unscaled_scenario(
    name: str,
    config: "ExperimentConfig",
    *,
    penalty_seconds: float,
    algorithms: Optional[Sequence[str]] = None,
    collectors: Tuple[CollectorSpec, ...] = _STRETCH,
) -> Scenario:
    """Synthetic traces straight out of the Lublin model (no load scaling)."""
    return Scenario(
        name=name,
        source=lublin_source(config),
        cluster=config.cluster,
        algorithms=tuple(algorithms if algorithms is not None else config.algorithms),
        penalty_seconds=penalty_seconds,
        collectors=collectors,
    )


def hpc2n_scenario(
    name: str,
    config: "ExperimentConfig",
    *,
    penalty_seconds: float,
    algorithms: Optional[Sequence[str]] = None,
) -> Scenario:
    """HPC2N-like 1-week segments (the real-world Table I column).

    The scenario cluster is the HPC2N machine itself, not ``config.cluster``
    — the paper's real-world column simulates the traced system.
    """
    from ..workloads.hpc2n import HPC2N_CLUSTER

    return Scenario(
        name=name,
        source=Hpc2nLikeSource(
            weeks=config.hpc2n_weeks,
            jobs_per_week=config.hpc2n_jobs_per_week,
            seed_base=config.seed_base,
        ),
        cluster=HPC2N_CLUSTER,
        algorithms=tuple(algorithms if algorithms is not None else config.algorithms),
        penalty_seconds=penalty_seconds,
    )


def figure1_scenario(config: "ExperimentConfig", *, penalty_seconds: float) -> Scenario:
    """The Figure 1 sweep: degradation factor vs. offered load."""
    return scaled_scenario("figure1", config, penalty_seconds=penalty_seconds)


def table1_scenarios(config: "ExperimentConfig", *, penalty_seconds: float) -> Dict[str, Scenario]:
    """The three Table I workload families, keyed by column name."""
    return {
        "scaled": scaled_scenario(
            "table1-scaled", config, penalty_seconds=penalty_seconds
        ),
        "unscaled": unscaled_scenario(
            "table1-unscaled", config, penalty_seconds=penalty_seconds
        ),
        "real": hpc2n_scenario(
            "table1-real", config, penalty_seconds=penalty_seconds
        ),
    }


def table2_scenario(
    config: "ExperimentConfig",
    *,
    penalty_seconds: float,
    algorithms: Sequence[str],
    high_load_threshold: float,
) -> Scenario:
    """The Table II study: preemption/migration costs under high load."""
    loads = [load for load in config.load_levels if load >= high_load_threshold]
    if not loads:
        raise ValueError(
            "Table II needs at least one load level >= "
            f"{high_load_threshold}; got {config.load_levels}"
        )
    return scaled_scenario(
        "table2",
        config,
        penalty_seconds=penalty_seconds,
        algorithms=algorithms,
        collectors=(CollectorSpec("costs"),),
        loads=loads,
    )


def extensions_scenario(
    config: "ExperimentConfig", *, penalty_seconds: float, algorithms: Sequence[str]
) -> Scenario:
    """The extension-scheduler comparison over the scaled synthetic traces."""
    if not algorithms:
        raise ConfigurationError("algorithms must not be empty")
    return scaled_scenario(
        "extensions", config, penalty_seconds=penalty_seconds, algorithms=algorithms
    )


def period_sweep_scenario(
    config: "ExperimentConfig",
    *,
    base_algorithm: str,
    periods: Sequence[float],
    load: float,
    penalty_seconds: float,
) -> Scenario:
    """The scheduling-period sensitivity sweep for one periodic algorithm."""
    if not periods:
        raise ConfigurationError("periods must not be empty")
    for period in periods:
        if period <= 0:
            raise ConfigurationError(f"periods must be > 0, got {period}")
    return Scenario(
        name="period-sweep",
        source=lublin_source(config),
        cluster=config.cluster,
        algorithms=(f"{base_algorithm}-{{period}}",),
        penalty_seconds=penalty_seconds,
        sweep=(("load", (load,)), ("period", tuple(int(p) for p in periods))),
        collectors=_STRETCH_AND_COSTS,
    )


def utilization_scenario(
    config: "ExperimentConfig",
    *,
    load: float,
    penalty_seconds: float,
    algorithms: Optional[Sequence[str]] = None,
    power_options: Optional[Dict[str, float]] = None,
) -> Scenario:
    """The utilization/energy/fairness study on one synthetic trace."""
    names = tuple(algorithms if algorithms is not None else config.algorithms)
    if not names:
        raise ConfigurationError("algorithms must not be empty")
    utilization = CollectorSpec(
        "utilization", options=tuple(sorted((power_options or {}).items()))
    )
    return Scenario(
        name="utilization",
        source=lublin_source(config, num_traces=1),
        cluster=config.cluster,
        algorithms=names,
        penalty_seconds=penalty_seconds,
        sweep=(("load", (load,)),),
        collectors=(CollectorSpec("stretch"), utilization),
    )


def timing_scenario(config: "ExperimentConfig", *, algorithm: str) -> Scenario:
    """The §V scheduling-time study on the unscaled synthetic traces."""
    return Scenario(
        name="timing",
        source=lublin_source(config),
        cluster=config.cluster,
        algorithms=(algorithm,),
        penalty_seconds=0.0,
        collectors=(CollectorSpec("timing"),),
    )


def compare_scenario(config: "ExperimentConfig", *, load: float) -> Scenario:
    """Single-trace exploratory comparison (the ``compare`` subcommand)."""
    return Scenario(
        name="compare",
        source=lublin_source(config, num_traces=1),
        cluster=config.cluster,
        algorithms=tuple(config.algorithms),
        penalty_seconds=config.penalty_seconds,
        sweep=(("load", (load,)),),
        collectors=_STRETCH_AND_COSTS,
    )
