"""Pluggable metric collectors backed by :mod:`repro.core.observers`.

A collector turns one finished simulation into a flat metrics dictionary —
the cells of a :class:`~repro.campaign.result.RunRecord`.  Collectors declare
which engine recorders they need by *name* (resolved through
:func:`repro.core.observers.create_recorder`), which keeps campaign tasks
picklable: worker processes receive collector names and options, instantiate
the recorders locally, attach them to the simulator, and evaluate the
collectors in-process so only plain dictionaries travel back over the pool.

Metric values are floats, ints, or lists of floats (for raw sample vectors
such as scheduler timings); everything must survive a JSON round trip, which
is what makes the executor's run cache and the CSV/JSON exporters lossless.

Streaming campaigns (``Campaign(streaming=True)``) use a second, two-phase
protocol on collectors that declare ``streaming_capable``:
``stream_partials`` turns one streaming-metrics
:class:`~repro.core.records.SimulationResult` into a bundle of mergeable
:class:`repro.metrics.Accumulator` objects (what workers ship back over the
pool), and ``stream_finalize`` turns the bundle merged across a cell's
instances into the flat metrics row.  Collectors that fundamentally need the
full per-job population (raw timing vectors, utilization traces) keep
``streaming_capable = False`` and are rejected with a targeted error when a
streaming campaign requests them; ``fairness`` streams via the stretch
moments (exact Jain) and quantile-sketch bucket masses (bounded-error Gini
and p95).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.observers import SimulationObserver, UtilizationRecorder
from ..core.records import SimulationResult
from ..exceptions import ConfigurationError
from ..metrics import Accumulator, JobMetricsAccumulator, Moments, SumAccumulator
from ..workloads.model import Workload

__all__ = [
    "MetricCollector",
    "StretchCollector",
    "CostCollector",
    "TimingCollector",
    "FairnessCollector",
    "UtilizationCollector",
    "AvailabilityCollector",
    "available_collectors",
    "create_collector",
    "register_collector",
]


class MetricCollector:
    """Base collector: subclass, set ``name``/``recorders``, override ``collect``.

    ``recorders`` lists the observer names (see
    :func:`repro.core.observers.available_recorders`) that must be attached to
    the simulator for this collector; ``collect`` receives them back, keyed by
    name, together with the finished result and the workload that produced it.
    """

    name: str = "base"
    recorders: Tuple[str, ...] = ()
    #: True when the collector implements the two-phase streaming protocol
    #: (``stream_partials`` / ``stream_finalize``) and therefore works in
    #: bounded-memory campaigns.
    streaming_capable: bool = False

    def collect(
        self,
        result: SimulationResult,
        recorders: Mapping[str, SimulationObserver],
        workload: Workload,
    ) -> Dict[str, Any]:
        raise NotImplementedError

    def stream_partials(self, result: SimulationResult) -> Dict[str, Accumulator]:
        """Mergeable partials of one streaming-metrics run (worker side)."""
        raise ConfigurationError(
            f"metric collector {self.name!r} does not support streaming "
            "campaigns (it needs the full per-job population)"
        )

    def stream_finalize(
        self, merged: Mapping[str, Accumulator]
    ) -> Dict[str, Any]:
        """Flat metrics row from partials merged across a cell's instances."""
        raise ConfigurationError(
            f"metric collector {self.name!r} does not support streaming campaigns"
        )

    def _require_job_stats(self, result: SimulationResult) -> "JobMetricsAccumulator":
        if result.job_stats is None:
            raise ConfigurationError(
                f"collector {self.name!r} needs a streaming-metrics result "
                "(SimulationConfig(streaming_metrics=True)) to build partials"
            )
        return result.job_stats


class StretchCollector(MetricCollector):
    """Headline stretch/turnaround metrics — the default collector.

    In streaming mode the row additionally carries the sketched stretch
    quantiles (``stretch_p50``/``p90``/``p99``, within the sketch's
    documented relative-error bound) merged exactly across the cell's
    instances; ``max_stretch`` and ``num_jobs`` stay exact.
    """

    name = "stretch"
    streaming_capable = True

    def collect(
        self,
        result: SimulationResult,
        recorders: Mapping[str, SimulationObserver],
        workload: Workload,
    ) -> Dict[str, Any]:
        return {
            "max_stretch": result.max_stretch,
            "mean_stretch": result.mean_stretch,
            "mean_turnaround": result.mean_turnaround,
            "makespan": result.makespan,
            "num_jobs": result.num_jobs,
        }

    def stream_partials(self, result: SimulationResult) -> Dict[str, Accumulator]:
        job_stats = self._require_job_stats(result)
        makespan = Moments()
        makespan.add(result.makespan)
        return {"jobs": job_stats, "makespan": makespan}

    def stream_finalize(self, merged: Mapping[str, Any]) -> Dict[str, Any]:
        summary = merged["jobs"].summary()
        summary["num_jobs"] = int(summary.get("num_jobs", 0))
        worst = merged["jobs"].worst_stretch.items()
        if worst:
            # The id of the worst-stretch job (within its instance, when the
            # cell merges several) — the first thing to pull out of a trace
            # when a campaign row shows a pathological maximum.
            summary["worst_job_id"] = int(worst[0][1])
        makespan = merged["makespan"]
        # One makespan per instance: report the mean (what the non-streaming
        # summary table would average) and the worst case.
        summary["makespan"] = makespan.mean if makespan.count else 0.0
        summary["max_makespan"] = makespan.maximum if makespan.count else 0.0
        return summary


class CostCollector(MetricCollector):
    """Preemption/migration cost metrics (the Table II columns).

    Streaming mode pools the raw tallies (counts, GB moved, simulated
    seconds, jobs) across the cell's instances and re-derives the ratios
    from the pooled totals, so the merged row is the cost profile of the
    concatenated runs rather than a mean of per-run ratios.
    """

    name = "costs"
    streaming_capable = True

    def collect(
        self,
        result: SimulationResult,
        recorders: Mapping[str, SimulationObserver],
        workload: Workload,
    ) -> Dict[str, Any]:
        return {
            "pmtn_bandwidth_gb_per_sec": result.preemption_bandwidth_gb_per_sec(),
            "migr_bandwidth_gb_per_sec": result.migration_bandwidth_gb_per_sec(),
            "pmtn_per_hour": result.preemptions_per_hour(),
            "migr_per_hour": result.migrations_per_hour(),
            "pmtn_per_job": result.preemptions_per_job(),
            "migr_per_job": result.migrations_per_job(),
            # Platform failure impact (zero on static platforms): node-down
            # events applied, and jobs killed by the "resubmit" policy —
            # checkpointed ("migrate") victims show up in the pmtn columns.
            "node_failures": result.costs.node_failures,
            "failure_job_kills": result.costs.failure_job_kills,
            # Overhead-model charges (zero without an overhead model).
            "overhead_events": result.costs.overhead_events,
            "overhead_seconds": result.costs.overhead_seconds,
        }

    def stream_partials(self, result: SimulationResult) -> Dict[str, Accumulator]:
        def tally(value: float) -> SumAccumulator:
            return SumAccumulator(total=float(value), n=1)

        return {
            "pmtn_count": tally(result.costs.preemption_count),
            "migr_count": tally(result.costs.migration_count),
            "pmtn_gb": tally(result.costs.preemption_gb),
            "migr_gb": tally(result.costs.migration_gb),
            "node_failures": tally(result.costs.node_failures),
            "failure_job_kills": tally(result.costs.failure_job_kills),
            "overhead_events": tally(result.costs.overhead_events),
            "overhead_seconds": tally(result.costs.overhead_seconds),
            "jobs": tally(result.num_jobs),
            "seconds": tally(result.makespan),
        }

    def stream_finalize(self, merged: Mapping[str, Any]) -> Dict[str, Any]:
        seconds = max(merged["seconds"].total, 1e-9)
        hours = seconds / 3600.0
        jobs = max(1.0, merged["jobs"].total)
        return {
            "pmtn_bandwidth_gb_per_sec": merged["pmtn_gb"].total / seconds,
            "migr_bandwidth_gb_per_sec": merged["migr_gb"].total / seconds,
            "pmtn_per_hour": merged["pmtn_count"].total / hours,
            "migr_per_hour": merged["migr_count"].total / hours,
            "pmtn_per_job": merged["pmtn_count"].total / jobs,
            "migr_per_job": merged["migr_count"].total / jobs,
            "node_failures": int(merged["node_failures"].total),
            "failure_job_kills": int(merged["failure_job_kills"].total),
            "overhead_events": int(merged["overhead_events"].total),
            "overhead_seconds": merged["overhead_seconds"].total,
        }


class TimingCollector(MetricCollector):
    """Raw per-event scheduler timings and job inter-arrival gaps (§V study)."""

    name = "timing"

    def collect(
        self,
        result: SimulationResult,
        recorders: Mapping[str, SimulationObserver],
        workload: Workload,
    ) -> Dict[str, Any]:
        submits = sorted(spec.submit_time for spec in workload.jobs)
        return {
            "scheduler_times": [float(value) for value in result.scheduler_times],
            "scheduler_job_counts": [
                int(value) for value in result.scheduler_job_counts
            ],
            "interarrivals": np.diff(submits).tolist(),
        }


class FairnessCollector(MetricCollector):
    """Per-job stretch fairness indices (Jain, Gini, tail percentile).

    The exact path (default campaigns) is unchanged: indices over the
    materialized per-job stretches.  In streaming campaigns the collector
    ships the engine's :class:`~repro.metrics.JobMetricsAccumulator` as its
    partial and derives the row from the merged accumulator: Jain's index is
    **exact** (it needs only the stretch moments, which merge exactly);
    Gini and p95 come from the stretch quantile sketch's bucket masses and
    carry the sketch's documented relative-error bound.
    """

    name = "fairness"
    streaming_capable = True

    def collect(
        self,
        result: SimulationResult,
        recorders: Mapping[str, SimulationObserver],
        workload: Workload,
    ) -> Dict[str, Any]:
        from ..analysis.fairness import stretch_fairness

        report = stretch_fairness(result)
        return {
            "jain_stretch": report.jain_stretch,
            "gini_stretch": report.gini_stretch,
            "p95_stretch": report.p95_stretch,
        }

    def stream_partials(self, result: SimulationResult) -> Dict[str, Accumulator]:
        return {"jobs": self._require_job_stats(result)}

    def stream_finalize(self, merged: Mapping[str, Any]) -> Dict[str, Any]:
        from ..analysis.fairness import streaming_stretch_fairness

        return streaming_stretch_fairness(merged["jobs"])


class UtilizationCollector(MetricCollector):
    """Busy-node / CPU-allocation profile plus the node-power energy model.

    Needs the ``utilization`` recorder.  The power-model watts are collector
    options so that scenarios can carry a non-default
    :class:`~repro.analysis.energy.NodePowerModel` declaratively.

    In streaming campaigns the collector ships the engine's time-decayed
    busy-node accumulator (a :class:`~repro.metrics.TimeWeightedValue`, fed
    at every event advance) instead of the full utilization trace: the
    busy-node integral, mean, and peak are **exact**, and the energy model is
    re-derived from the pooled node-second totals.  Only
    ``mean_cpu_allocated`` is unavailable — it needs the per-allocation CPU
    trace, which bounded memory cannot keep.
    """

    name = "utilization"
    recorders = ("utilization",)
    streaming_capable = True

    def __init__(
        self,
        *,
        busy_watts: Optional[float] = None,
        idle_watts: Optional[float] = None,
        off_watts: Optional[float] = None,
    ) -> None:
        # None means "use NodePowerModel's own default" — the defaults are
        # deliberately not duplicated here.
        self.busy_watts = busy_watts
        self.idle_watts = idle_watts
        self.off_watts = off_watts

    def collect(
        self,
        result: SimulationResult,
        recorders: Mapping[str, SimulationObserver],
        workload: Workload,
    ) -> Dict[str, Any]:
        from ..analysis.energy import NodePowerModel, energy_from_recorder
        from ..analysis.fairness import stretch_fairness
        from ..analysis.timeseries import busy_nodes_series, cpu_allocated_series

        recorder = recorders["utilization"]
        assert isinstance(recorder, UtilizationRecorder)
        busy = busy_nodes_series(recorder)
        cpu = cpu_allocated_series(recorder)
        options = {
            key: value
            for key, value in (
                ("busy_watts", self.busy_watts),
                ("idle_watts", self.idle_watts),
                ("off_watts", self.off_watts),
            )
            if value is not None
        }
        model = NodePowerModel(**options)
        energy = energy_from_recorder(
            recorder, workload.cluster, algorithm=result.algorithm, model=model
        )
        fairness = stretch_fairness(result)
        return {
            "mean_busy_nodes": busy.mean(),
            "peak_busy_nodes": recorder.peak_busy_nodes(),
            "mean_cpu_allocated": cpu.mean(),
            "energy_duration_seconds": energy.duration_seconds,
            "energy_busy_node_seconds": energy.busy_node_seconds,
            "energy_idle_node_seconds": energy.idle_node_seconds,
            "energy_always_on_joules": energy.always_on_joules,
            "energy_power_down_joules": energy.power_down_joules,
            "energy_savings_fraction": energy.savings_fraction,
            "jain_stretch": fairness.jain_stretch,
            "gini_stretch": fairness.gini_stretch,
            "p95_stretch": fairness.p95_stretch,
            # Energy under the platform's own per-node-class power draw (0.0
            # unless the platform declares node watts) — distinct from the
            # collector's idealized NodePowerModel columns above.
            "platform_energy_joules": result.energy_joules,
        }

    def stream_partials(self, result: SimulationResult) -> Dict[str, Accumulator]:
        job_stats = self._require_job_stats(result)
        busy = result.busy_node_stats
        if busy is None:
            raise ConfigurationError(
                f"collector {self.name!r} needs the engine's busy-node "
                "accumulator (SimulationConfig(streaming_metrics=True)) to "
                "build partials"
            )
        def tally(value: float) -> SumAccumulator:
            return SumAccumulator(total=float(value), n=1)

        return {
            "busy": busy,
            "node_seconds": tally(result.cluster.num_nodes * result.makespan),
            "platform_energy": tally(result.energy_joules),
            "jobs": job_stats,
        }

    def stream_finalize(self, merged: Mapping[str, Any]) -> Dict[str, Any]:
        from ..analysis.energy import NodePowerModel
        from ..analysis.fairness import streaming_stretch_fairness

        options = {
            key: value
            for key, value in (
                ("busy_watts", self.busy_watts),
                ("idle_watts", self.idle_watts),
                ("off_watts", self.off_watts),
            )
            if value is not None
        }
        model = NodePowerModel(**options)
        busy = merged["busy"]
        total_node_seconds = merged["node_seconds"].total
        busy_node_seconds = min(busy.integral, total_node_seconds)
        idle_node_seconds = total_node_seconds - busy_node_seconds
        always_on = (
            busy_node_seconds * model.busy_watts
            + idle_node_seconds * model.idle_watts
        )
        power_down = (
            busy_node_seconds * model.busy_watts
            + idle_node_seconds * model.off_watts
        )
        savings = (always_on - power_down) / always_on if always_on > 0 else 0.0
        row: Dict[str, Any] = {
            "mean_busy_nodes": busy.mean,
            "peak_busy_nodes": busy.maximum if busy.n else 0.0,
            "energy_duration_seconds": busy.duration,
            "energy_busy_node_seconds": busy_node_seconds,
            "energy_idle_node_seconds": idle_node_seconds,
            "energy_always_on_joules": always_on,
            "energy_power_down_joules": power_down,
            "energy_savings_fraction": savings,
        }
        row.update(streaming_stretch_fairness(merged["jobs"]))
        row["platform_energy_joules"] = merged["platform_energy"].total
        return row


class AvailabilityCollector(MetricCollector):
    """Delivered vs. nominal CPU-hours under the platform availability trace.

    ``availability`` is the fraction of the cluster's nominal CPU capacity
    actually deliverable over the measured span (1.0 on static platforms);
    ``downtime_cpu_hours`` is what the failure trace took away.  The window
    columns summarise per-window availability over fixed windows of
    ``window_seconds`` anchored at the first submission — the worst window
    (``min_window_availability``) is the number an operator SLO would quote.

    Needs the ``availability`` recorder in materialized campaigns.  In
    streaming campaigns the engine feeds time-weighted up-capacity
    accumulators directly (``SimulationConfig(availability_window_seconds)``,
    wired by the executor through ``needs_engine_windows``): the whole-run
    integral merges exactly across instances, and per-window ratios pool
    into moments — count, mean, and min stay exact.
    """

    name = "availability"
    recorders = ("availability",)
    streaming_capable = True
    #: Executor hint: streaming runs must set the engine's
    #: ``availability_window_seconds`` to this collector's window width.
    needs_engine_windows = True

    def __init__(self, *, window_seconds: float = 3600.0) -> None:
        window = float(window_seconds)
        if not np.isfinite(window) or window <= 0.0:
            raise ConfigurationError(
                f"availability window_seconds must be positive and finite, "
                f"got {window_seconds!r}"
            )
        self.window_seconds = window

    def collect(
        self,
        result: SimulationResult,
        recorders: Mapping[str, SimulationObserver],
        workload: Workload,
    ) -> Dict[str, Any]:
        from ..core.observers import AvailabilityRecorder

        recorder = recorders["availability"]
        assert isinstance(recorder, AvailabilityRecorder)
        # Plain floats throughout: metric values must survive a JSON round
        # trip (np scalars from capacity sums do not).
        capacity = float(recorder.nominal_cpu_capacity())
        duration = float(recorder.duration())
        delivered = float(recorder.delivered_cpu_seconds())
        nominal = capacity * duration
        ratios = self._window_ratios(recorder, capacity)
        return {
            "availability": delivered / nominal if nominal > 0 else 1.0,
            "delivered_cpu_hours": delivered / 3600.0,
            "nominal_cpu_hours": nominal / 3600.0,
            "downtime_cpu_hours": max(0.0, nominal - delivered) / 3600.0,
            "availability_windows": len(ratios),
            "min_window_availability": float(min(ratios)) if ratios else 1.0,
            "mean_window_availability": (
                float(np.mean(ratios)) if ratios else 1.0
            ),
        }

    def _window_ratios(self, recorder: Any, capacity: float) -> List[float]:
        """Per-window delivered/nominal ratios from the recorder's segments.

        Segments are split at window boundaries (anchored at the start of
        the measured span), so each window integrates exactly its share; a
        trailing partial window is ratioed against its own covered span.
        """
        if capacity <= 0:
            return []
        width = self.window_seconds
        origin = recorder.start_time
        delivered: Dict[int, float] = {}
        covered: Dict[int, float] = {}
        for start, end, up in recorder.segments:
            t = float(start)
            end = float(end)
            up = float(up)
            while t < end - 1e-12:
                index = int((t - origin) // width)
                boundary = origin + (index + 1) * width
                seg_end = end if boundary <= t else min(end, boundary)
                delivered[index] = delivered.get(index, 0.0) + up * (seg_end - t)
                covered[index] = covered.get(index, 0.0) + (seg_end - t)
                t = seg_end
        return [
            delivered[index] / (capacity * covered[index])
            for index in sorted(covered)
            if covered[index] > 0
        ]

    def stream_partials(self, result: SimulationResult) -> Dict[str, Accumulator]:
        avail = result.avail_node_stats
        if avail is None:
            raise ConfigurationError(
                f"collector {self.name!r} needs the engine's availability "
                "accumulator (SimulationConfig(streaming_metrics=True)) to "
                "build partials"
            )
        capacity = Moments()
        capacity.add(float(result.cluster.total_cpu_capacity()))
        # Per-window availability ratios pool into moments instead of
        # travelling as per-window accumulators: instances of different
        # lengths produce different window sets, and the campaign merge
        # contract (merge_bundles) requires identical name sets.
        windows = Moments()
        total = float(result.cluster.total_cpu_capacity())
        if result.avail_window_stats and total > 0:
            for stats in result.avail_window_stats.values():
                if stats.duration > 0:
                    windows.add(stats.mean / total)
        return {"delivered": avail, "capacity": capacity, "windows": windows}

    def stream_finalize(self, merged: Mapping[str, Any]) -> Dict[str, Any]:
        delivered = merged["delivered"]
        capacity = float(merged["capacity"].mean) if merged["capacity"].n else 0.0
        duration = float(delivered.duration)
        delivered_cpu_seconds = float(delivered.integral)
        nominal = capacity * duration
        windows = merged["windows"]
        return {
            "availability": (
                delivered_cpu_seconds / nominal if nominal > 0 else 1.0
            ),
            "delivered_cpu_hours": delivered_cpu_seconds / 3600.0,
            "nominal_cpu_hours": nominal / 3600.0,
            "downtime_cpu_hours": (
                max(0.0, nominal - delivered_cpu_seconds) / 3600.0
            ),
            "availability_windows": int(windows.n),
            "min_window_availability": (
                float(windows.minimum) if windows.n else 1.0
            ),
            "mean_window_availability": (
                float(windows.mean) if windows.n else 1.0
            ),
        }


_COLLECTOR_FACTORIES: Dict[str, Callable[..., MetricCollector]] = {
    "stretch": StretchCollector,
    "costs": CostCollector,
    "timing": TimingCollector,
    "fairness": FairnessCollector,
    "utilization": UtilizationCollector,
    "availability": AvailabilityCollector,
}


def available_collectors() -> List[str]:
    """Names accepted by :func:`create_collector`."""
    return sorted(_COLLECTOR_FACTORIES)


def register_collector(name: str, factory: Callable[..., MetricCollector]) -> None:
    """Register a collector factory under a short name (idempotent per factory)."""
    existing = _COLLECTOR_FACTORIES.get(name)
    if existing is not None and existing is not factory:
        raise ConfigurationError(f"collector name {name!r} is already registered")
    _COLLECTOR_FACTORIES[name] = factory


def create_collector(name: str, **options: Any) -> MetricCollector:
    """Instantiate a registered collector from its name and options."""
    try:
        factory = _COLLECTOR_FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown metric collector {name!r}; known collectors: "
            f"{', '.join(available_collectors())}"
        ) from None
    try:
        return factory(**options)
    except TypeError as error:
        raise ConfigurationError(
            f"invalid options for collector {name!r}: {error}"
        ) from None


# The SLO/goodput collectors live with the observability layer but register
# here, so every process that can name a collector (campaign workers
# included) sees the complete registry.  The import must stay below the
# definitions above — repro.obs.slo imports MetricCollector and
# register_collector back from this module.
from ..obs import slo as _slo  # noqa: E402  (registration side effect)

del _slo
