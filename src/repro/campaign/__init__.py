"""Declarative Scenario/Campaign execution layer.

Every study in this repository — the paper's artifacts and the ablation and
extension studies alike — is one shape repeated: a workload source crossed
with a cluster, an algorithm set, a penalty, and sweep axes, executed over
the ``instances × algorithms`` grid and aggregated.  This package makes that
shape *data*:

* :class:`Scenario` — a frozen, hashable description of one study (workload
  source, cluster, algorithms, penalty, sweep axes, metric collectors,
  engine options);
* :class:`Campaign` — the executor: expands a scenario into its run grid,
  fans it out over the :mod:`repro.experiments.parallel` pool, attaches the
  requested metric collectors (backed by :mod:`repro.core.observers`
  recorders), and returns a typed :class:`CampaignResult`;
* :class:`CampaignResult` — tidy per-run rows plus aggregation helpers, with
  JSON/CSV persistence via :mod:`repro.analysis.export`;
* resumable run-caching keyed by the stable :func:`scenario_hash`.

The eight experiment drivers in :mod:`repro.experiments` are thin scenario
builders over this API (see :mod:`repro.campaign.studies`), and the
``repro-dfrs run`` subcommand executes a scenario described in a JSON/TOML
file with zero new driver code.

``Campaign(streaming=True)`` (CLI ``--streaming-metrics``) swaps in the
bounded-memory execution path: per-instance :class:`repro.traces.JobSource`
streams feed :meth:`~repro.core.engine.Simulator.run_stream` with online
metrics (:mod:`repro.metrics`), and per-cell accumulator partials merge
exactly across the worker pool — campaign memory is independent of trace
length.
"""

from .collectors import (
    AvailabilityCollector,
    CostCollector,
    FairnessCollector,
    MetricCollector,
    StretchCollector,
    TimingCollector,
    UtilizationCollector,
    available_collectors,
    create_collector,
    register_collector,
)
from .executor import Campaign, export_campaign_artifacts
from .result import CampaignResult, RunRecord
from .scenario import (
    Cell,
    CollectorSpec,
    CustomSource,
    GeneratorSource,
    Hpc2nLikeSource,
    LublinSource,
    Scenario,
    SwfSource,
    TransformSource,
    WorkloadSource,
    scenario_from_dict,
    scenario_hash,
)
from .spec import load_scenario, scenario_from_spec_text
from . import studies

__all__ = [
    "Campaign",
    "CampaignResult",
    "Cell",
    "AvailabilityCollector",
    "CollectorSpec",
    "CostCollector",
    "CustomSource",
    "FairnessCollector",
    "GeneratorSource",
    "Hpc2nLikeSource",
    "LublinSource",
    "MetricCollector",
    "RunRecord",
    "Scenario",
    "StretchCollector",
    "SwfSource",
    "TimingCollector",
    "TransformSource",
    "UtilizationCollector",
    "WorkloadSource",
    "available_collectors",
    "create_collector",
    "export_campaign_artifacts",
    "load_scenario",
    "register_collector",
    "scenario_from_dict",
    "scenario_from_spec_text",
    "scenario_hash",
    "studies",
]
