"""Typed campaign results: tidy per-run rows plus aggregation helpers.

A :class:`CampaignResult` holds one :class:`RunRecord` per executed
``(cell, instance, algorithm)`` run, in deterministic grid order (cell-major,
then instance, then algorithm).  Rows are tidy: sweep-axis values live in
``params``, measured values in ``metrics``, which makes the result directly
exportable to CSV/JSON (via :mod:`repro.analysis.export`) and reloadable with
full fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    TextIO,
    Tuple,
    Union,
)

import numpy as np

from ..core.metrics import DegradationStats, aggregate_degradation, degradation_factors
from ..exceptions import ConfigurationError, ReproError

__all__ = ["RunRecord", "CampaignResult"]


@dataclass(frozen=True)
class RunRecord:
    """Outcome of one simulation run: one tidy row of a campaign."""

    cell_index: int
    instance_index: int
    workload: str
    algorithm: str
    params: Tuple[Tuple[str, Any], ...] = ()
    metrics: Mapping[str, Any] = field(default_factory=dict)

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def metric(self, name: str) -> Any:
        try:
            return self.metrics[name]
        except KeyError:
            raise ConfigurationError(
                f"run {self.key()!r} recorded no metric {name!r}; available: "
                f"{', '.join(sorted(self.metrics))}"
            ) from None

    def key(self) -> str:
        """Stable cache/export key of this run within its scenario."""
        return f"{self.cell_index}/{self.instance_index}/{self.algorithm}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cell_index": self.cell_index,
            "instance_index": self.instance_index,
            "workload": self.workload,
            "algorithm": self.algorithm,
            "params": [[axis, value] for axis, value in self.params],
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        return cls(
            cell_index=int(data["cell_index"]),
            instance_index=int(data["instance_index"]),
            workload=str(data["workload"]),
            algorithm=str(data["algorithm"]),
            params=tuple((axis, value) for axis, value in data.get("params", ())),
            metrics=dict(data.get("metrics", {})),
        )


@dataclass
class CampaignResult:
    """Everything one campaign run produced, in analysis-ready form."""

    scenario: Dict[str, Any]
    scenario_hash: str
    rows: List[RunRecord] = field(default_factory=list)

    @property
    def name(self) -> str:
        return str(self.scenario.get("name", "campaign"))

    def __len__(self) -> int:
        return len(self.rows)

    # -- selection -------------------------------------------------------------
    def algorithms(self) -> List[str]:
        """Algorithm names in first-seen (grid) order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.algorithm, None)
        return list(seen)

    def axes(self) -> List[str]:
        """Sweep axis names in first-seen order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            for axis, _ in row.params:
                seen.setdefault(axis, None)
        return list(seen)

    def select(
        self,
        *,
        algorithm: Optional[str] = None,
        where: Optional[Callable[[RunRecord], bool]] = None,
        **params: Any,
    ) -> List[RunRecord]:
        """Rows matching an algorithm, arbitrary predicate, and/or axis values."""
        selected = []
        for row in self.rows:
            if algorithm is not None and row.algorithm != algorithm:
                continue
            if params:
                row_params = row.params_dict()
                if any(row_params.get(axis) != value for axis, value in params.items()):
                    continue
            if where is not None and not where(row):
                continue
            selected.append(row)
        return selected

    def metric_values(self, metric: str, **filters: Any) -> List[Any]:
        """Metric values of the selected rows, in grid order."""
        return [row.metric(metric) for row in self.select(**filters)]

    # -- per-instance grouping and degradation ---------------------------------
    def instances(self, **filters: Any) -> List[Dict[str, RunRecord]]:
        """Group rows into per-``(cell, instance)`` algorithm→row mappings.

        Groups come back in grid order, algorithms within each group in run
        order — mirroring the legacy
        :class:`~repro.experiments.runner.InstanceResult` structure.
        """
        grouped: Dict[Tuple[int, int], Dict[str, RunRecord]] = {}
        for row in self.select(**filters):
            grouped.setdefault((row.cell_index, row.instance_index), {})[
                row.algorithm
            ] = row
        return [grouped[key] for key in sorted(grouped)]

    def degradation_factors(self, **filters: Any) -> List[Dict[str, float]]:
        """Per-instance degradation factors (needs the ``max_stretch`` metric)."""
        return [
            degradation_factors(
                {name: row.metric("max_stretch") for name, row in group.items()}
            )
            for group in self.instances(**filters)
        ]

    def degradation_stats(self, **filters: Any) -> Dict[str, DegradationStats]:
        """Avg/std/max degradation factor per algorithm over selected instances."""
        pooled: Dict[str, List[float]] = {}
        for factors in self.degradation_factors(**filters):
            for algorithm, factor in factors.items():
                pooled.setdefault(algorithm, []).append(factor)
        return {
            algorithm: aggregate_degradation(values)
            for algorithm, values in pooled.items()
        }

    def degradation_averages(self, **filters: Any) -> Dict[str, float]:
        """Average degradation factor per algorithm (the Figure 1 ordinate)."""
        return {
            name: stats.average
            for name, stats in self.degradation_stats(**filters).items()
        }

    # -- generic aggregation ---------------------------------------------------
    def aggregate(
        self,
        metric: str,
        *,
        by: str = "algorithm",
        statistic: str = "mean",
        **filters: Any,
    ) -> Dict[Any, float]:
        """Aggregate one scalar metric grouped by ``algorithm`` or a sweep axis.

        ``statistic`` is one of ``mean``, ``std``, ``max``, ``min``; group
        keys come back in grid order.
        """
        reducers = {
            "mean": lambda values: float(np.mean(values)),
            "std": lambda values: float(np.std(values)),
            "max": lambda values: float(np.max(values)),
            "min": lambda values: float(np.min(values)),
        }
        try:
            reduce = reducers[statistic]
        except KeyError:
            raise ConfigurationError(
                f"unknown statistic {statistic!r}; known: {', '.join(sorted(reducers))}"
            ) from None
        grouped: Dict[Any, List[float]] = {}
        for row in self.select(**filters):
            if by == "algorithm":
                key = row.algorithm
            else:
                key = row.params_dict().get(by)
            grouped.setdefault(key, []).append(float(row.metric(metric)))
        return {key: reduce(values) for key, values in grouped.items()}

    # -- presentation ----------------------------------------------------------
    def format_summary(self) -> str:
        """Generic per-algorithm summary table of every scalar metric."""
        from ..experiments.reporting import format_table

        algorithms = self.algorithms()
        if not algorithms:
            return f"Campaign {self.name!r} ({self.scenario_hash}): no runs"
        # Sorted, not first-seen: JSON persistence canonicalises key order, so
        # a reloaded result must summarise identically to the in-memory one.
        names: set = set()
        for row in self.rows:
            for name, value in row.metrics.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    names.add(name)
        scalar_metrics = sorted(names)
        headers = ["algorithm", "runs"] + [f"{name} (mean)" for name in scalar_metrics]
        rows: List[List[object]] = []
        for algorithm in algorithms:
            selected = self.select(algorithm=algorithm)
            row: List[object] = [algorithm, len(selected)]
            for name in scalar_metrics:
                values = [
                    float(r.metrics[name]) for r in selected if name in r.metrics
                ]
                row.append(float(np.mean(values)) if values else "-")
            rows.append(row)
        title = (
            f"Campaign {self.name!r} ({self.scenario_hash}): "
            f"{len(self.rows)} runs"
        )
        return format_table(headers, rows, title=title)

    # -- persistence -----------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "scenario_hash": self.scenario_hash,
            "rows": [row.to_dict() for row in self.rows],
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "CampaignResult":
        return cls(
            scenario=dict(data.get("scenario", {})),
            scenario_hash=str(data.get("scenario_hash", "")),
            rows=[RunRecord.from_dict(row) for row in data.get("rows", ())],
        )

    def to_json(
        self, destination: Optional[Union[str, Path, TextIO]] = None
    ) -> Optional[str]:
        """Write (or return) the full result as JSON via ``analysis.export``."""
        from ..analysis.export import campaign_result_to_json

        return campaign_result_to_json(self.to_json_dict(), destination)

    @classmethod
    def from_json(cls, source: Union[str, Path, TextIO]) -> "CampaignResult":
        """Load a result previously written with :meth:`to_json`."""
        from ..analysis.export import campaign_result_from_json

        return cls.from_json_dict(campaign_result_from_json(source))

    def rows_to_csv(
        self, destination: Optional[Union[str, Path, TextIO]] = None
    ) -> Optional[str]:
        """Write (or return) the tidy rows as CSV via ``analysis.export``."""
        from ..analysis.export import campaign_rows_to_csv

        return campaign_rows_to_csv([row.to_dict() for row in self.rows], destination)

    @classmethod
    def rows_from_csv(cls, source: Union[str, Path, TextIO]) -> List[RunRecord]:
        """Parse rows previously written with :meth:`rows_to_csv`."""
        from ..analysis.export import campaign_rows_from_csv

        return [RunRecord.from_dict(row) for row in campaign_rows_from_csv(source)]
