"""Campaign executor: expand a scenario, fan it out, collect tidy rows.

The executor turns a :class:`~repro.campaign.scenario.Scenario` into the
``cells × instances × algorithms`` run grid and pushes it through the
process pool of :mod:`repro.experiments.parallel` (``map_tasks``).  Each
worker builds its recorders locally, simulates, evaluates the scenario's
metric collectors, and ships back only a plain metrics dictionary — so the
grid parallelises even when collectors need observers attached.

With a ``cache_dir``, finished runs are persisted under the stable
:func:`~repro.campaign.scenario.scenario_hash` after every cell; a rerun of
the same scenario loads finished cells from disk and only simulates what is
missing, which makes long campaigns resumable after an interruption.

``Campaign(streaming=True)`` selects the bounded-memory execution path
instead: each worker feeds a per-instance :class:`repro.traces.JobSource`
straight into :meth:`~repro.core.engine.Simulator.run_stream` with
``SimulationConfig(streaming_metrics=True)`` — no instance is ever
materialized, no per-job record is ever kept — and ships back a bundle of
mergeable :class:`repro.metrics.Accumulator` partials.  The executor merges
the partials of a cell's instances exactly (the accumulators' associative
``merge``) and emits **one row per (cell, algorithm)** with
``instance_index = -1`` marking the merge.  Campaign memory is
O(cells × accumulators), independent of trace length; a ``load`` sweep axis
is honoured by measuring the stream's offered load in one extra pass and
chaining a streaming inter-arrival rescale (the same arithmetic as
:func:`~repro.workloads.scaling.scale_to_load`).
"""

from __future__ import annotations

import json
import logging
import re
import warnings
from dataclasses import replace as dataclasses_replace
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.cluster import Cluster
from ..core.engine import SimulationConfig, Simulator
from ..core.observers import create_recorder
from ..exceptions import ConfigurationError, ReproError
from ..metrics import bundle_from_dict, bundle_to_dict, merge_bundles
from ..obs.telemetry import merge_telemetry_bundles, summarize_bundle
from ..schedulers.registry import create_scheduler
from ..workloads.model import Workload
from ..workloads.scaling import scale_to_load
from .collectors import create_collector
from .result import CampaignResult, RunRecord
from .scenario import CollectorSpec, Scenario, payload_hash, scenario_hash

if TYPE_CHECKING:  # imported lazily at runtime to keep worker pickling light
    from ..traces.source import JobSource

__all__ = ["Campaign", "export_campaign_artifacts"]

_LOGGER = logging.getLogger(__name__)

#: On-disk run-cache payload format.  Bumped whenever a collector's output
#: shape changes (e.g. the ``costs`` overhead columns of the models seam),
#: so resumed campaigns never mix rows with inconsistent metric columns;
#: caches with another format are ignored and regenerated.
_CACHE_FORMAT = 3

#: One unit of pool work: everything a worker needs to simulate and measure.
_RunTask = Tuple[Workload, str, SimulationConfig, Tuple[CollectorSpec, ...]]

#: One unit of streaming pool work: (job source, cluster, algorithm,
#: engine config, collector specs, inter-arrival rescale factor or None).
_StreamTask = Tuple[Any, Cluster, str, SimulationConfig, Tuple[CollectorSpec, ...], Optional[float]]


def _execute_run(task: _RunTask) -> Dict[str, Any]:
    """Run one (workload, algorithm) cell and evaluate its collectors.

    Module-level so the pool can pickle it by reference; recorders are
    instantiated per run from their registered names.
    """
    workload, algorithm, simulation_config, collector_specs = task
    collectors = [
        create_collector(spec.name, **spec.options_dict())
        for spec in collector_specs
    ]
    recorder_names: Dict[str, None] = {}
    for collector in collectors:
        for name in collector.recorders:
            recorder_names.setdefault(name, None)
    recorders = {name: create_recorder(name) for name in recorder_names}
    simulator = Simulator(
        workload.cluster,
        create_scheduler(algorithm),
        simulation_config,
        observers=list(recorders.values()) or None,
    )
    result = simulator.run(workload.jobs)
    metrics: Dict[str, Any] = {}
    for collector in collectors:
        metrics.update(collector.collect(result, recorders, workload))
    if simulator.telemetry is not None:
        # Timings travel in their own row field, never among the metric
        # columns — results stay a pure function of the spec (DET103).
        metrics["telemetry"] = simulator.telemetry.summary()
    return metrics


def _streaming_offered_load(source: "JobSource", cluster: Cluster) -> float:
    """Offered load of a job stream, via the shared one-pass helper.

    ``offered_load_stream`` has exactly the materialized
    :func:`~repro.workloads.model.offered_load` semantics (max−min span);
    this wrapper only turns its degenerate sentinels into targeted errors.
    """
    from ..workloads.model import offered_load_stream

    current = offered_load_stream(source.jobs(cluster), cluster)
    if not 0.0 < current < float("inf"):
        raise ReproError(
            f"stream {source.default_name()!r} has degenerate load {current!r}; "
            "cannot rescale it to a target load"
        )
    return current


def _check_arrival_order(source: "JobSource", cluster: Cluster) -> None:
    """Fail fast if a convention-ordered stream is not actually sorted.

    One cheap streaming pass over the submit times; raises a targeted
    ConfigurationError (with a fix) instead of letting the engine abort the
    campaign mid-simulation.
    """
    previous = -float("inf")
    for position, spec in enumerate(source.jobs(cluster)):
        if spec.submit_time < previous:
            raise ConfigurationError(
                f"stream {source.default_name()!r} is not arrival-ordered: "
                f"job {spec.job_id} (record {position}) is submitted at "
                f"{spec.submit_time:.3f}, before its predecessor "
                f"({previous:.3f}); sort the trace first, e.g. "
                "'repro-dfrs trace convert TRACE sorted.json.gz', or run "
                "without streaming"
            )
        previous = spec.submit_time


def _execute_streaming_run(task: _StreamTask) -> Dict[str, Any]:
    """Simulate one (source, algorithm) streaming cell; ship back partials.

    The worker never materializes the instance: the source streams into
    ``run_stream`` (admitting O(active jobs)), the engine reduces per-job
    outcomes online, and only serialized accumulator bundles travel back
    over the pool.  ``factor`` (when set) chains a lazy inter-arrival
    rescale — it was computed once per (instance, load) by the executor
    (``current / target``, the ``scale_to_load`` arithmetic), so workers
    never pay a load-measurement pass.
    """
    source, cluster, algorithm, simulation_config, collector_specs, factor = task
    from ..traces import ScaleInterarrival

    collectors = [
        create_collector(spec.name, **spec.options_dict())
        for spec in collector_specs
    ]
    stream_source = source
    if factor is not None:
        stream_source = source.transformed(ScaleInterarrival(factor=factor))
    simulator = Simulator(cluster, create_scheduler(algorithm), simulation_config)
    result = simulator.run_stream(stream_source.jobs(cluster))
    outcome = {
        "workload": source.default_name(),
        "partials": {
            collector.name: bundle_to_dict(collector.stream_partials(result))
            for collector in collectors
        },
        "peak_resident_jobs": simulator.peak_resident_jobs,
    }
    if simulator.telemetry is not None:
        # Telemetry ships as a serialized accumulator bundle, exactly like
        # the metric partials, so per-worker sinks merge exactly.
        outcome["telemetry"] = bundle_to_dict(simulator.telemetry.bundle())
    return outcome


class Campaign:
    """Execute scenarios into :class:`~repro.campaign.result.CampaignResult`.

    Parameters
    ----------
    workers:
        Worker processes for the run-grid fan-out (``None``/1 = serial,
        ``<= 0`` = one per CPU); results are identical either way.
    cache_dir:
        Directory for the resumable run cache, keyed by scenario hash.
        ``None`` disables caching.
    streaming:
        Select the bounded-memory execution path (see the module docstring):
        instances stream straight into ``run_stream`` with online metrics,
        per-cell accumulators merge exactly across workers, and rows come
        back one per ``(cell, algorithm)`` with ``instance_index = -1``.
        Requires a source with ``streaming_sources`` and collectors with
        ``streaming_capable``.
    metrics_relative_error:
        Accuracy of the streaming quantile sketches (see
        :class:`repro.metrics.QuantileSketch`); only read when ``streaming``.
    merge_instances:
        Streaming campaigns merge each cell's per-instance accumulator
        bundles into **one row per (cell, algorithm)** with
        ``instance_index = -1`` (the default).  ``merge_instances=False``
        finalizes every instance's bundle separately instead, emitting one
        row per ``(cell, instance, algorithm)`` with the real
        ``instance_index`` — the materialized path's row shape, with
        sketched quantile columns.  Only read when ``streaming``.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        streaming: bool = False,
        metrics_relative_error: float = 0.01,
        merge_instances: bool = True,
    ) -> None:
        self.workers = workers
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.streaming = streaming
        self.metrics_relative_error = metrics_relative_error
        self.merge_instances = merge_instances

    # -- cache -----------------------------------------------------------------
    def _cache_path(self, digest: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{digest}.json"

    def _load_cache(
        self, digest: str
    ) -> Tuple[Dict[str, Dict[str, Any]], Optional[int], Dict[str, int]]:
        """Cached run entries (``{"workload": name, "metrics": {...}}`` per
        key) plus the instance counts — scenario-wide, and per cell for
        sweep-templated platforms — so fully cached reruns skip workload
        generation entirely."""
        path = self._cache_path(digest)
        if path is None or not path.exists():
            return {}, None, {}
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            _LOGGER.warning("ignoring unreadable campaign cache %s: %s", path, error)
            return {}, None, {}
        if payload.get("scenario_hash") != digest:
            _LOGGER.warning("ignoring mismatched campaign cache %s", path)
            return {}, None, {}
        if payload.get("format") != _CACHE_FORMAT:
            _LOGGER.warning(
                "ignoring campaign cache %s with format %r (current: %r)",
                path, payload.get("format"), _CACHE_FORMAT,
            )
            return {}, None, {}
        runs = dict(payload.get("runs", {}))
        if any(
            not isinstance(entry, Mapping)
            or "metrics" not in entry
            or "workload" not in entry
            for entry in runs.values()
        ):
            _LOGGER.warning("ignoring incompatible campaign cache %s", path)
            return {}, None, {}
        num_instances = payload.get("num_instances")
        cell_counts = payload.get("cell_instances", {})
        if not (
            isinstance(cell_counts, Mapping)
            and all(isinstance(count, int) for count in cell_counts.values())
        ):
            cell_counts = {}
        return (
            runs,
            num_instances if isinstance(num_instances, int) else None,
            dict(cell_counts),
        )

    def _store_cache(
        self,
        digest: str,
        scenario: Scenario,
        runs: Mapping[str, Mapping[str, Any]],
        num_instances: Optional[int],
        cell_counts: Optional[Mapping[str, int]] = None,
    ) -> None:
        path = self._cache_path(digest)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": _CACHE_FORMAT,
            "scenario_hash": digest,
            "scenario": scenario.to_dict(),
            "num_instances": num_instances,
            "runs": dict(runs),
        }
        if cell_counts:
            payload["cell_instances"] = dict(cell_counts)
        # The whole file is rewritten after every finished cell (that is what
        # makes interrupted campaigns resumable), so keep it compact — with
        # sample-vector collectors the accumulated payload can get large.
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, separators=(",", ":")),
            encoding="utf-8",
        )
        tmp.replace(path)

    # -- execution -------------------------------------------------------------
    def run(self, scenario: Scenario) -> CampaignResult:
        """Run one scenario (or load/complete it from the cache).

        Workload generation is lazy: a rerun whose runs are all cached reads
        everything (metrics and workload names) from the cache file and never
        touches the workload source.  A sweep-templated platform spec makes
        the cluster (and engine failure trace) a per-cell quantity: workloads
        are then generated once per *distinct cluster*, so sweeping only the
        failure model still generates every instance exactly once.
        """
        from ..experiments.parallel import map_tasks

        if self.streaming:
            if self._must_materialize_stream(scenario):
                # Fall through to the materialized path (warning emitted).
                pass
            else:
                return self._run_streaming(scenario)

        digest = scenario_hash(scenario)
        cached, num_instances, cell_counts = self._load_cache(digest)
        cells = scenario.expand()
        templated = scenario.has_platform_template
        models_templated = scenario.has_models_template
        simulation_config = scenario.simulation_config()

        raw_cache: Dict[Cluster, List[Workload]] = {}

        def raw(cluster: Cluster) -> List[Workload]:
            if cluster not in raw_cache:
                workloads = scenario.source.workloads(cluster, workers=self.workers)
                if not workloads:
                    raise ReproError(
                        f"scenario {scenario.name!r}: workload source produced "
                        "no instances"
                    )
                raw_cache[cluster] = workloads
            return raw_cache[cluster]

        if num_instances is None and not templated:
            num_instances = len(raw(scenario.cluster))

        # Memoised per (cluster, load) value, not per cell: in a cross sweep
        # many cells share a load, and rescaling every instance once per cell
        # would repeat identical work.
        scaled_cache: Dict[Tuple[Cluster, Any], List[Workload]] = {}

        def workloads_at(load: Any, cluster: Cluster) -> List[Workload]:
            if load is None:
                return raw(cluster)
            key = (cluster, load)
            if key not in scaled_cache:
                scaled_cache[key] = [
                    scale_to_load(workload, float(load))
                    for workload in raw(cluster)
                ]
            return scaled_cache[key]

        rows: List[RunRecord] = []
        for cell in cells:
            params = cell.params_dict()
            load = params.get("load")
            algorithms = scenario.resolved_algorithms(params)
            # Sweep-templated models make the engine config (but not the
            # cluster or the workloads) a per-cell quantity.
            cell_models = (
                scenario.resolved_models(params) if models_templated else None
            )
            if templated:
                cell_platform = scenario.resolved_platform(params)
                cell_cluster = cell_platform.build_cluster()
                cell_config = scenario.simulation_config(
                    platform=cell_platform, models=cell_models
                )
                # The cached per-cell count lets a fully cached rerun skip
                # workload generation, mirroring num_instances on the
                # single-cluster path.
                cell_instances = cell_counts.get(str(cell.index))
                if cell_instances is None:
                    cell_instances = len(raw(cell_cluster))
                cell_counts[str(cell.index)] = cell_instances
            else:
                cell_cluster = scenario.cluster
                if models_templated:
                    cell_config = scenario.simulation_config(models=cell_models)
                else:
                    cell_config = simulation_config
                cell_instances = num_instances

            pending: List[_RunTask] = []
            pending_keys: List[str] = []
            cell_keys: List[Tuple[str, int, str]] = []
            for instance_index in range(cell_instances):
                for algorithm in algorithms:
                    key = f"{cell.index}/{instance_index}/{algorithm}"
                    cell_keys.append((key, instance_index, algorithm))
                    if key not in cached:
                        workload = workloads_at(load, cell_cluster)[instance_index]
                        pending.append(
                            (workload, algorithm, cell_config,
                             scenario.collectors)
                        )
                        pending_keys.append(key)

            if pending:
                _LOGGER.debug(
                    "scenario %s cell %d: running %d of %d cells",
                    scenario.name, cell.index, len(pending), len(cell_keys),
                )
                outcomes = map_tasks(_execute_run, pending, workers=self.workers)
                for key, metrics in zip(pending_keys, outcomes):
                    instance_index = int(key.split("/", 2)[1])
                    cached[key] = {
                        "workload": workloads_at(load, cell_cluster)[instance_index].name,
                        "metrics": metrics,
                    }
                # Persist after every cell so an interrupted campaign resumes
                # from the last finished cell instead of from scratch.  The
                # scenario-wide instance count only holds when every cell
                # shares one cluster; templated platforms record per-cell
                # counts instead.
                self._store_cache(
                    digest, scenario, cached,
                    None if templated else num_instances,
                    cell_counts if templated else None,
                )

            for key, instance_index, algorithm in cell_keys:
                entry = cached[key]
                rows.append(
                    RunRecord(
                        cell_index=cell.index,
                        instance_index=instance_index,
                        workload=str(entry["workload"]),
                        algorithm=algorithm,
                        params=cell.params,
                        metrics=entry["metrics"],
                    )
                )

        return CampaignResult(
            scenario=scenario.to_dict(), scenario_hash=digest, rows=rows
        )

    # -- streaming execution ---------------------------------------------------
    @staticmethod
    def _must_materialize_stream(scenario: Scenario) -> bool:
        """True when a streaming request must fall back to the materialized path.

        Sources declare the condition themselves
        (:meth:`~repro.campaign.scenario.WorkloadSource
        .materialize_stream_reason`; today: ``swf`` with ``segment_seconds``,
        whose fixed-duration segmentation the per-instance streaming protocol
        cannot express — a windowed splitter is a ROADMAP follow-on).  The
        fallback is announced with a targeted warning — rows come back per
        instance (materialized shape), not merged per cell.
        """
        reason = scenario.source.materialize_stream_reason()
        if reason is None:
            return False
        warnings.warn(
            f"scenario {scenario.name!r}: {reason}; falling back to the "
            "materialized execution path — rows will be per-instance, not "
            "merged per cell",
            stacklevel=4,
        )
        return True

    def _run_streaming(self, scenario: Scenario) -> CampaignResult:
        """Bounded-memory execution: stream instances, merge partials per cell."""
        from ..experiments.parallel import map_tasks

        if scenario.has_platform_template:
            raise ConfigurationError(
                "platform sweep templating resolves one platform per cell, "
                "which the streaming executor does not support; drop the "
                "{axis} placeholders from the platform block or run without "
                "streaming"
            )
        if scenario.legacy_event_loop:
            # run_stream would reject this inside every pool worker; fail
            # fast with the same style of error the other preconditions get.
            raise ConfigurationError(
                "streaming campaigns need the O(active jobs) event loop; "
                "drop legacy_event_loop from the scenario or run without "
                "streaming"
            )
        sources = scenario.source.streaming_sources(scenario.cluster)
        if sources is None:
            raise ConfigurationError(
                f"workload source {scenario.source.kind!r} cannot stream "
                "(no per-instance JobSources); use a generator/transform/"
                "swf source or run without streaming"
            )
        if not sources:
            raise ConfigurationError(
                f"scenario {scenario.name!r}: workload source produced no "
                "streaming instances"
            )
        # Built once and reused for validation and every cell's finalize —
        # collectors are stateless between runs by contract.
        collectors = [
            create_collector(spec.name, **spec.options_dict())
            for spec in scenario.collectors
        ]
        for collector in collectors:
            if not collector.streaming_capable:
                raise ConfigurationError(
                    f"metric collector {collector.name!r} needs the full "
                    "per-job population and cannot run in a streaming "
                    "campaign; drop it or run without streaming"
                )
        # Collectors measuring windowed availability need the engine to
        # split the up-capacity integral at their window width; two
        # collectors asking for different widths cannot share one run.
        window_seconds: Optional[float] = None
        for collector in collectors:
            if getattr(collector, "needs_engine_windows", False):
                width = float(collector.window_seconds)
                if window_seconds is not None and window_seconds != width:
                    raise ConfigurationError(
                        "conflicting availability window widths in one "
                        f"scenario: {window_seconds:g}s vs {width:g}s"
                    )
                window_seconds = width

        # The streaming rows are a different shape (merged per cell, sketched
        # quantile columns), so the cache must never be shared with the
        # materialized path: fold the execution mode into the digest.  The
        # sketch accuracy changes the computed quantiles, so it is part of
        # the key too — rows cached at 1 % must not serve a 0.1 % run.
        # Per-instance mode changes the row shape again; folded in only when
        # non-default so pre-existing merged-mode digests are unchanged.
        digest_payload: Dict[str, Any] = {
            "execution": "streaming-metrics",
            "metrics_relative_error": self.metrics_relative_error,
            "scenario": scenario.to_dict(),
        }
        if not self.merge_instances:
            digest_payload["merge_instances"] = False
        digest = payload_hash(digest_payload)
        cached, _, _ = self._load_cache(digest)
        cells = scenario.expand()
        simulation_config = dataclasses_replace(
            scenario.simulation_config(),
            streaming_metrics=True,
            metrics_relative_error=self.metrics_relative_error,
            availability_window_seconds=window_seconds,
        )
        models_templated = scenario.has_models_template

        def config_for(params: Mapping[str, Any]) -> SimulationConfig:
            # Sweep-templated models resolve per cell; the cluster and the
            # streaming sources are unaffected, so only the engine config
            # needs rebuilding.
            if not models_templated:
                return simulation_config
            return dataclasses_replace(
                scenario.simulation_config(
                    models=scenario.resolved_models(params)
                ),
                streaming_metrics=True,
                metrics_relative_error=self.metrics_relative_error,
                availability_window_seconds=window_seconds,
            )

        # Offered load is a per-instance constant: measure it lazily, once
        # per instance, with a single O(1)-memory pass — not once per
        # (cell × algorithm × load) worker task.  Mirrors the materialized
        # path's per-load scaled-workload memoisation.
        measured_loads: List[Optional[float]] = [None] * len(sources)

        # Convention-ordered streams (SWF archives, directly or under
        # transforms/concat) are order-checked before the first simulation,
        # so a stray out-of-order record fails in seconds instead of
        # aborting a potentially hours-long run — but lazily, only when
        # some cell actually needs simulating: a fully cached rerun must
        # not re-parse a gigabyte archive just to resume.
        order_checked = False

        def check_order_once() -> None:
            nonlocal order_checked
            if order_checked:
                return
            order_checked = True
            for source in sources:
                # The JobSource protocol flag: SWF archives set it, wrapper
                # sources propagate it from their bases; the check runs on
                # the outer stream so order-restoring buffering transforms
                # correctly pass.
                if getattr(source, "order_by_convention", False):
                    _check_arrival_order(source, scenario.cluster)

        def rescale_factor(instance: int, load: Any) -> Optional[float]:
            if load is None:
                return None
            # Same guard (and error style) as the materialized path's
            # scale_to_load — not a ZeroDivisionError three layers deep.
            if float(load) <= 0:
                raise ConfigurationError(
                    f"load axis values must be > 0, got {load!r}"
                )
            if measured_loads[instance] is None:
                measured_loads[instance] = _streaming_offered_load(
                    sources[instance], scenario.cluster
                )
            return measured_loads[instance] / float(load)

        if not self.merge_instances:
            return self._run_streaming_per_instance(
                scenario, digest, cached, cells, config_for,
                sources, collectors, check_order_once, rescale_factor,
            )

        rows: List[RunRecord] = []
        for cell in cells:
            params = cell.params_dict()
            load = params.get("load")
            algorithms = scenario.resolved_algorithms(params)
            cell_config = config_for(params)

            pending: List[_StreamTask] = []
            pending_algorithms: List[str] = []
            for algorithm in algorithms:
                key = f"{cell.index}/merged/{algorithm}"
                if key in cached:
                    continue
                for instance, source in enumerate(sources):
                    pending.append(
                        (
                            source,
                            scenario.cluster,
                            algorithm,
                            cell_config,
                            scenario.collectors,
                            rescale_factor(instance, load),
                        )
                    )
                pending_algorithms.append(algorithm)

            if pending:
                check_order_once()
                _LOGGER.debug(
                    "scenario %s cell %d: streaming %d runs (%d algorithms x "
                    "%d instances)",
                    scenario.name, cell.index, len(pending),
                    len(pending_algorithms), len(sources),
                )
                outcomes = map_tasks(
                    _execute_streaming_run, pending, workers=self.workers
                )
                cursor = iter(outcomes)
                for algorithm in pending_algorithms:
                    per_instance = [next(cursor) for _ in sources]
                    metrics: Dict[str, Any] = {}
                    for collector in collectors:
                        merged = merge_bundles(
                            [
                                bundle_from_dict(outcome["partials"][collector.name])
                                for outcome in per_instance
                            ]
                        )
                        metrics.update(collector.stream_finalize(merged))
                    telemetry_bundles = [
                        outcome["telemetry"]
                        for outcome in per_instance
                        if outcome.get("telemetry")
                    ]
                    if telemetry_bundles:
                        # Union-wise merge: instrument sets legitimately
                        # differ between shards (see merge_telemetry_bundles).
                        metrics["telemetry"] = summarize_bundle(
                            merge_telemetry_bundles(telemetry_bundles)
                        )
                    metrics["peak_resident_jobs"] = max(
                        outcome["peak_resident_jobs"] for outcome in per_instance
                    )
                    first_workload = str(per_instance[0]["workload"])
                    if all(
                        str(outcome["workload"]) == first_workload
                        for outcome in per_instance
                    ):
                        workload_name = first_workload
                    else:
                        workload_name = (
                            f"{per_instance[0]['workload']}"
                            f"(+{len(per_instance) - 1})"
                        )
                    key = f"{cell.index}/merged/{algorithm}"
                    cached[key] = {"workload": workload_name, "metrics": metrics}
                self._store_cache(digest, scenario, cached, len(sources))

            for algorithm in algorithms:
                entry = cached[f"{cell.index}/merged/{algorithm}"]
                rows.append(
                    RunRecord(
                        cell_index=cell.index,
                        # -1 marks "merged across every instance of the cell".
                        instance_index=-1,
                        workload=str(entry["workload"]),
                        algorithm=algorithm,
                        params=cell.params,
                        metrics=entry["metrics"],
                    )
                )

        return CampaignResult(
            scenario=scenario.to_dict(), scenario_hash=digest, rows=rows
        )

    def _run_streaming_per_instance(
        self,
        scenario: Scenario,
        digest: str,
        cached: Dict[str, Dict[str, Any]],
        cells: Sequence[Any],
        config_for: Any,
        sources: Sequence[Any],
        collectors: Sequence[Any],
        check_order_once: Any,
        rescale_factor: Any,
    ) -> CampaignResult:
        """Streaming execution with ``merge_instances=False``: one row per
        ``(cell, instance, algorithm)``, each instance's accumulator bundle
        finalized on its own (no cross-instance merge).  Cache keys carry the
        real instance index, mirroring the materialized path's key shape."""
        from ..experiments.parallel import map_tasks

        rows: List[RunRecord] = []
        for cell in cells:
            params = cell.params_dict()
            load = params.get("load")
            algorithms = scenario.resolved_algorithms(params)
            cell_config = config_for(params)

            pending: List[_StreamTask] = []
            pending_keys: List[str] = []
            cell_keys: List[Tuple[str, int, str]] = []
            for instance, source in enumerate(sources):
                for algorithm in algorithms:
                    key = f"{cell.index}/{instance}/{algorithm}"
                    cell_keys.append((key, instance, algorithm))
                    if key in cached:
                        continue
                    pending.append(
                        (
                            source,
                            scenario.cluster,
                            algorithm,
                            cell_config,
                            scenario.collectors,
                            rescale_factor(instance, load),
                        )
                    )
                    pending_keys.append(key)

            if pending:
                check_order_once()
                _LOGGER.debug(
                    "scenario %s cell %d: streaming %d per-instance runs",
                    scenario.name, cell.index, len(pending),
                )
                outcomes = map_tasks(
                    _execute_streaming_run, pending, workers=self.workers
                )
                for key, outcome in zip(pending_keys, outcomes):
                    metrics: Dict[str, Any] = {}
                    for collector in collectors:
                        metrics.update(
                            collector.stream_finalize(
                                bundle_from_dict(
                                    outcome["partials"][collector.name]
                                )
                            )
                        )
                    if outcome.get("telemetry"):
                        metrics["telemetry"] = summarize_bundle(
                            merge_telemetry_bundles([outcome["telemetry"]])
                        )
                    metrics["peak_resident_jobs"] = outcome["peak_resident_jobs"]
                    cached[key] = {
                        "workload": str(outcome["workload"]),
                        "metrics": metrics,
                    }
                self._store_cache(digest, scenario, cached, len(sources))

            for key, instance, algorithm in cell_keys:
                entry = cached[key]
                rows.append(
                    RunRecord(
                        cell_index=cell.index,
                        instance_index=instance,
                        workload=str(entry["workload"]),
                        algorithm=algorithm,
                        params=cell.params,
                        metrics=entry["metrics"],
                    )
                )

        return CampaignResult(
            scenario=scenario.to_dict(), scenario_hash=digest, rows=rows
        )

    def run_many(self, scenarios: Iterable[Scenario]) -> Dict[str, CampaignResult]:
        """Run several scenarios, returned as a name-keyed mapping."""
        results: Dict[str, CampaignResult] = {}
        for scenario in scenarios:
            if scenario.name in results:
                raise ReproError(f"duplicate scenario name {scenario.name!r}")
            results[scenario.name] = self.run(scenario)
        return results


def export_campaign_artifacts(
    results: Sequence[CampaignResult],
    directory: Union[str, Path],
) -> List[Path]:
    """Write each result's tidy rows (CSV) and full payload (JSON) to a directory.

    File names are ``<scenario-name>-<hash>.rows.csv`` / ``.json``; the paths
    written are returned in order.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for result in results:
        # Scenario names are validated to a filename-safe charset, but a
        # hand-built CampaignResult can carry anything — sanitise defensively.
        safe_name = re.sub(r"[^A-Za-z0-9._-]", "_", result.name) or "campaign"
        stem = f"{safe_name}-{result.scenario_hash}"
        json_path = target / f"{stem}.json"
        result.to_json(json_path)
        written.append(json_path)
        csv_path = target / f"{stem}.rows.csv"
        result.rows_to_csv(csv_path)
        written.append(csv_path)
    return written
