"""Campaign executor: expand a scenario, fan it out, collect tidy rows.

The executor turns a :class:`~repro.campaign.scenario.Scenario` into the
``cells × instances × algorithms`` run grid and pushes it through the
process pool of :mod:`repro.experiments.parallel` (``map_tasks``).  Each
worker builds its recorders locally, simulates, evaluates the scenario's
metric collectors, and ships back only a plain metrics dictionary — so the
grid parallelises even when collectors need observers attached.

With a ``cache_dir``, finished runs are persisted under the stable
:func:`~repro.campaign.scenario.scenario_hash` after every cell; a rerun of
the same scenario loads finished cells from disk and only simulates what is
missing, which makes long campaigns resumable after an interruption.
"""

from __future__ import annotations

import json
import logging
import re
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.engine import SimulationConfig, Simulator
from ..core.observers import create_recorder
from ..exceptions import ReproError
from ..schedulers.registry import create_scheduler
from ..workloads.model import Workload
from ..workloads.scaling import scale_to_load
from .collectors import create_collector
from .result import CampaignResult, RunRecord
from .scenario import CollectorSpec, Scenario, scenario_hash

__all__ = ["Campaign", "export_campaign_artifacts"]

_LOGGER = logging.getLogger(__name__)

#: One unit of pool work: everything a worker needs to simulate and measure.
_RunTask = Tuple[Workload, str, SimulationConfig, Tuple[CollectorSpec, ...]]


def _execute_run(task: _RunTask) -> Dict[str, Any]:
    """Run one (workload, algorithm) cell and evaluate its collectors.

    Module-level so the pool can pickle it by reference; recorders are
    instantiated per run from their registered names.
    """
    workload, algorithm, simulation_config, collector_specs = task
    collectors = [
        create_collector(spec.name, **spec.options_dict())
        for spec in collector_specs
    ]
    recorder_names: Dict[str, None] = {}
    for collector in collectors:
        for name in collector.recorders:
            recorder_names.setdefault(name, None)
    recorders = {name: create_recorder(name) for name in recorder_names}
    simulator = Simulator(
        workload.cluster,
        create_scheduler(algorithm),
        simulation_config,
        observers=list(recorders.values()) or None,
    )
    result = simulator.run(workload.jobs)
    metrics: Dict[str, Any] = {}
    for collector in collectors:
        metrics.update(collector.collect(result, recorders, workload))
    return metrics


class Campaign:
    """Execute scenarios into :class:`~repro.campaign.result.CampaignResult`.

    Parameters
    ----------
    workers:
        Worker processes for the run-grid fan-out (``None``/1 = serial,
        ``<= 0`` = one per CPU); results are identical either way.
    cache_dir:
        Directory for the resumable run cache, keyed by scenario hash.
        ``None`` disables caching.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.workers = workers
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None

    # -- cache -----------------------------------------------------------------
    def _cache_path(self, digest: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{digest}.json"

    def _load_cache(
        self, digest: str
    ) -> Tuple[Dict[str, Dict[str, Any]], Optional[int]]:
        """Cached run entries (``{"workload": name, "metrics": {...}}`` per
        key) plus the instance count, so fully cached reruns skip workload
        generation entirely."""
        path = self._cache_path(digest)
        if path is None or not path.exists():
            return {}, None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            _LOGGER.warning("ignoring unreadable campaign cache %s: %s", path, error)
            return {}, None
        if payload.get("scenario_hash") != digest:
            _LOGGER.warning("ignoring mismatched campaign cache %s", path)
            return {}, None
        runs = dict(payload.get("runs", {}))
        if any(
            not isinstance(entry, Mapping)
            or "metrics" not in entry
            or "workload" not in entry
            for entry in runs.values()
        ):
            _LOGGER.warning("ignoring incompatible campaign cache %s", path)
            return {}, None
        num_instances = payload.get("num_instances")
        return runs, num_instances if isinstance(num_instances, int) else None

    def _store_cache(
        self,
        digest: str,
        scenario: Scenario,
        runs: Mapping[str, Mapping[str, Any]],
        num_instances: int,
    ) -> None:
        path = self._cache_path(digest)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "scenario_hash": digest,
            "scenario": scenario.to_dict(),
            "num_instances": num_instances,
            "runs": dict(runs),
        }
        # The whole file is rewritten after every finished cell (that is what
        # makes interrupted campaigns resumable), so keep it compact — with
        # sample-vector collectors the accumulated payload can get large.
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, separators=(",", ":")),
            encoding="utf-8",
        )
        tmp.replace(path)

    # -- execution -------------------------------------------------------------
    def run(self, scenario: Scenario) -> CampaignResult:
        """Run one scenario (or load/complete it from the cache).

        Workload generation is lazy: a rerun whose runs are all cached reads
        everything (metrics and workload names) from the cache file and never
        touches the workload source.
        """
        from ..experiments.parallel import map_tasks

        digest = scenario_hash(scenario)
        cached, num_instances = self._load_cache(digest)
        cells = scenario.expand()
        simulation_config = scenario.simulation_config()

        raw_workloads: Optional[List[Workload]] = None

        def raw() -> List[Workload]:
            nonlocal raw_workloads
            if raw_workloads is None:
                raw_workloads = scenario.source.workloads(
                    scenario.cluster, workers=self.workers
                )
                if not raw_workloads:
                    raise ReproError(
                        f"scenario {scenario.name!r}: workload source produced "
                        "no instances"
                    )
            return raw_workloads

        if num_instances is None:
            num_instances = len(raw())

        # Memoised per load value, not per cell: in a cross sweep many cells
        # share a load, and rescaling every instance once per cell would
        # repeat identical work.
        scaled_cache: Dict[Any, List[Workload]] = {}

        def workloads_at(load: Any) -> List[Workload]:
            if load is None:
                return raw()
            if load not in scaled_cache:
                scaled_cache[load] = [
                    scale_to_load(workload, float(load)) for workload in raw()
                ]
            return scaled_cache[load]

        rows: List[RunRecord] = []
        for cell in cells:
            params = cell.params_dict()
            load = params.get("load")
            algorithms = scenario.resolved_algorithms(params)

            pending: List[_RunTask] = []
            pending_keys: List[str] = []
            cell_keys: List[Tuple[str, int, str]] = []
            for instance_index in range(num_instances):
                for algorithm in algorithms:
                    key = f"{cell.index}/{instance_index}/{algorithm}"
                    cell_keys.append((key, instance_index, algorithm))
                    if key not in cached:
                        workload = workloads_at(load)[instance_index]
                        pending.append(
                            (workload, algorithm, simulation_config,
                             scenario.collectors)
                        )
                        pending_keys.append(key)

            if pending:
                _LOGGER.debug(
                    "scenario %s cell %d: running %d of %d cells",
                    scenario.name, cell.index, len(pending), len(cell_keys),
                )
                outcomes = map_tasks(_execute_run, pending, workers=self.workers)
                for key, metrics in zip(pending_keys, outcomes):
                    instance_index = int(key.split("/", 2)[1])
                    cached[key] = {
                        "workload": workloads_at(load)[instance_index].name,
                        "metrics": metrics,
                    }
                # Persist after every cell so an interrupted campaign resumes
                # from the last finished cell instead of from scratch.
                self._store_cache(digest, scenario, cached, num_instances)

            for key, instance_index, algorithm in cell_keys:
                entry = cached[key]
                rows.append(
                    RunRecord(
                        cell_index=cell.index,
                        instance_index=instance_index,
                        workload=str(entry["workload"]),
                        algorithm=algorithm,
                        params=cell.params,
                        metrics=entry["metrics"],
                    )
                )

        return CampaignResult(
            scenario=scenario.to_dict(), scenario_hash=digest, rows=rows
        )

    def run_many(self, scenarios: Iterable[Scenario]) -> Dict[str, CampaignResult]:
        """Run several scenarios, returned as a name-keyed mapping."""
        results: Dict[str, CampaignResult] = {}
        for scenario in scenarios:
            if scenario.name in results:
                raise ReproError(f"duplicate scenario name {scenario.name!r}")
            results[scenario.name] = self.run(scenario)
        return results


def export_campaign_artifacts(
    results: Sequence[CampaignResult],
    directory: Union[str, Path],
) -> List[Path]:
    """Write each result's tidy rows (CSV) and full payload (JSON) to a directory.

    File names are ``<scenario-name>-<hash>.rows.csv`` / ``.json``; the paths
    written are returned in order.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for result in results:
        # Scenario names are validated to a filename-safe charset, but a
        # hand-built CampaignResult can carry anything — sanitise defensively.
        safe_name = re.sub(r"[^A-Za-z0-9._-]", "_", result.name) or "campaign"
        stem = f"{safe_name}-{result.scenario_hash}"
        json_path = target / f"{stem}.json"
        result.to_json(json_path)
        written.append(json_path)
        csv_path = target / f"{stem}.rows.csv"
        result.rows_to_csv(csv_path)
        written.append(csv_path)
    return written
