"""Scenario specification: the declarative half of the campaign layer.

A :class:`Scenario` is a frozen description of one study: a workload source,
the cluster it targets, the algorithm set (possibly templated on sweep-axis
values), the rescheduling penalty, the sweep axes, the metric collectors, and
the engine options.  Scenarios are pure data — they can be built in code, be
loaded from a JSON/TOML spec file (:mod:`repro.campaign.spec`), and be hashed
stably across processes (:func:`scenario_hash`), which is what keys the
executor's resumable run cache.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.cluster import Cluster
from ..core.engine import SimulationConfig
from ..core.penalties import ReschedulingPenaltyModel
from ..exceptions import ConfigurationError
from ..workloads.model import Workload

if TYPE_CHECKING:  # imported lazily at runtime inside _trace_source
    from ..traces.source import JobSource

__all__ = [
    "WorkloadSource",
    "LublinSource",
    "Hpc2nLikeSource",
    "SwfSource",
    "CustomSource",
    "GeneratorSource",
    "TransformSource",
    "CollectorSpec",
    "Cell",
    "Scenario",
    "payload_hash",
    "scenario_hash",
    "scenario_from_dict",
    "source_from_dict",
]

#: Default cluster of the paper's synthetic experiments.
_DEFAULT_CLUSTER = Cluster(128, 4, 8.0)


# --------------------------------------------------------------------------- #
# Workload sources                                                             #
# --------------------------------------------------------------------------- #
class WorkloadSource:
    """A named, deterministic producer of workload instances.

    Sources generate the *raw* (unscaled) instances of a scenario once per
    campaign run; per-cell offered-load scaling (the ``load`` sweep axis) is
    applied by the executor on top, so every source composes with load sweeps
    for free.

    ``spec_expressible`` records whether the source can be written in a
    ``repro-dfrs run`` spec file: True for :class:`LublinSource`,
    :class:`Hpc2nLikeSource`, :class:`SwfSource`, :class:`GeneratorSource`,
    and :class:`TransformSource`; False for :class:`CustomSource`, whose
    factory callable only exists in code (:func:`source_from_dict` points at
    the ``generator``/``transform`` types as the declarative alternatives).
    """

    kind: str = "abstract"
    spec_expressible: bool = True

    def workloads(
        self, cluster: Cluster, *, workers: Optional[int] = None
    ) -> List[Workload]:
        raise NotImplementedError

    def streaming_sources(self, cluster: Cluster) -> Optional[List[Any]]:
        """Per-instance :class:`repro.traces.JobSource` streams, or ``None``.

        The streaming campaign executor feeds these straight into
        :meth:`repro.core.engine.Simulator.run_stream`, so sources that can
        express their instances as arrival-ordered lazy streams should
        return one :class:`~repro.traces.JobSource` per instance (same
        instance count, same jobs, same order as :meth:`workloads`).
        ``None`` (the default) means the source only exists materialized and
        cannot back a ``--streaming-metrics`` campaign.
        """
        return None

    def materialize_stream_reason(self) -> Optional[str]:
        """Why a streaming campaign must fall back to the materialized path.

        ``None`` (the default) means no fallback: the executor either
        streams the source (``streaming_sources``) or rejects it with a
        hard error.  A reason string marks a *configuration* of an otherwise
        streamable source that cannot stream (today: ``swf`` with
        ``segment_seconds``); the executor then warns with the reason and
        runs the materialized path instead.
        """
        return None

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError


@dataclass(frozen=True)
class LublinSource(WorkloadSource):
    """Synthetic traces from the Lublin-Feitelson model (paper §IV-C)."""

    num_traces: int = 3
    num_jobs: int = 150
    seed_base: int = 2010

    kind = "lublin"

    def workloads(
        self, cluster: Cluster, *, workers: Optional[int] = None
    ) -> List[Workload]:
        # Delegate to the canonical per-trace seeding/naming scheme so that
        # campaign traces are bit-identical to the legacy drivers'.
        from ..experiments.config import ExperimentConfig
        from ..experiments.parallel import generate_instances

        config = ExperimentConfig(
            cluster=cluster,
            num_traces=self.num_traces,
            num_jobs=self.num_jobs,
            seed_base=self.seed_base,
        )
        return generate_instances(config, load=None, workers=workers)

    def streaming_sources(self, cluster: Cluster) -> Optional[List[Any]]:
        from ..traces import LublinTraceSource

        # Same per-trace seeding as generate_instances (trace i uses
        # seed_base + i), so streaming instances carry identical jobs.
        return [
            LublinTraceSource(num_jobs=self.num_jobs, seed=self.seed_base + index)
            for index in range(self.num_traces)
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "num_traces": self.num_traces,
            "num_jobs": self.num_jobs,
            "seed_base": self.seed_base,
        }


@dataclass(frozen=True)
class Hpc2nLikeSource(WorkloadSource):
    """HPC2N-like synthetic 1-week segments (the paper's real-world column).

    The trace mimics the HPC2N machine, so scenarios reproducing the paper
    should set the scenario cluster to
    :data:`repro.workloads.hpc2n.HPC2N_CLUSTER` (the
    :func:`~repro.campaign.studies.hpc2n_scenario` builder does); the source
    honours whatever cluster the scenario declares.
    """

    weeks: int = 2
    jobs_per_week: int = 400
    seed_base: int = 2010

    kind = "hpc2n-like"

    def workloads(
        self, cluster: Cluster, *, workers: Optional[int] = None
    ) -> List[Workload]:
        from ..workloads.hpc2n import Hpc2nLikeTraceGenerator

        generator = Hpc2nLikeTraceGenerator(cluster, jobs_per_week=self.jobs_per_week)
        return [
            generator.generate_workload(1, seed=self.seed_base + week)
            for week in range(self.weeks)
        ]

    def streaming_sources(self, cluster: Cluster) -> Optional[List[Any]]:
        from ..traces import Hpc2nLikeTraceSource

        return [
            Hpc2nLikeTraceSource(
                weeks=1, jobs_per_week=self.jobs_per_week, seed=self.seed_base + week
            )
            for week in range(self.weeks)
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "weeks": self.weeks,
            "jobs_per_week": self.jobs_per_week,
            "seed_base": self.seed_base,
        }


@dataclass(frozen=True)
class SwfSource(WorkloadSource):
    """Jobs parsed from a Standard Workload Format trace file.

    With ``segment_seconds`` set, the trace is split into consecutive
    fixed-duration segments (the paper's 1-week HPC2N split), each of which
    becomes one instance of the scenario.
    """

    path: str = ""
    segment_seconds: Optional[float] = None

    kind = "swf"

    def __post_init__(self) -> None:
        if not self.path:
            raise ConfigurationError("SwfSource needs a trace file path")

    def workloads(
        self, cluster: Cluster, *, workers: Optional[int] = None
    ) -> List[Workload]:
        from ..workloads.hpc2n import swf_to_dfrs_jobs
        from ..workloads.swf import parse_swf

        workload = swf_to_dfrs_jobs(parse_swf(self.path), cluster)
        if self.segment_seconds is None:
            return [workload]
        return workload.segments(self.segment_seconds)

    def streaming_sources(self, cluster: Cluster) -> Optional[List[Any]]:
        if self.segment_seconds is not None:
            # Fixed-duration segmentation needs the whole trace split into
            # separate instances; keep that path materialized.
            return None
        from ..traces import SwfTraceSource

        return [SwfTraceSource(path=self.path)]

    def materialize_stream_reason(self) -> Optional[str]:
        if self.segment_seconds is None:
            return None
        return (
            "an 'swf' source with segment_seconds set cannot stream "
            "(fixed-duration segmentation needs the materialized instance "
            "split)"
        )

    def _content_fingerprint(self) -> Optional[str]:
        """Digest of the trace file, hashed once per source object.

        Memoised because the executor serialises the scenario once per
        finished cell; the file cannot meaningfully change mid-run, and a
        rerun constructs a fresh source (fresh fingerprint) anyway.
        """
        cached = getattr(self, "_content_cache", None)
        if cached is None:
            try:
                cached = hashlib.sha256(
                    Path(self.path).read_bytes()
                ).hexdigest()[:16]
            except OSError:
                cached = ""
            object.__setattr__(self, "_content_cache", cached)
        return cached or None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "type": self.kind,
            "path": self.path,
            "segment_seconds": self.segment_seconds,
        }
        # Fold a content fingerprint into the canonical form (and therefore
        # into the scenario hash) so that editing the trace file in place
        # invalidates the run cache instead of silently serving stale rows.
        fingerprint = self._content_fingerprint()
        if fingerprint is not None:
            data["content"] = fingerprint
        return data


@dataclass(frozen=True)
class CustomSource(WorkloadSource):
    """Arbitrary user-supplied workload factory.

    ``factory`` receives the scenario cluster and returns the instance list.
    The ``key`` string stands in for the factory in the scenario hash, so two
    custom sources hash equal iff their keys (and the rest of the scenario)
    are equal — callers are responsible for keying distinct generators
    distinctly.  Custom sources cannot be expressed in spec files.
    """

    factory: Callable[[Cluster], List[Workload]] = None  # type: ignore[assignment]
    key: str = "custom"

    kind = "custom"
    spec_expressible = False

    def __post_init__(self) -> None:
        if self.factory is None:
            raise ConfigurationError("CustomSource needs a factory callable")

    def workloads(
        self, cluster: Cluster, *, workers: Optional[int] = None
    ) -> List[Workload]:
        return list(self.factory(cluster))

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "key": self.key}


@dataclass(frozen=True)
class GeneratorSource(WorkloadSource):
    """Instances drawn from a registered :mod:`repro.traces` source model.

    ``model`` names any spec-expressible trace source type (``"downey"``,
    ``"diurnal-poisson"``, ``"lublin"``, ...; see
    :func:`repro.traces.available_trace_sources`) and ``options`` carries its
    constructor options verbatim — except ``seed``, which this source owns:
    instance ``i`` is built with ``seed = seed_base + i``, which is how one
    spec file describes several independent replicas of a synthetic model.
    """

    model: str = ""
    instances: int = 1
    seed_base: int = 2010
    options: Tuple[Tuple[str, Any], ...] = ()

    kind = "generator"

    def __post_init__(self) -> None:
        if not self.model:
            raise ConfigurationError("GeneratorSource needs a 'model' name")
        if self.instances < 1:
            raise ConfigurationError(
                f"instances must be >= 1, got {self.instances}"
            )
        options = self.options
        if isinstance(options, Mapping):
            options = tuple(sorted(options.items()))
        object.__setattr__(self, "options", tuple(options))
        if "seed" in dict(self.options):
            raise ConfigurationError(
                "generator options must not set 'seed'; use 'seed_base' "
                "(instance i runs with seed_base + i)"
            )
        # Build instance 0 eagerly so bad models/options fail at spec-load
        # time, not mid-campaign.
        self._trace_source(0)

    def _trace_source(self, instance: int) -> "JobSource":
        from ..traces import trace_source_from_dict

        return trace_source_from_dict(
            {
                "type": self.model,
                "seed": self.seed_base + instance,
                **dict(self.options),
            }
        )

    def workloads(
        self, cluster: Cluster, *, workers: Optional[int] = None
    ) -> List[Workload]:
        return [
            self._trace_source(instance).materialize(cluster)
            for instance in range(self.instances)
        ]

    def streaming_sources(self, cluster: Cluster) -> Optional[List[Any]]:
        return [self._trace_source(instance) for instance in range(self.instances)]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "model": self.model,
            "instances": self.instances,
            "seed_base": self.seed_base,
            "options": dict(self.options),
        }


@dataclass(frozen=True)
class TransformSource(WorkloadSource):
    """A :mod:`repro.traces` transform chain as a scenario workload source.

    Wraps a spec-expressible
    :class:`~repro.traces.transforms.TransformedSource`; the spec form is the
    chain's own dictionary, e.g.::

        {"type": "transform",
         "base": {"type": "diurnal-poisson", "num_jobs": 2000, "seed": 7},
         "steps": [{"type": "rescale-load", "target_load": 0.7}]}

    Only chains are accepted — their spec ``type`` is ``"transform"``, which
    is exactly what this source's round-trip dispatches on (a bare model
    belongs in :class:`GeneratorSource` instead; a bare model with no steps
    would serialise under its own type name and not round-trip here).  The
    chain produces one instance; sweep axes (``load`` included) compose on
    top exactly as with every other source.
    """

    source: Any = None  # a repro.traces.TransformedSource

    kind = "transform"

    def __post_init__(self) -> None:
        from ..traces import TransformedSource

        if not isinstance(self.source, TransformedSource):
            raise ConfigurationError(
                "TransformSource needs a repro.traces.TransformedSource "
                "(a transform chain); for a bare generator model use "
                "GeneratorSource instead"
            )
        if not self.source.spec_expressible:
            raise ConfigurationError(
                "the transform chain is not spec-expressible (it contains a "
                "code-only source or step) and cannot back a TransformSource; "
                "wrap it with CustomSource in code instead"
            )

    def workloads(
        self, cluster: Cluster, *, workers: Optional[int] = None
    ) -> List[Workload]:
        return [self.source.materialize(cluster)]

    def streaming_sources(self, cluster: Cluster) -> Optional[List[Any]]:
        return [self.source]

    def to_dict(self) -> Dict[str, Any]:
        return self.source.to_dict()


def _transform_source_from_spec(**payload: Any) -> TransformSource:
    from ..traces import trace_source_from_dict

    return TransformSource(
        source=trace_source_from_dict({"type": "transform", **payload})
    )


#: Source types a spec file can express.  ``custom`` deliberately has no
#: entry: its factory callable cannot be serialised (see CustomSource).
_SOURCE_TYPES: Dict[str, Callable[..., WorkloadSource]] = {
    "lublin": LublinSource,
    "hpc2n-like": Hpc2nLikeSource,
    "swf": SwfSource,
    "generator": GeneratorSource,
    "transform": _transform_source_from_spec,
}

#: Known-but-not-expressible source kinds, for a targeted error message.
_CODE_ONLY_SOURCE_TYPES = ("custom",)


def source_from_dict(data: Mapping[str, Any]) -> WorkloadSource:
    """Build a workload source from its spec dictionary."""
    payload = dict(data)
    # The SWF content fingerprint is derived state (see SwfSource.to_dict),
    # not a constructor argument.
    payload.pop("content", None)
    kind = payload.pop("type", None)
    if kind is None:
        raise ConfigurationError("workload source spec needs a 'type' field")
    if kind in _CODE_ONLY_SOURCE_TYPES:
        raise ConfigurationError(
            f"workload source type {kind!r} is not spec-expressible (its "
            "factory is a Python callable); build the scenario in code, or "
            "describe the workload declaratively with the 'generator' or "
            "'transform' source types (see repro.traces)"
        )
    try:
        factory = _SOURCE_TYPES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload source type {kind!r}; known types: "
            f"{', '.join(sorted(_SOURCE_TYPES))}"
        ) from None
    try:
        return factory(**payload)
    except TypeError as error:
        raise ConfigurationError(
            f"invalid options for workload source {kind!r}: {error}"
        ) from None


# --------------------------------------------------------------------------- #
# Collector specs and sweep cells                                              #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CollectorSpec:
    """One metric collector requested by name, with optional constructor options.

    Spec forms: a bare name (``"stretch"``) or a mapping with options, e.g.
    ``{"name": "slo", "options": {"slo_factor": 5}}`` or ``{"name":
    "goodput", "options": {"window_seconds": 3600}}`` — see
    :func:`repro.campaign.collectors.available_collectors` for the registry.
    """

    name: str
    options: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(
        cls, spec: Union[str, "CollectorSpec", Mapping[str, Any]]
    ) -> "CollectorSpec":
        """Coerce a string / mapping / spec into a canonical CollectorSpec."""
        if isinstance(spec, CollectorSpec):
            return spec
        if isinstance(spec, str):
            return cls(name=spec)
        if isinstance(spec, Mapping):
            name = spec.get("name")
            if not name:
                raise ConfigurationError("collector spec mapping needs a 'name'")
            options = spec.get("options", {})
            return cls(name=name, options=tuple(sorted(options.items())))
        raise ConfigurationError(f"cannot interpret collector spec {spec!r}")

    def options_dict(self) -> Dict[str, Any]:
        return dict(self.options)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "options": self.options_dict()}


@dataclass(frozen=True)
class Cell:
    """One point of a scenario's sweep grid."""

    index: int
    params: Tuple[Tuple[str, Any], ...] = ()

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)


# --------------------------------------------------------------------------- #
# Platform templating                                                          #
# --------------------------------------------------------------------------- #
_PLACEHOLDER = re.compile(r"\{([A-Za-z_][A-Za-z0-9_]*)\}")


def _platform_template_axes(value: Any) -> set:
    """Sweep-axis names referenced by ``{axis}`` placeholders in a spec."""
    if isinstance(value, str):
        return set(_PLACEHOLDER.findall(value))
    if isinstance(value, Mapping):
        axes: set = set()
        for key, item in value.items():
            axes |= _platform_template_axes(item)
        return axes
    if isinstance(value, (list, tuple)):
        axes = set()
        for item in value:
            axes |= _platform_template_axes(item)
        return axes
    return set()


def _substitute_templates(value: Any, params: Mapping[str, Any]) -> Any:
    """Fill ``{axis}`` placeholders in a platform spec with cell parameters.

    A string that *is* a single placeholder (``"{mtbf}"``) is replaced by the
    raw axis value, so numeric sweep values stay numbers; placeholders inside
    longer strings are formatted textually.
    """
    if isinstance(value, str):
        whole = _PLACEHOLDER.fullmatch(value)
        try:
            if whole:
                return params[whole.group(1)]
            if "{" in value:
                return value.format(**dict(params))
        except (KeyError, IndexError, ValueError) as error:
            raise ConfigurationError(
                f"platform template {value!r} cannot be formatted with cell "
                f"parameters {dict(params)!r}: {error}"
            ) from None
        return value
    if isinstance(value, Mapping):
        return {
            key: _substitute_templates(item, params) for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_substitute_templates(item, params) for item in value]
    return value


# --------------------------------------------------------------------------- #
# Scenario                                                                     #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Scenario:
    """Frozen, declarative description of one experimental study.

    ``sweep`` maps axis names to value tuples; cells are the cross-product in
    axis order.  The ``load`` axis is special-cased by the executor (instances
    are rescaled to that offered load); every other axis is free-form and is
    available to algorithm-name templates — an algorithm entry containing
    ``{axis}`` placeholders is formatted with the cell parameters, so e.g.
    ``"dynmcb8-asap-per-{period}"`` crossed with ``sweep={"period": (60,
    600)}`` evaluates two periodic variants with zero driver code.
    """

    name: str
    source: WorkloadSource
    algorithms: Tuple[str, ...]
    cluster: Cluster = _DEFAULT_CLUSTER
    penalty_seconds: float = 0.0
    sweep: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    collectors: Tuple[CollectorSpec, ...] = (CollectorSpec("stretch"),)
    legacy_event_loop: bool = False
    record_scheduler_times: bool = True
    #: Forward :attr:`repro.core.engine.SimulationConfig.repack_on_failure`:
    #: periodic schedulers repack immediately on a node failure instead of
    #: waiting for their next tick.  Serialised in the engine block only when
    #: True, so existing scenario hashes (and run caches) are unchanged.
    repack_on_failure: bool = False
    #: Optional :class:`repro.platform.Platform` (or its spec mapping)
    #: describing the machine, instead of a bare ``cluster``.  When set, the
    #: ``cluster`` field is *derived* from the platform.  A spec mapping may
    #: reference sweep axes with ``{axis}`` placeholders (e.g. sweep the
    #: failure MTBF or a node-class count); the executor then resolves one
    #: platform per cell.
    platform: Any = None
    #: Optional fidelity-model block: a mapping with ``"overhead"`` (an
    #: :class:`repro.models.OverheadModel` or its spec) and/or
    #: ``"execution_time"`` (an :class:`repro.models.ExecutionTimeModel` or
    #: its spec).  ``{axis}`` placeholders make the models a per-cell
    #: quantity, exactly like the platform block.  Default models
    #: (``none`` / ``exact``) are demoted to ``None`` so a scenario carrying
    #: them is byte-identical — spec, hash, cache keys — to one without a
    #: ``models`` block.
    models: Any = None
    #: Optional telemetry spec: a :class:`repro.obs.TelemetryConfig` or its
    #: canonical ``{"type": "stats" | "tracing"}`` mapping, forwarded to the
    #: engine of every run.  An optional ``"flight": <capacity>`` field
    #: additionally attaches the per-job flight recorder
    #: (:mod:`repro.obs.flight`).  The default spec (``{"type": "off"}``) is
    #: demoted to ``None`` so a scenario carrying it is byte-identical —
    #: spec, hash, cache keys — to one without a ``telemetry`` block.  Live
    #: :class:`~repro.obs.Telemetry` sinks are rejected: scenarios are pure
    #: data, and every run must get its own fresh sink.
    telemetry: Any = None

    def __post_init__(self) -> None:
        # Names end up in cache keys and exported file names.
        if not re.fullmatch(r"[A-Za-z0-9._-]+", self.name or ""):
            raise ConfigurationError(
                f"scenario name {self.name!r} must be non-empty and use only "
                "letters, digits, '.', '_', and '-'"
            )
        if isinstance(self.algorithms, str):
            raise ConfigurationError(
                "algorithms must be a sequence of names, not a bare string"
            )
        if not self.algorithms:
            raise ConfigurationError("scenario algorithms must not be empty")
        if self.penalty_seconds < 0:
            raise ConfigurationError("penalty_seconds must be >= 0")
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        sweep = self.sweep
        if isinstance(sweep, Mapping):
            sweep = tuple(sweep.items())
        for axis, values in sweep:
            if isinstance(values, str) or not isinstance(values, (list, tuple)):
                raise ConfigurationError(
                    f"sweep axis {axis!r} must map to a list of values, "
                    f"got {values!r}"
                )
        sweep = tuple((axis, tuple(values)) for axis, values in sweep)
        for axis, values in sweep:
            if not values:
                raise ConfigurationError(f"sweep axis {axis!r} must not be empty")
        axes = [axis for axis, _ in sweep]
        if len(axes) != len(set(axes)):
            raise ConfigurationError("sweep axes must be unique")
        object.__setattr__(self, "sweep", sweep)
        object.__setattr__(
            self,
            "collectors",
            tuple(CollectorSpec.of(spec) for spec in self.collectors),
        )
        self._init_platform()
        self._init_models()
        self._init_telemetry()

    def _init_platform(self) -> None:
        """Normalise the ``platform`` field and derive the cluster from it.

        ``_static_platform`` caches the resolved platform when the spec has
        no ``{axis}`` templates (one platform for every cell); a templated
        spec is validated by resolving it with the first value of each
        referenced axis, and ``_static_platform`` stays ``None``.
        """
        from ..platform import Platform, platform_from_dict

        platform = self.platform
        if platform is None:
            if self.cluster.is_heterogeneous:
                raise ConfigurationError(
                    "heterogeneous clusters must be declared through a "
                    "platform (see repro.platform.NodeClassesPlatform) so "
                    "the scenario spec can express them"
                )
            object.__setattr__(self, "_static_platform", None)
            return
        if isinstance(platform, Platform):
            if self._demote_platform(platform):
                return
            object.__setattr__(self, "_static_platform", platform)
            object.__setattr__(self, "cluster", platform.build_cluster())
            return
        if not isinstance(platform, Mapping):
            raise ConfigurationError(
                "platform must be a repro.platform.Platform or its spec "
                f"mapping, got {type(platform).__name__}"
            )
        spec = dict(platform)
        object.__setattr__(self, "platform", spec)
        referenced = _platform_template_axes(spec)
        axes = {axis for axis, _ in self.sweep}
        missing = referenced - axes
        if missing:
            raise ConfigurationError(
                f"platform spec references sweep axes that do not exist: "
                f"{', '.join(sorted(missing))}"
            )
        if referenced:
            # Validate the template eagerly with a representative cell (the
            # first value of each axis) so bad specs fail at build time, not
            # mid-campaign; the representative also provides the cluster for
            # informational uses (the executor resolves per cell regardless).
            first = {axis: values[0] for axis, values in self.sweep}
            representative = platform_from_dict(_substitute_templates(spec, first))
            object.__setattr__(self, "_static_platform", None)
            object.__setattr__(self, "cluster", representative.build_cluster())
        else:
            resolved = platform_from_dict(spec)
            if self._demote_platform(resolved):
                return
            object.__setattr__(self, "_static_platform", resolved)
            object.__setattr__(self, "cluster", resolved.build_cluster())

    def _demote_platform(self, resolved: Any) -> bool:
        """Collapse a platform that adds nothing over a bare cluster.

        A static platform with no availability events whose cluster is
        homogeneous *is* the legacy cluster path; dropping the platform field
        makes the scenario — spec dictionary, hash, cache keys, artifact
        names — byte-identical to one built with ``cluster=...`` directly.
        A platform declaring per-class power draw is never demoted: the
        power vectors (and the node-class names energy reports key on) only
        reach the engine through the platform.
        """
        built = resolved.build_cluster()
        if (
            resolved.events is None
            and not built.is_heterogeneous
            and resolved.power_vectors() is None
        ):
            object.__setattr__(self, "platform", None)
            object.__setattr__(self, "_static_platform", None)
            object.__setattr__(self, "cluster", built)
            return True
        return False

    def _init_models(self) -> None:
        """Normalise the ``models`` field into its canonical spec form.

        Mirrors ``_init_platform``: ``_static_models`` caches the resolved
        ``(overhead_model, execution_time_model)`` pair when the spec has no
        ``{axis}`` templates; a templated spec is validated by resolving it
        with the first value of each referenced axis, and ``_static_models``
        stays ``None``.  Default models (``none`` / ``exact``) are demoted,
        and a block carrying only defaults is dropped entirely, pinning the
        scenario byte-identical to a model-free one.
        """
        models = self.models
        if models is None:
            object.__setattr__(self, "_static_models", None)
            return
        from ..models import ExecutionTimeModel, OverheadModel

        if not isinstance(models, Mapping):
            raise ConfigurationError(
                "models must be a mapping with 'overhead' and/or "
                f"'execution_time' entries, got {type(models).__name__}"
            )
        spec = dict(models)
        unknown = set(spec) - {"overhead", "execution_time"}
        if unknown:
            raise ConfigurationError(
                f"unknown models spec fields: {', '.join(sorted(unknown))} "
                "(known: overhead, execution_time)"
            )
        # Model objects are coerced to their canonical spec form so the
        # scenario stays pure data (serialisable, stably hashable).
        overhead = spec.get("overhead")
        if isinstance(overhead, OverheadModel):
            spec["overhead"] = overhead.to_dict()
        execution = spec.get("execution_time")
        if isinstance(execution, ExecutionTimeModel):
            spec["execution_time"] = execution.to_dict()
        referenced = _platform_template_axes(spec)
        axes = {axis for axis, _ in self.sweep}
        missing = referenced - axes
        if missing:
            raise ConfigurationError(
                f"models spec references sweep axes that do not exist: "
                f"{', '.join(sorted(missing))}"
            )
        if referenced:
            # Validate the template eagerly with a representative cell so
            # bad specs fail at build time, not mid-campaign; the executor
            # resolves per cell regardless.
            first = {axis: values[0] for axis, values in self.sweep}
            self._build_models(_substitute_templates(spec, first))
            object.__setattr__(self, "models", spec)
            object.__setattr__(self, "_static_models", None)
            return
        built = self._build_models(spec)
        if built == (None, None):
            object.__setattr__(self, "models", None)
            object.__setattr__(self, "_static_models", None)
            return
        canonical: Dict[str, Any] = {}
        overhead_model, execution_model = built
        if overhead_model is not None:
            canonical["overhead"] = overhead_model.to_dict()
        if execution_model is not None:
            canonical["execution_time"] = execution_model.to_dict()
        object.__setattr__(self, "models", canonical)
        object.__setattr__(self, "_static_models", built)

    def _init_telemetry(self) -> None:
        """Normalise the ``telemetry`` field into its canonical spec form.

        Mirrors ``_init_models``: specs are validated by round-tripping
        through the telemetry registry, and the default (``{"type": "off"}``)
        is dropped entirely, pinning the scenario byte-identical to a
        telemetry-free one.  Live sinks are rejected — a scenario is pure
        data, and sharing one sink across a campaign's runs would double
        count; the engine builds a fresh sink per run from the spec.
        """
        telemetry = self.telemetry
        if telemetry is None:
            return
        from ..obs import Telemetry, TelemetryConfig, telemetry_config_from_dict

        if isinstance(telemetry, Telemetry):
            raise ConfigurationError(
                "scenario telemetry must be a declarative spec (a "
                "repro.obs.TelemetryConfig or its {'type': ...} mapping), "
                "not a live Telemetry sink — each run builds its own sink "
                "from the spec"
            )
        if isinstance(telemetry, TelemetryConfig):
            spec = telemetry.to_dict()
        elif isinstance(telemetry, Mapping):
            # Round-trip through the registry so unknown types and bad
            # fields fail at build time, not mid-campaign.
            spec = telemetry_config_from_dict(telemetry).to_dict()
        else:
            raise ConfigurationError(
                "telemetry must be a repro.obs.TelemetryConfig or its spec "
                f"mapping, got {type(telemetry).__name__}"
            )
        if spec == {"type": "off"}:
            object.__setattr__(self, "telemetry", None)
            return
        object.__setattr__(self, "telemetry", spec)

    @staticmethod
    def _build_models(spec: Mapping[str, Any]) -> Tuple[Any, Any]:
        """Build the ``(overhead, execution_time)`` models of one cell.

        Default models (``none`` / ``exact``) come back as ``None`` — the
        engine's byte-identical fast path.
        """
        from ..models import (
            execution_time_model_from_dict,
            overhead_model_from_dict,
        )

        overhead_spec = spec.get("overhead")
        overhead_model = None
        if overhead_spec is not None:
            if not isinstance(overhead_spec, Mapping):
                raise ConfigurationError(
                    "models 'overhead' must be an overhead-model spec "
                    f"mapping, got {type(overhead_spec).__name__}"
                )
            overhead_model = overhead_model_from_dict(overhead_spec)
            if overhead_model.kind == "none":
                overhead_model = None
        execution_spec = spec.get("execution_time")
        execution_model = None
        if execution_spec is not None:
            if not isinstance(execution_spec, Mapping):
                raise ConfigurationError(
                    "models 'execution_time' must be an execution-time "
                    f"model spec mapping, got {type(execution_spec).__name__}"
                )
            execution_model = execution_time_model_from_dict(execution_spec)
            if execution_model.kind == "exact":
                execution_model = None
        return (overhead_model, execution_model)

    @property
    def has_platform_template(self) -> bool:
        """True when the platform spec varies with the sweep cell."""
        return self.platform is not None and self._static_platform is None

    @property
    def has_models_template(self) -> bool:
        """True when the models spec varies with the sweep cell."""
        return self.models is not None and self._static_models is None

    def resolved_models(self, params: Mapping[str, Any] = ()) -> Tuple[Any, Any]:
        """The ``(overhead, execution_time)`` models of one cell.

        Static models (no templates) resolve to the same pair for every
        cell; templated specs are filled with the cell parameters and built
        through the model registries.  Either element is ``None`` when the
        cell uses the engine's default.
        """
        if self.models is None:
            return (None, None)
        if self._static_models is not None:
            return self._static_models
        return self._build_models(
            _substitute_templates(self.models, dict(params))
        )

    def resolved_platform(self, params: Mapping[str, Any] = ()) -> Optional[Any]:
        """The platform of the cell with parameters ``params`` (or ``None``).

        Static platforms (no templates) resolve to the same object for every
        cell; templated specs are filled with the cell parameters and built
        through the platform registry.
        """
        from ..platform import platform_from_dict

        if self.platform is None:
            return None
        if self._static_platform is not None:
            return self._static_platform
        return platform_from_dict(
            _substitute_templates(self.platform, dict(params))
        )

    # -- grid expansion --------------------------------------------------------
    def expand(self) -> List[Cell]:
        """Cross-product of the sweep axes, in axis order (one cell if empty)."""
        if not self.sweep:
            return [Cell(index=0)]
        axes = [axis for axis, _ in self.sweep]
        cells = []
        for index, combo in enumerate(
            itertools.product(*(values for _, values in self.sweep))
        ):
            cells.append(Cell(index=index, params=tuple(zip(axes, combo))))
        return cells

    def resolved_algorithms(self, params: Mapping[str, Any]) -> List[str]:
        """Algorithm names of one cell, with ``{axis}`` templates filled in.

        Duplicates (listed twice, or distinct templates resolving to the same
        name in this cell) are dropped keeping the first occurrence — one run
        per ``(instance, algorithm)`` pair, as the legacy drivers' per-name
        result dictionaries guaranteed.
        """
        names: Dict[str, None] = {}
        for template in self.algorithms:
            if "{" in template:
                try:
                    names.setdefault(template.format(**dict(params)), None)
                except (KeyError, IndexError, ValueError) as error:
                    raise ConfigurationError(
                        f"algorithm template {template!r} cannot be formatted "
                        f"with cell parameters {dict(params)!r}: {error}"
                    ) from None
            else:
                names.setdefault(template, None)
        return list(names)

    def simulation_config(
        self,
        platform: Optional[Any] = None,
        models: Optional[Tuple[Any, Any]] = None,
    ) -> SimulationConfig:
        """Engine configuration for one run of this scenario.

        ``platform`` is the cell's resolved platform when the scenario's
        platform spec is sweep-templated; by default the scenario's static
        platform (if any) supplies the node availability events and failure
        policy.  ``models`` is the cell's resolved ``(overhead,
        execution_time)`` pair when the models block is templated; static
        models apply by default.  Scenarios without a platform or models get
        the exact configuration of previous releases.
        """
        if platform is None:
            platform = self._static_platform
        if models is None:
            models = self._static_models or (None, None)
        extra: Dict[str, Any] = {}
        if platform is not None and platform.events is not None:
            extra["node_events"] = platform.events
            extra["failure_policy"] = platform.failure_policy
        if platform is not None:
            class_names = platform.node_class_names()
            if class_names is not None:
                extra["node_class_names"] = class_names
            power = platform.power_vectors()
            if power is not None:
                extra["node_power"] = power
        overhead_model, execution_model = models
        if overhead_model is not None:
            extra["overhead_model"] = overhead_model
        if execution_model is not None:
            extra["execution_time_model"] = execution_model
        if self.telemetry is not None:
            extra["telemetry"] = dict(self.telemetry)
        return SimulationConfig(
            penalty_model=ReschedulingPenaltyModel(self.penalty_seconds),
            record_scheduler_times=self.record_scheduler_times,
            legacy_event_loop=self.legacy_event_loop,
            repack_on_failure=self.repack_on_failure,
            **extra,
        )

    # -- serialisation ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical spec dictionary (what the scenario hash is computed over).

        Scenarios without a platform serialise their cluster block exactly as
        before, so pre-existing scenario hashes (and therefore run caches and
        exported artifact names) are unchanged.  Scenarios with a platform
        serialise the ``platform`` block *instead* — the cluster is derived
        state.
        """
        data: Dict[str, Any] = {
            "name": self.name,
            "source": self.source.to_dict(),
        }
        if self.platform is None:
            data["cluster"] = {
                "nodes": self.cluster.num_nodes,
                "cores_per_node": self.cluster.cores_per_node,
                "node_memory_gb": self.cluster.node_memory_gb,
            }
        elif self._static_platform is not None:
            data["platform"] = self._static_platform.to_dict()
        else:
            # Templated spec: the template itself (placeholders included) is
            # the canonical form — the sweep block already carries the
            # values.  An *untemplated* events sub-block is canonicalised
            # through its source (so e.g. a json trace's content fingerprint
            # still folds into the hash, and editing the file invalidates
            # caches exactly like on the static path).
            template = copy.deepcopy(self.platform)
            events = template.get("events")
            if isinstance(events, Mapping) and not _platform_template_axes(events):
                from ..platform import node_event_source_from_dict

                template["events"] = node_event_source_from_dict(events).to_dict()
            data["platform"] = template
        # The models block is emitted only when it survived demotion — a
        # defaults-only block was dropped in ``_init_models``, keeping
        # model-free scenario hashes unchanged.
        if self.models is not None:
            data["models"] = copy.deepcopy(self.models)
        # Emitted only when it survived demotion: an "off" block was dropped
        # in ``_init_telemetry``, keeping telemetry-free hashes unchanged.
        if self.telemetry is not None:
            data["telemetry"] = dict(self.telemetry)
        data.update(
            {
                "algorithms": list(self.algorithms),
                "penalty_seconds": self.penalty_seconds,
                "sweep": [[axis, list(values)] for axis, values in self.sweep],
                "collectors": [spec.to_dict() for spec in self.collectors],
                "engine": {
                    "legacy_event_loop": self.legacy_event_loop,
                    "record_scheduler_times": self.record_scheduler_times,
                },
            }
        )
        # Emitted only when set: the default (False) keeps the canonical
        # engine block — and therefore every pre-existing scenario hash,
        # run-cache key, and artifact name — byte-identical.
        if self.repack_on_failure:
            data["engine"]["repack_on_failure"] = True
        return data

    def with_penalty(self, penalty_seconds: float) -> "Scenario":
        return replace(self, penalty_seconds=penalty_seconds)


def scenario_from_dict(data: Mapping[str, Any]) -> Scenario:
    """Build a scenario from a spec dictionary (inverse of ``to_dict``)."""
    payload = dict(data)
    unknown = set(payload) - {
        "name", "source", "cluster", "platform", "algorithms",
        "penalty_seconds", "sweep", "collectors", "engine", "models",
        "telemetry",
    }
    if unknown:
        raise ConfigurationError(
            f"unknown scenario spec fields: {', '.join(sorted(unknown))}"
        )
    if "source" not in payload:
        raise ConfigurationError("scenario spec needs a 'source' field")
    if "algorithms" not in payload:
        raise ConfigurationError("scenario spec needs an 'algorithms' field")
    platform_spec = payload.get("platform")
    if platform_spec is not None and "cluster" in payload:
        raise ConfigurationError(
            "scenario spec must not set both 'cluster' and 'platform': the "
            "platform block describes the whole machine (put nodes / "
            "cores_per_node / node_memory_gb inside it)"
        )
    cluster_spec = payload.get("cluster", {})
    unknown_cluster = set(cluster_spec) - {"nodes", "cores_per_node", "node_memory_gb"}
    if unknown_cluster:
        raise ConfigurationError(
            f"unknown cluster spec fields: {', '.join(sorted(unknown_cluster))} "
            "(known: nodes, cores_per_node, node_memory_gb)"
        )
    cluster = Cluster(
        num_nodes=int(cluster_spec.get("nodes", _DEFAULT_CLUSTER.num_nodes)),
        cores_per_node=int(
            cluster_spec.get("cores_per_node", _DEFAULT_CLUSTER.cores_per_node)
        ),
        node_memory_gb=float(
            cluster_spec.get("node_memory_gb", _DEFAULT_CLUSTER.node_memory_gb)
        ),
    )
    sweep_spec = payload.get("sweep", ())
    # Axis values are validated (and coerced to tuples) by Scenario itself,
    # so a scalar like {"load": 0.5} gets a ConfigurationError, not a
    # TypeError.
    if isinstance(sweep_spec, Mapping):
        sweep = tuple(sweep_spec.items())
    else:
        sweep = tuple((axis, values) for axis, values in sweep_spec)
    engine = payload.get("engine", {})
    unknown_engine = set(engine) - {
        "legacy_event_loop", "record_scheduler_times", "repack_on_failure",
    }
    if unknown_engine:
        raise ConfigurationError(
            f"unknown engine spec fields: {', '.join(sorted(unknown_engine))} "
            "(known: legacy_event_loop, record_scheduler_times, "
            "repack_on_failure)"
        )
    return Scenario(
        name=payload.get("name", "scenario"),
        source=source_from_dict(payload["source"]),
        # Passed through untupled so Scenario's own bare-string guard fires
        # on "algorithms": "easy" instead of tuple() splitting it into chars.
        algorithms=payload["algorithms"],
        cluster=cluster,
        penalty_seconds=float(payload.get("penalty_seconds", 0.0)),
        sweep=sweep,
        collectors=tuple(
            CollectorSpec.of(spec)
            for spec in payload.get("collectors", ("stretch",))
        ),
        legacy_event_loop=bool(engine.get("legacy_event_loop", False)),
        record_scheduler_times=bool(engine.get("record_scheduler_times", True)),
        repack_on_failure=bool(engine.get("repack_on_failure", False)),
        platform=platform_spec,
        models=payload.get("models"),
        telemetry=payload.get("telemetry"),
    )


def payload_hash(payload: Mapping[str, Any]) -> str:
    """Stable 16-hex-digit digest of a JSON-serialisable spec dictionary.

    Computed over sorted-key canonical JSON, so it is identical across
    processes, platforms, and Python versions.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def scenario_hash(scenario: Scenario) -> str:
    """Stable digest of a scenario's canonical spec (:meth:`Scenario.to_dict`).

    The key of the executor's resumable run cache.
    """
    return payload_hash(scenario.to_dict())
