"""Load scenarios from JSON/TOML spec files — ``repro-dfrs run``'s input.

A spec file is the :meth:`~repro.campaign.scenario.Scenario.to_dict` shape::

    {
      "name": "load-period-cross",
      "cluster": {"nodes": 64, "cores_per_node": 4, "node_memory_gb": 8.0},
      "source": {"type": "lublin", "num_traces": 2, "num_jobs": 60,
                 "seed_base": 2010},
      "algorithms": ["easy", "dynmcb8-asap-per-{period}"],
      "penalty_seconds": 300,
      "sweep": {"load": [0.3, 0.7], "period": [60, 600]},
      "collectors": ["stretch", "costs"]
    }

``sweep`` may be a mapping (axis order = key order) or a list of
``[axis, [values...]]`` pairs.  TOML files need Python 3.11+ (the standard
library ``tomllib``); JSON works everywhere.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..exceptions import ConfigurationError
from .scenario import Scenario, scenario_from_dict

__all__ = ["load_scenario", "scenario_from_spec_text"]


def scenario_from_spec_text(text: str, *, format: str = "json") -> Scenario:
    """Parse a scenario from spec text in the given format (json or toml)."""
    format = format.lower()
    if format == "json":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid JSON scenario spec: {error}") from None
    elif format == "toml":
        try:
            import tomllib
        except ImportError:  # pragma: no cover - version-dependent
            raise ConfigurationError(
                "TOML scenario specs need Python 3.11+ (stdlib tomllib); "
                "use a JSON spec instead"
            ) from None
        try:
            payload = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise ConfigurationError(f"invalid TOML scenario spec: {error}") from None
    else:
        raise ConfigurationError(
            f"unknown scenario spec format {format!r} (json or toml)"
        )
    if not isinstance(payload, dict):
        raise ConfigurationError("scenario spec must be a mapping at top level")
    return scenario_from_dict(payload)


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Load a scenario from a ``.json`` or ``.toml`` spec file."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix not in (".json", ".toml"):
        raise ConfigurationError(
            f"scenario spec {path} must end in .json or .toml"
        )
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ConfigurationError(f"cannot read scenario spec {path}: {error}") from None
    return scenario_from_spec_text(text, format=suffix[1:])
