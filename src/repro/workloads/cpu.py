"""CPU-need annotation of synthetic jobs (paper §IV-C).

The paper assumes quad-core nodes whose CPU is shared fluidly by the VM
monitor, and makes two deliberately *pessimistic* assumptions for DFRS:

* the single task of a one-task job is sequential and CPU-bound, so its CPU
  need is ``1/cores`` of the node (25 % on a quad-core node);
* every task of a multi-task job is multi-threaded and CPU-bound, so its CPU
  need is 100 % of the node.

Pessimistic because CPU-bound tasks leave no slack for co-location — any
sharing directly slows jobs down.  The model is parameterised so that
sensitivity studies can soften these assumptions (e.g. a fraction of parallel
jobs that are only 50 % CPU-bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["CpuNeedModel"]


@dataclass(frozen=True)
class CpuNeedModel:
    """Maps a job's size to the per-task CPU need of its tasks."""

    #: Number of cores per node (a sequential task uses one core).
    cores_per_node: int = 4
    #: CPU need of tasks in multi-task jobs (1.0 = fully CPU-bound threads).
    parallel_task_need: float = 1.0
    #: Optional fraction of parallel jobs whose tasks are only partially
    #: CPU-bound; used by sensitivity ablations, 0 reproduces the paper.
    partial_need_fraction: float = 0.0
    #: CPU need used for that partially CPU-bound fraction.
    partial_need_value: float = 0.5

    def __post_init__(self) -> None:
        if self.cores_per_node < 1:
            raise ConfigurationError("cores_per_node must be >= 1")
        if not (0.0 < self.parallel_task_need <= 1.0):
            raise ConfigurationError("parallel_task_need must be in (0, 1]")
        if not (0.0 <= self.partial_need_fraction <= 1.0):
            raise ConfigurationError("partial_need_fraction must be in [0, 1]")
        if not (0.0 < self.partial_need_value <= 1.0):
            raise ConfigurationError("partial_need_value must be in (0, 1]")

    @property
    def sequential_need(self) -> float:
        """CPU need of a sequential, CPU-bound task."""
        return 1.0 / self.cores_per_node

    def cpu_need(self, num_tasks: int, rng: Optional[np.random.Generator] = None) -> float:
        """Per-task CPU need for a job with ``num_tasks`` tasks."""
        if num_tasks < 1:
            raise ConfigurationError(f"num_tasks must be >= 1, got {num_tasks}")
        if num_tasks == 1:
            return self.sequential_need
        if self.partial_need_fraction > 0.0 and rng is not None:
            if rng.random() < self.partial_need_fraction:
                return self.partial_need_value
        return self.parallel_task_need
