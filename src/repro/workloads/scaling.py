"""Offered-load computation and inter-arrival scaling (paper §IV-C).

The paper turns each generated trace into nine traces with identical job
mixes but offered loads 0.1 … 0.9 by multiplying all inter-arrival times by a
computed constant.  :func:`scale_to_load` performs that computation: since
the offered load is inversely proportional to the submission span, the
scaling factor is simply ``current_load / target_load``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..exceptions import WorkloadError
from .model import Workload

__all__ = ["scale_to_load", "load_sweep", "DEFAULT_LOAD_LEVELS"]

#: The nine load levels evaluated in Figure 1.
DEFAULT_LOAD_LEVELS: Sequence[float] = tuple(round(0.1 * i, 1) for i in range(1, 10))


def scale_to_load(workload: Workload, target_load: float) -> Workload:
    """Workload with inter-arrival times scaled to reach ``target_load``.

    The job mix (sizes, runtimes, CPU needs, memory requirements) is exactly
    preserved; only submission times are stretched or compressed.
    """
    if target_load <= 0:
        raise WorkloadError(f"target_load must be > 0, got {target_load}")
    if workload.num_jobs < 2:
        raise WorkloadError("cannot scale a workload with fewer than two jobs")
    current = workload.load()
    if current <= 0 or not _is_finite(current):
        raise WorkloadError(
            f"workload {workload.name!r} has degenerate load {current}; "
            "cannot rescale"
        )
    factor = current / target_load
    scaled = workload.scaled_interarrival(
        factor, name=f"{workload.name}-load{target_load:.1f}"
    )
    return scaled


def load_sweep(
    workload: Workload, levels: Iterable[float] = DEFAULT_LOAD_LEVELS
) -> Dict[float, Workload]:
    """Scaled copies of ``workload`` for every requested load level."""
    return {level: scale_to_load(workload, level) for level in levels}


def _is_finite(value: float) -> bool:
    return value == value and value not in (float("inf"), float("-inf"))
