"""Workload characterization in the terms used by the paper's motivation.

The paper's introduction justifies DFRS with observations about real HPC
workloads: "more than 95% of the jobs use under 40% of a node's memory, and
more than 27% of the jobs effectively use less than 50% of the node's CPU
resource".  This module computes exactly those quantities (and a few more)
for any :class:`~repro.workloads.model.Workload`, so that synthetic traces
can be checked against the assumptions they are supposed to embody and real
SWF traces can be profiled before being fed to the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.cluster import Cluster
from ..core.job import JobSpec
from ..exceptions import WorkloadError
from .model import Workload

__all__ = [
    "WorkloadCharacterization",
    "characterize",
    "characterize_stream",
    "size_histogram",
    "characterization_table",
]


@dataclass(frozen=True)
class WorkloadCharacterization:
    """Descriptive profile of one workload."""

    name: str
    num_jobs: int
    offered_load: float
    span_seconds: float
    #: Fraction of jobs with a single task.
    serial_fraction: float
    #: Fraction of jobs whose per-task memory requirement is below 40 % (§I).
    fraction_memory_under_40pct: float
    #: Fraction of jobs whose per-task CPU need is below 50 % (§I).
    fraction_cpu_under_50pct: float
    mean_tasks: float
    max_tasks: int
    mean_runtime_seconds: float
    median_runtime_seconds: float
    p95_runtime_seconds: float
    mean_interarrival_seconds: float
    #: Total node-seconds of work requested (Σ tasks × runtime).
    total_demand_node_seconds: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_jobs": float(self.num_jobs),
            "offered_load": self.offered_load,
            "span_seconds": self.span_seconds,
            "serial_fraction": self.serial_fraction,
            "fraction_memory_under_40pct": self.fraction_memory_under_40pct,
            "fraction_cpu_under_50pct": self.fraction_cpu_under_50pct,
            "mean_tasks": self.mean_tasks,
            "max_tasks": float(self.max_tasks),
            "mean_runtime_seconds": self.mean_runtime_seconds,
            "median_runtime_seconds": self.median_runtime_seconds,
            "p95_runtime_seconds": self.p95_runtime_seconds,
            "mean_interarrival_seconds": self.mean_interarrival_seconds,
            "total_demand_node_seconds": self.total_demand_node_seconds,
        }


def characterize(
    workload: Workload,
    *,
    memory_threshold: float = 0.4,
    cpu_threshold: float = 0.5,
) -> WorkloadCharacterization:
    """Profile a workload with the paper's motivating statistics.

    ``memory_threshold`` and ``cpu_threshold`` default to the §I thresholds
    (40 % of node memory, 50 % of node CPU) but can be changed to study other
    cut-offs.
    """
    if not workload.jobs:
        raise WorkloadError(f"workload {workload.name!r} is empty")
    if not (0.0 < memory_threshold <= 1.0):
        raise WorkloadError(f"memory_threshold must be in (0, 1], got {memory_threshold}")
    if not (0.0 < cpu_threshold <= 1.0):
        raise WorkloadError(f"cpu_threshold must be in (0, 1], got {cpu_threshold}")

    tasks = np.array([spec.num_tasks for spec in workload.jobs], dtype=float)
    runtimes = np.array([spec.execution_time for spec in workload.jobs], dtype=float)
    memory = np.array([spec.mem_requirement for spec in workload.jobs], dtype=float)
    cpu = np.array([spec.cpu_need for spec in workload.jobs], dtype=float)
    submits = np.array(sorted(spec.submit_time for spec in workload.jobs), dtype=float)
    interarrivals = np.diff(submits) if submits.size > 1 else np.array([0.0])

    return WorkloadCharacterization(
        name=workload.name,
        num_jobs=len(workload.jobs),
        offered_load=workload.load(),
        span_seconds=workload.span_seconds,
        serial_fraction=float(np.mean(tasks == 1)),
        fraction_memory_under_40pct=float(np.mean(memory < memory_threshold)),
        fraction_cpu_under_50pct=float(np.mean(cpu < cpu_threshold)),
        mean_tasks=float(tasks.mean()),
        max_tasks=int(tasks.max()),
        mean_runtime_seconds=float(runtimes.mean()),
        median_runtime_seconds=float(np.median(runtimes)),
        p95_runtime_seconds=float(np.percentile(runtimes, 95)),
        mean_interarrival_seconds=float(interarrivals.mean()),
        total_demand_node_seconds=float(np.dot(tasks, runtimes)),
    )


def characterize_stream(
    specs: Iterable[JobSpec],
    cluster: Cluster,
    *,
    name: str = "stream",
    memory_threshold: float = 0.4,
    cpu_threshold: float = 0.5,
    quantile_relative_error: float = 0.001,
) -> Tuple[WorkloadCharacterization, List[Tuple[str, int]]]:
    """Profile an arrival-ordered job stream in a single bounded-memory pass.

    The streaming twin of :func:`characterize` + :func:`size_histogram`:
    every statistic is accumulated online (:mod:`repro.metrics`), so a
    multi-million-job SWF archive is profiled without ever being resident.
    The runtime median/p95 come from a
    :class:`~repro.metrics.QuantileSketch` and are within
    ``quantile_relative_error`` (default 0.1 %) of the exact nearest-rank
    values; everything else is exact.  Returns the characterization together
    with the power-of-two width histogram (``size_histogram``'s shape).
    """
    from ..metrics import Moments, QuantileSketch

    if not (0.0 < memory_threshold <= 1.0):
        raise WorkloadError(f"memory_threshold must be in (0, 1], got {memory_threshold}")
    if not (0.0 < cpu_threshold <= 1.0):
        raise WorkloadError(f"cpu_threshold must be in (0, 1], got {cpu_threshold}")

    tasks = Moments()
    runtimes = Moments()
    runtime_sketch = QuantileSketch(relative_error=quantile_relative_error)
    serial = 0
    memory_under = 0
    cpu_under = 0
    demand = 0.0
    first_submit: Optional[float] = None
    last_submit = -float("inf")
    width_buckets: Dict[int, int] = {}

    for spec in specs:
        tasks.add(spec.num_tasks)
        runtimes.add(spec.execution_time)
        runtime_sketch.add(spec.execution_time)
        if spec.num_tasks == 1:
            serial += 1
        if spec.mem_requirement < memory_threshold:
            memory_under += 1
        if spec.cpu_need < cpu_threshold:
            cpu_under += 1
        demand += spec.num_tasks * spec.execution_time
        # Track the extremes rather than first/last so that a stray
        # out-of-order record (archive traces are submit-ordered only by
        # convention) yields the same span/load as the sorted materialized
        # path instead of a silently wrong one.
        if first_submit is None or spec.submit_time < first_submit:
            first_submit = spec.submit_time
        if spec.submit_time > last_submit:
            last_submit = spec.submit_time
        bucket = spec.num_tasks.bit_length() - 1
        width_buckets[bucket] = width_buckets.get(bucket, 0) + 1

    num_jobs = tasks.count
    if num_jobs == 0 or first_submit is None:
        raise WorkloadError(f"stream {name!r} is empty")
    span = last_submit - first_submit
    # Mean inter-arrival over the *sorted* submits telescopes to
    # span / (n - 1) — exactly what np.diff(sorted submits).mean() computes.
    mean_interarrival = span / (num_jobs - 1) if num_jobs > 1 else 0.0
    load = demand / (cluster.num_nodes * span) if span > 0 else float("inf")

    histogram = _labeled_width_histogram(width_buckets)

    profile = WorkloadCharacterization(
        name=name,
        num_jobs=num_jobs,
        offered_load=load,
        span_seconds=span,
        serial_fraction=serial / num_jobs,
        fraction_memory_under_40pct=memory_under / num_jobs,
        fraction_cpu_under_50pct=cpu_under / num_jobs,
        mean_tasks=tasks.mean,
        max_tasks=int(tasks.maximum),
        mean_runtime_seconds=runtimes.mean,
        median_runtime_seconds=runtime_sketch.quantile(0.5),
        p95_runtime_seconds=runtime_sketch.quantile(0.95),
        mean_interarrival_seconds=mean_interarrival,
        total_demand_node_seconds=demand,
    )
    return profile, histogram


def _labeled_width_histogram(counts: Dict[int, int]) -> List[Tuple[str, int]]:
    """Power-of-two bucket counts → ``(label, count)`` pairs, width order.

    The single source of the histogram's label format, shared by the
    materialized :func:`size_histogram` and :func:`characterize_stream` so
    the two CLI paths cannot silently diverge.
    """
    histogram: List[Tuple[str, int]] = []
    for bucket in sorted(counts):
        low = 2**bucket
        high = 2 ** (bucket + 1) - 1
        label = str(low) if low == high else f"{low}-{high}"
        histogram.append((label, counts[bucket]))
    return histogram


def size_histogram(workload: Workload) -> List[Tuple[str, int]]:
    """Histogram of job widths in power-of-two buckets.

    Returns ``(label, count)`` pairs in increasing width order, e.g.
    ``[("1", 120), ("2-3", 18), ("4-7", 30), ...]``.  Buckets with zero jobs
    are omitted.
    """
    if not workload.jobs:
        raise WorkloadError(f"workload {workload.name!r} is empty")
    counts: Dict[int, int] = {}
    for spec in workload.jobs:
        bucket = spec.num_tasks.bit_length() - 1
        counts[bucket] = counts.get(bucket, 0) + 1
    return _labeled_width_histogram(counts)


def characterization_table(
    characterizations: Sequence[WorkloadCharacterization],
) -> str:
    """Fixed-width text table of several workload profiles, one per row."""
    if not characterizations:
        raise WorkloadError("need at least one characterization to render a table")
    headers = [
        "workload",
        "jobs",
        "load",
        "serial%",
        "mem<40%",
        "cpu<50%",
        "mean tasks",
        "median runtime (s)",
    ]
    rows = [
        [
            profile.name,
            str(profile.num_jobs),
            f"{profile.offered_load:.2f}",
            f"{100 * profile.serial_fraction:.0f}",
            f"{100 * profile.fraction_memory_under_40pct:.0f}",
            f"{100 * profile.fraction_cpu_under_50pct:.0f}",
            f"{profile.mean_tasks:.1f}",
            f"{profile.median_runtime_seconds:.0f}",
        ]
        for profile in characterizations
    ]
    widths = [
        max(len(headers[i]), max(len(row[i]) for row in rows)) for i in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
