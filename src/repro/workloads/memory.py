"""Memory-requirement annotation of synthetic jobs (paper §IV-C).

The paper adopts a simple model suggested by the data of Setia et al.: 55 %
of the jobs have tasks requiring 10 % of a node's memory; the remaining 45 %
have tasks requiring ``10·x %`` where ``x`` is uniform over {2, …, 10}.  The
resulting distribution has plenty of small-memory jobs (so co-location is
usually possible) and a tail of jobs that monopolise a node's memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["MemoryRequirementModel"]


@dataclass(frozen=True)
class MemoryRequirementModel:
    """Setia-style discrete memory requirement distribution."""

    #: Probability of the small (base) memory requirement.
    small_probability: float = 0.55
    #: Memory requirement of "small" jobs, as a node fraction.
    small_requirement: float = 0.10
    #: Multipliers of the base requirement for the remaining jobs.
    large_multipliers: Tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8, 9, 10)

    def __post_init__(self) -> None:
        if not (0.0 <= self.small_probability <= 1.0):
            raise ConfigurationError("small_probability must be in [0, 1]")
        if not (0.0 < self.small_requirement <= 1.0):
            raise ConfigurationError("small_requirement must be in (0, 1]")
        if not self.large_multipliers:
            raise ConfigurationError("large_multipliers must not be empty")
        for multiplier in self.large_multipliers:
            if multiplier < 1 or multiplier * self.small_requirement > 1.0 + 1e-9:
                raise ConfigurationError(
                    f"multiplier {multiplier} pushes the requirement beyond a node"
                )

    def memory_requirement(self, rng: np.random.Generator) -> float:
        """Sample one per-task memory requirement (fraction of node memory)."""
        if rng.random() < self.small_probability:
            return self.small_requirement
        multiplier = int(rng.choice(self.large_multipliers))
        return min(1.0, multiplier * self.small_requirement)

    def support(self) -> Sequence[float]:
        """All values the distribution can produce (useful for tests)."""
        values = {self.small_requirement}
        values.update(
            min(1.0, m * self.small_requirement) for m in self.large_multipliers
        )
        return sorted(values)
