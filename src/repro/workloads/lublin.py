"""Lublin–Feitelson synthetic workload model (JPDC 2003; paper §IV-C).

The model generates *rigid* parallel jobs with three correlated attributes:

* **size** (number of tasks): a fixed probability of serial jobs, a strong
  bias towards powers of two, and a two-stage log-uniform distribution of
  ``log2(size)``;
* **runtime**: a hyper-gamma distribution (mixture of two gamma
  distributions) of the *log* runtime, whose mixing probability depends
  linearly on the job size so that larger jobs tend to run longer;
* **inter-arrival times**: log-gamma distributed gaps modulated by a daily
  cycle (arrivals are more likely during working hours).

The default constants below are the published values fitted by Lublin and
Feitelson on several production traces.  For a 128-node cluster and 1,000
jobs the generated submission span is on the order of 4–6 days, matching the
figure quoted in the paper.

This is a faithful re-implementation in spirit; the original C program
(``lublin99.c``) has a few additional refinements (separate interactive/batch
classes, weekend modelling) that do not affect the scheduling comparison and
are documented as out of scope in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from ..core.cluster import Cluster
from ..core.job import JobSpec
from ..exceptions import ConfigurationError
from .cpu import CpuNeedModel
from .memory import MemoryRequirementModel
from .model import Workload

__all__ = ["LublinModelParameters", "LublinWorkloadGenerator"]


@dataclass(frozen=True)
class LublinModelParameters:
    """Published constants of the Lublin–Feitelson model."""

    # --- job size -----------------------------------------------------------
    #: Probability that a job is serial (one task).
    serial_probability: float = 0.244
    #: Probability that a parallel job size is an exact power of two.
    power_of_two_probability: float = 0.576
    #: Lower bound of log2(size) for parallel jobs.
    uniform_low: float = 0.8
    #: Breakpoint of the two-stage uniform distribution of log2(size).
    uniform_med: float = 4.5
    #: Probability of drawing from the low segment of the two-stage uniform.
    uniform_prob: float = 0.86

    # --- runtime (log-seconds, hyper-gamma) ----------------------------------
    gamma1_shape: float = 4.2
    gamma1_scale: float = 0.94
    gamma2_shape: float = 312.0
    gamma2_scale: float = 0.03
    #: Mixing probability p = clamp(pa * size + pb).
    mix_slope: float = -0.0054
    mix_intercept: float = 0.78

    # --- inter-arrival times (log-seconds, gamma) ----------------------------
    #: Shape of the log-gamma inter-arrival distribution.  The original model
    #: uses two job classes with separate arrival processes; this single-class
    #: simplification is calibrated so that a 1,000-job trace on 128 nodes
    #: spans roughly 4-6 days, the figure quoted in the paper (§IV-C).
    arrival_shape: float = 8.72
    arrival_scale: float = 0.4871
    #: Relative arrival intensity of the quietest hour vs. the busiest hour.
    daily_cycle_depth: float = 0.5
    #: Hour of peak submission activity.
    daily_cycle_peak_hour: float = 14.0

    #: Bounds on generated runtimes (seconds).
    min_runtime: float = 1.0
    max_runtime: float = 7 * 24 * 3600.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.serial_probability <= 1.0):
            raise ConfigurationError("serial_probability must be in [0, 1]")
        if not (0.0 <= self.power_of_two_probability <= 1.0):
            raise ConfigurationError("power_of_two_probability must be in [0, 1]")
        if not (0.0 <= self.uniform_prob <= 1.0):
            raise ConfigurationError("uniform_prob must be in [0, 1]")
        if not (0.0 <= self.daily_cycle_depth < 1.0):
            raise ConfigurationError("daily_cycle_depth must be in [0, 1)")
        if self.min_runtime <= 0 or self.max_runtime <= self.min_runtime:
            raise ConfigurationError("invalid runtime bounds")


class LublinWorkloadGenerator:
    """Generate annotated synthetic workloads for a given cluster.

    The generator composes the Lublin model (size, runtime, arrivals) with
    the paper's CPU-need and memory-requirement annotations (§IV-C), which
    are injected as :class:`CpuNeedModel` and :class:`MemoryRequirementModel`
    collaborators so that ablations can swap them out.
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        parameters: Optional[LublinModelParameters] = None,
        cpu_model: Optional[CpuNeedModel] = None,
        memory_model: Optional[MemoryRequirementModel] = None,
    ) -> None:
        self.cluster = cluster
        self.parameters = parameters or LublinModelParameters()
        self.cpu_model = cpu_model or CpuNeedModel(cores_per_node=cluster.cores_per_node)
        self.memory_model = memory_model or MemoryRequirementModel()

    # -- individual attribute samplers ----------------------------------------
    def sample_size(self, rng: np.random.Generator) -> int:
        """Number of tasks of one job."""
        p = self.parameters
        if rng.random() < p.serial_probability:
            return 1
        high = math.log2(self.cluster.num_nodes)
        low = min(p.uniform_low, high)
        med = min(max(p.uniform_med, low), high)
        if rng.random() < p.uniform_prob:
            log_size = rng.uniform(low, med)
        else:
            log_size = rng.uniform(med, high)
        if rng.random() < p.power_of_two_probability:
            size = 2 ** int(round(log_size))
        else:
            size = int(round(2 ** log_size))
        return int(min(max(size, 1), self.cluster.num_nodes))

    def sample_runtime(self, size: int, rng: np.random.Generator) -> float:
        """Runtime in seconds, correlated with the job size."""
        p = self.parameters
        mix = p.mix_slope * size + p.mix_intercept
        mix = min(0.95, max(0.05, mix))
        if rng.random() < mix:
            log_runtime = rng.gamma(p.gamma1_shape, p.gamma1_scale)
        else:
            log_runtime = rng.gamma(p.gamma2_shape, p.gamma2_scale)
        runtime = math.exp(log_runtime)
        return float(min(max(runtime, p.min_runtime), p.max_runtime))

    def sample_interarrival(self, current_time: float, rng: np.random.Generator) -> float:
        """Gap until the next submission, in seconds.

        The base gap is log-gamma distributed; a sinusoidal daily cycle
        stretches gaps at night and compresses them around the peak hour.
        """
        p = self.parameters
        gap = math.exp(rng.gamma(p.arrival_shape, p.arrival_scale))
        hour = (current_time / 3600.0) % 24.0
        phase = math.cos(2.0 * math.pi * (hour - p.daily_cycle_peak_hour) / 24.0)
        # intensity in [1 - depth, 1]: 1 at the peak hour, lowest at night.
        intensity = 1.0 - p.daily_cycle_depth * (1.0 - phase) / 2.0
        return float(gap / max(intensity, 1e-6))

    # -- workload assembly -----------------------------------------------------
    def iter_jobs(self, num_jobs: int, *, seed: int = 0) -> Iterator[JobSpec]:
        """Stream ``num_jobs`` annotated jobs one at a time, arrival-ordered.

        Byte-identical to :meth:`generate` (same RNG draw order); this is the
        bounded-memory intake used by the streaming trace sources of
        :mod:`repro.traces`.
        """
        if num_jobs < 1:
            raise ConfigurationError(f"num_jobs must be >= 1, got {num_jobs}")
        rng = np.random.default_rng(seed)
        current_time = 0.0
        for job_id in range(num_jobs):
            current_time += self.sample_interarrival(current_time, rng)
            size = self.sample_size(rng)
            runtime = self.sample_runtime(size, rng)
            cpu_need = self.cpu_model.cpu_need(size, rng)
            memory = self.memory_model.memory_requirement(rng)
            yield JobSpec(
                job_id=job_id,
                submit_time=current_time,
                num_tasks=size,
                cpu_need=cpu_need,
                mem_requirement=memory,
                execution_time=runtime,
            )

    def generate(
        self,
        num_jobs: int,
        *,
        seed: int = 0,
        name: Optional[str] = None,
    ) -> Workload:
        """Generate ``num_jobs`` annotated jobs for the configured cluster."""
        jobs = list(self.iter_jobs(num_jobs, seed=seed))
        return Workload(name or f"lublin-seed{seed}", self.cluster, jobs)
