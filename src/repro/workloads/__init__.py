"""Workload generation and trace handling (Lublin model, SWF, HPC2N)."""

from .characterization import (
    WorkloadCharacterization,
    characterization_table,
    characterize,
    characterize_stream,
    size_histogram,
)
from .cpu import CpuNeedModel
from .filters import (
    clip_runtimes,
    drop_shorter_than,
    drop_wider_than,
    filter_jobs,
    merge_workloads,
    rebase_submit_times,
    truncate_after,
)
from .hpc2n import (
    HPC2N_CLUSTER,
    WEEK_SECONDS,
    Hpc2nLikeTraceGenerator,
    Hpc2nPreprocessingOptions,
    record_to_jobspec,
    swf_to_dfrs_jobs,
)
from .lublin import LublinModelParameters, LublinWorkloadGenerator
from .memory import MemoryRequirementModel
from .model import Workload, offered_load
from .scaling import DEFAULT_LOAD_LEVELS, load_sweep, scale_to_load
from .swf import (
    SwfHeader,
    SwfRecord,
    iter_swf_records,
    open_trace_text,
    parse_swf,
    parse_swf_lines,
    parse_swf_with_header,
    read_swf_header,
    swf_header,
    write_swf,
)

__all__ = [
    "WorkloadCharacterization",
    "characterization_table",
    "characterize",
    "characterize_stream",
    "size_histogram",
    "clip_runtimes",
    "drop_shorter_than",
    "drop_wider_than",
    "filter_jobs",
    "merge_workloads",
    "rebase_submit_times",
    "truncate_after",
    "CpuNeedModel",
    "HPC2N_CLUSTER",
    "WEEK_SECONDS",
    "Hpc2nLikeTraceGenerator",
    "Hpc2nPreprocessingOptions",
    "record_to_jobspec",
    "swf_to_dfrs_jobs",
    "LublinModelParameters",
    "LublinWorkloadGenerator",
    "MemoryRequirementModel",
    "Workload",
    "offered_load",
    "DEFAULT_LOAD_LEVELS",
    "load_sweep",
    "scale_to_load",
    "SwfHeader",
    "SwfRecord",
    "iter_swf_records",
    "open_trace_text",
    "parse_swf",
    "parse_swf_lines",
    "parse_swf_with_header",
    "read_swf_header",
    "swf_header",
    "write_swf",
]
