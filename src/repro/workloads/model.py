"""Workload container shared by the synthetic and trace-based generators.

A :class:`Workload` couples a list of :class:`~repro.core.job.JobSpec` with
the cluster it was generated for, plus a human-readable name used in reports.
It also implements the *offered load* computation of the paper (§IV-C): the
total node-seconds requested by the jobs divided by the node-seconds the
cluster offers over the submission span.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..core.cluster import Cluster
from ..core.job import JobSpec
from ..exceptions import WorkloadError

__all__ = ["Workload", "offered_load", "offered_load_stream"]


def offered_load(jobs: Sequence[JobSpec], cluster: Cluster) -> float:
    """Offered load of a job list on a cluster.

    Defined as ``sum_j(tasks_j × runtime_j) / (N × span)`` where the span is
    the time between the first and the last submission.  Values above 1 mean
    the cluster cannot keep up even at perfect packing.
    """
    return offered_load_stream(jobs, cluster)


def offered_load_stream(specs: Iterable[JobSpec], cluster: Cluster) -> float:
    """:func:`offered_load` of a spec stream, in one O(1)-memory pass.

    The single implementation behind both forms: the span is
    ``max(submits) - min(submits)``, so a stray out-of-order record yields
    the same load as sorting would, ``0.0`` for an empty stream, and ``inf``
    for a degenerate span.
    """
    demand = 0.0
    earliest = math.inf
    latest = -math.inf
    empty = True
    for spec in specs:
        empty = False
        demand += spec.num_tasks * spec.execution_time
        if spec.submit_time < earliest:
            earliest = spec.submit_time
        if spec.submit_time > latest:
            latest = spec.submit_time
    if empty:
        return 0.0
    span = latest - earliest
    if span <= 0:
        return float("inf")
    return demand / (cluster.num_nodes * span)


@dataclass
class Workload:
    """A named list of jobs targeted at a specific cluster."""

    name: str
    cluster: Cluster
    jobs: List[JobSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        ids = [spec.job_id for spec in self.jobs]
        if len(ids) != len(set(ids)):
            raise WorkloadError(f"workload {self.name!r} contains duplicate job ids")
        self.jobs = sorted(self.jobs, key=lambda spec: (spec.submit_time, spec.job_id))

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self.jobs)

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    @property
    def span_seconds(self) -> float:
        """Time between the first and the last submission."""
        if not self.jobs:
            return 0.0
        submits = [spec.submit_time for spec in self.jobs]
        return max(submits) - min(submits)

    def load(self) -> float:
        """Offered load of this workload on its cluster."""
        return offered_load(self.jobs, self.cluster)

    def scaled_interarrival(self, factor: float, *, name: Optional[str] = None) -> "Workload":
        """New workload with every inter-arrival time multiplied by ``factor``.

        Job mixes (sizes, runtimes, needs) are untouched; only submission
        times move, which is how the paper creates traces with target offered
        loads from a single generated trace.
        """
        if factor <= 0:
            raise WorkloadError(f"inter-arrival scaling factor must be > 0, got {factor}")
        if not self.jobs:
            return Workload(name or self.name, self.cluster, [])
        base = self.jobs[0].submit_time
        scaled_jobs: List[JobSpec] = []
        for spec in self.jobs:
            new_submit = base + (spec.submit_time - base) * factor
            scaled_jobs.append(replace(spec, submit_time=new_submit))
        return Workload(name or f"{self.name}-x{factor:.3f}", self.cluster, scaled_jobs)

    def head(self, count: int, *, name: Optional[str] = None) -> "Workload":
        """New workload containing only the first ``count`` jobs."""
        if count < 1:
            raise WorkloadError(f"count must be >= 1, got {count}")
        return Workload(name or f"{self.name}-head{count}", self.cluster, self.jobs[:count])

    def segments(self, duration_seconds: float) -> List["Workload"]:
        """Split the workload into consecutive segments of fixed duration.

        Used to split the HPC2N trace into 1-week segments (§IV-C).  Each
        segment's submission times are rebased to start at zero and job ids
        are preserved.  Empty segments are dropped.
        """
        if duration_seconds <= 0:
            raise WorkloadError(
                f"segment duration must be > 0, got {duration_seconds}"
            )
        if not self.jobs:
            return []
        start = self.jobs[0].submit_time
        buckets: dict = {}
        for spec in self.jobs:
            index = int((spec.submit_time - start) // duration_seconds)
            buckets.setdefault(index, []).append(spec)
        segments = []
        for index in sorted(buckets):
            base = start + index * duration_seconds
            rebased = [
                replace(spec, submit_time=spec.submit_time - base)
                for spec in buckets[index]
            ]
            segments.append(
                Workload(f"{self.name}-week{index:03d}", self.cluster, rebased)
            )
        return segments

    def statistics(self) -> dict:
        """Descriptive statistics used by reports and sanity tests."""
        if not self.jobs:
            return {"num_jobs": 0}
        sizes = np.array([spec.num_tasks for spec in self.jobs], dtype=float)
        runtimes = np.array([spec.execution_time for spec in self.jobs], dtype=float)
        memory = np.array([spec.mem_requirement for spec in self.jobs], dtype=float)
        return {
            "num_jobs": len(self.jobs),
            "load": self.load(),
            "span_seconds": self.span_seconds,
            "mean_tasks": float(sizes.mean()),
            "max_tasks": int(sizes.max()),
            "serial_fraction": float(np.mean(sizes == 1)),
            "mean_runtime": float(runtimes.mean()),
            "median_runtime": float(np.median(runtimes)),
            "mean_memory": float(memory.mean()),
        }
