"""Standard Workload Format (SWF) reader and writer.

The Parallel Workloads Archive distributes every trace (including HPC2N, the
real-world workload of the paper) in SWF: one line per job with 18
whitespace-separated fields, header/comment lines starting with ``;``.  This
module parses and writes that format losslessly for the fields the DFRS
pipeline needs; unknown or missing values use the SWF convention of ``-1``.

Archive downloads are usually gzip-compressed (``*.swf.gz``); every reader
here opens those transparently.  Header directives (``; MaxNodes: 120`` and
friends) are parsed into a :class:`SwfHeader` instead of being discarded, and
:func:`iter_swf_records` streams records one at a time so arbitrarily long
traces can feed the streaming simulation path of :mod:`repro.traces` in
bounded memory.

Field reference (1-based, as in the SWF specification):

1. job number              7. used memory (KB per processor)
2. submit time (s)         8. requested number of processors
3. wait time (s)           9. requested time (s)
4. run time (s)           10. requested memory (KB per processor)
5. allocated processors   11. status
6. average CPU time (s)   12-18. user/group/app/queue/partition/prec/think
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
    Union,
)

from ..exceptions import TraceFormatError

__all__ = [
    "SwfRecord",
    "SwfHeader",
    "open_trace_text",
    "parse_swf",
    "parse_swf_lines",
    "parse_swf_with_header",
    "iter_swf_records",
    "read_swf_header",
    "write_swf",
    "swf_header",
]

_NUM_FIELDS = 18


@dataclass(frozen=True)
class SwfHeader:
    """Metadata parsed from the ``;``-comment directives of an SWF trace.

    The Parallel Workloads Archive convention is ``; Key: value`` lines at
    the top of the file.  The well-known keys used by this pipeline get
    typed attributes; every directive (known or not) is also kept verbatim
    in ``directives`` so nothing is lost.
    """

    computer: Optional[str] = None
    max_nodes: Optional[int] = None
    max_procs: Optional[int] = None
    unix_start_time: Optional[int] = None
    directives: Tuple[Tuple[str, str], ...] = ()

    def directives_dict(self) -> Dict[str, str]:
        return dict(self.directives)

    @classmethod
    def from_comment_lines(cls, lines: Iterable[str]) -> "SwfHeader":
        """Build a header from the raw ``;`` comment lines of a trace."""
        directives: List[Tuple[str, str]] = []
        for raw in lines:
            stripped = raw.strip().lstrip(";").strip()
            if ":" not in stripped:
                continue
            key, _, value = stripped.partition(":")
            key = key.strip()
            value = value.strip()
            if key:
                directives.append((key, value))
        mapping = dict(directives)
        return cls(
            computer=mapping.get("Computer"),
            max_nodes=_int_directive(mapping, "MaxNodes"),
            max_procs=_int_directive(mapping, "MaxProcs"),
            unix_start_time=_int_directive(mapping, "UnixStartTime"),
            directives=tuple(directives),
        )


def _int_directive(mapping: Dict[str, str], key: str) -> Optional[int]:
    value = mapping.get(key)
    if value is None:
        return None
    try:
        return int(float(value.split()[0]))
    except (ValueError, IndexError):
        return None


def open_trace_text(path: Union[str, Path], mode: str = "rt") -> TextIO:
    """Open a trace file as text, transparently (de)compressing ``.gz``.

    ``mode`` is ``"rt"`` or ``"wt"``.  The shared gzip seam of every trace
    format in this package (SWF here, the internal JSON format in
    :mod:`repro.traces.io`); reads substitute undecodable bytes so a stray
    binary glitch cannot abort a multi-gigabyte parse.
    """
    path = Path(path)
    errors = "replace" if "r" in mode else None
    if path.suffix == ".gz":
        return gzip.open(path, mode, encoding="utf-8", errors=errors)
    return path.open(mode.replace("t", ""), encoding="utf-8", errors=errors)


def _open_trace(path: Path) -> TextIO:
    """Open an SWF trace for reading, transparently decompressing ``.gz``."""
    return open_trace_text(path, "rt")


@dataclass(frozen=True)
class SwfRecord:
    """One job line of an SWF trace (missing values are ``-1``)."""

    job_number: int
    submit_time: float
    wait_time: float = -1.0
    run_time: float = -1.0
    allocated_processors: int = -1
    average_cpu_time: float = -1.0
    used_memory_kb: float = -1.0
    requested_processors: int = -1
    requested_time: float = -1.0
    requested_memory_kb: float = -1.0
    status: int = -1
    user_id: int = -1
    group_id: int = -1
    executable: int = -1
    queue: int = -1
    partition: int = -1
    preceding_job: int = -1
    think_time: float = -1.0

    @property
    def processors(self) -> int:
        """Best available processor count (requested, falling back to allocated)."""
        if self.requested_processors > 0:
            return self.requested_processors
        return self.allocated_processors

    def is_usable(self) -> bool:
        """True when the record has the minimum data needed for simulation."""
        return self.run_time > 0 and self.processors > 0 and self.submit_time >= 0

    def to_line(self) -> str:
        """Serialize the record as one SWF line."""
        fields = [
            self.job_number,
            _fmt(self.submit_time),
            _fmt(self.wait_time),
            _fmt(self.run_time),
            self.allocated_processors,
            _fmt(self.average_cpu_time),
            _fmt(self.used_memory_kb),
            self.requested_processors,
            _fmt(self.requested_time),
            _fmt(self.requested_memory_kb),
            self.status,
            self.user_id,
            self.group_id,
            self.executable,
            self.queue,
            self.partition,
            self.preceding_job,
            _fmt(self.think_time),
        ]
        return " ".join(str(value) for value in fields)


def _fmt(value: float) -> Union[int, float]:
    """Render integral floats as integers, as conventional SWF files do."""
    if float(value).is_integer():
        return int(value)
    return round(float(value), 2)


def _parse_line(line: str, line_number: int) -> SwfRecord:
    parts = line.split()
    if len(parts) < _NUM_FIELDS:
        # Tolerate short lines by padding with the "unknown" marker; several
        # archive traces omit trailing fields.
        parts = parts + ["-1"] * (_NUM_FIELDS - len(parts))
    try:
        return SwfRecord(
            job_number=int(float(parts[0])),
            submit_time=float(parts[1]),
            wait_time=float(parts[2]),
            run_time=float(parts[3]),
            allocated_processors=int(float(parts[4])),
            average_cpu_time=float(parts[5]),
            used_memory_kb=float(parts[6]),
            requested_processors=int(float(parts[7])),
            requested_time=float(parts[8]),
            requested_memory_kb=float(parts[9]),
            status=int(float(parts[10])),
            user_id=int(float(parts[11])),
            group_id=int(float(parts[12])),
            executable=int(float(parts[13])),
            queue=int(float(parts[14])),
            partition=int(float(parts[15])),
            preceding_job=int(float(parts[16])),
            think_time=float(parts[17]),
        )
    except (ValueError, IndexError) as exc:
        raise TraceFormatError(
            f"line {line_number}: cannot parse SWF record: {line!r}"
        ) from exc


def parse_swf_lines(lines: Iterable[str]) -> List[SwfRecord]:
    """Parse SWF content given as an iterable of lines."""
    records: List[SwfRecord] = []
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        records.append(_parse_line(line, line_number))
    return records


def parse_swf(path: Union[str, Path]) -> List[SwfRecord]:
    """Parse an SWF file (optionally gzip-compressed) from disk."""
    return parse_swf_with_header(path)[1]


def parse_swf_with_header(
    path: Union[str, Path]
) -> Tuple[SwfHeader, List[SwfRecord]]:
    """Parse an SWF file, returning its header metadata and records."""
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"SWF trace not found: {path}")
    comments: List[str] = []
    records: List[SwfRecord] = []
    with _open_trace(path) as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith(";"):
                comments.append(line)
                continue
            records.append(_parse_line(line, line_number))
    return SwfHeader.from_comment_lines(comments), records


def read_swf_header(path: Union[str, Path]) -> SwfHeader:
    """Read only the leading comment header of an SWF file.

    Stops at the first job line, so it is cheap even on multi-gigabyte
    traces.
    """
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"SWF trace not found: {path}")
    comments: List[str] = []
    with _open_trace(path) as handle:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if not line.startswith(";"):
                break
            comments.append(line)
    return SwfHeader.from_comment_lines(comments)


def iter_swf_records(path: Union[str, Path]) -> Iterator[SwfRecord]:
    """Stream the records of an SWF file one at a time.

    A missing file is reported here, at call time (matching
    :func:`parse_swf`), not at first iteration.  The file handle stays open
    for the lifetime of the returned iterator; exhausting (or
    garbage-collecting) it closes the file.  This is the bounded-memory
    intake used by :class:`repro.traces.SwfTraceSource`.
    """
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"SWF trace not found: {path}")

    def _stream() -> Iterator[SwfRecord]:
        with _open_trace(path) as handle:
            for line_number, raw in enumerate(handle, start=1):
                line = raw.strip()
                if not line or line.startswith(";"):
                    continue
                yield _parse_line(line, line_number)

    return _stream()


def swf_header(
    *,
    computer: str = "synthetic",
    max_nodes: int = 0,
    max_procs: int = 0,
    note: str = "",
) -> List[str]:
    """Standard comment header lines for a generated SWF file."""
    lines = [
        f"; Computer: {computer}",
        f"; MaxNodes: {max_nodes}",
        f"; MaxProcs: {max_procs}",
        "; Format: SWF standard 18-field records",
    ]
    if note:
        lines.append(f"; Note: {note}")
    return lines


def write_swf(
    records: Sequence[SwfRecord],
    destination: Union[str, Path, TextIO],
    *,
    header: Optional[Sequence[str]] = None,
) -> None:
    """Write records to ``destination`` (path or open text file)."""
    def _emit(handle: TextIO) -> None:
        for line in header or []:
            handle.write(line.rstrip("\n") + "\n")
        for record in records:
            handle.write(record.to_line() + "\n")

    if hasattr(destination, "write"):
        _emit(destination)  # type: ignore[arg-type]
        return
    path = Path(destination)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open_trace_text(path, "wt") as handle:
        _emit(handle)
