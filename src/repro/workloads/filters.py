"""Workload cleaning and transformation utilities.

Real SWF traces routinely need cleaning before they can drive a simulation:
jobs wider than the simulated cluster, zero-length jobs left by crashed
submissions, bursts one wants to excise, several logs to be merged into one.
The paper performs such preprocessing by hand for the HPC2N trace (§IV-C);
these helpers make every step explicit, reusable, and testable.

All functions return **new** :class:`~repro.workloads.model.Workload`
objects; the input is never mutated.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional, Sequence

from ..core.job import JobSpec
from ..exceptions import WorkloadError
from .model import Workload

__all__ = [
    "filter_jobs",
    "drop_wider_than",
    "drop_shorter_than",
    "clip_runtimes",
    "rebase_submit_times",
    "truncate_after",
    "merge_workloads",
]


def filter_jobs(
    workload: Workload,
    predicate: Callable[[JobSpec], bool],
    *,
    name: Optional[str] = None,
) -> Workload:
    """Keep only the jobs for which ``predicate`` returns True."""
    kept = [spec for spec in workload.jobs if predicate(spec)]
    return Workload(name or f"{workload.name}-filtered", workload.cluster, kept)


def drop_wider_than(workload: Workload, max_tasks: Optional[int] = None) -> Workload:
    """Drop jobs requesting more tasks than ``max_tasks``.

    With ``max_tasks=None`` the cluster size is used, which is the cleaning
    step every batch baseline needs (a job wider than the cluster can never
    start under exclusive node allocation).
    """
    limit = workload.cluster.num_nodes if max_tasks is None else max_tasks
    if limit < 1:
        raise WorkloadError(f"max_tasks must be >= 1, got {limit}")
    return filter_jobs(
        workload,
        lambda spec: spec.num_tasks <= limit,
        name=f"{workload.name}-max{limit}",
    )


def drop_shorter_than(workload: Workload, min_runtime_seconds: float) -> Workload:
    """Drop jobs with a dedicated execution time below ``min_runtime_seconds``.

    Useful for excluding the crashed-at-startup jobs that motivate the
    *bounded* stretch (§II-B2) when one wants to study the unbounded metric.
    """
    if min_runtime_seconds < 0:
        raise WorkloadError(
            f"min_runtime_seconds must be >= 0, got {min_runtime_seconds}"
        )
    return filter_jobs(
        workload,
        lambda spec: spec.execution_time >= min_runtime_seconds,
        name=f"{workload.name}-min{int(min_runtime_seconds)}s",
    )


def clip_runtimes(
    workload: Workload,
    *,
    min_runtime_seconds: float = 1.0,
    max_runtime_seconds: Optional[float] = None,
) -> Workload:
    """Clamp every job's execution time into the given range.

    Unlike :func:`drop_shorter_than` this keeps every job; it is the standard
    way of handling the zero-second runtimes found in some archive traces
    without changing the job count.
    """
    if min_runtime_seconds <= 0:
        raise WorkloadError(
            f"min_runtime_seconds must be > 0, got {min_runtime_seconds}"
        )
    if max_runtime_seconds is not None and max_runtime_seconds < min_runtime_seconds:
        raise WorkloadError("max_runtime_seconds must be >= min_runtime_seconds")
    clipped: List[JobSpec] = []
    for spec in workload.jobs:
        runtime = max(spec.execution_time, min_runtime_seconds)
        if max_runtime_seconds is not None:
            runtime = min(runtime, max_runtime_seconds)
        clipped.append(replace(spec, execution_time=runtime))
    return Workload(f"{workload.name}-clipped", workload.cluster, clipped)


def rebase_submit_times(workload: Workload, *, start: float = 0.0) -> Workload:
    """Shift all submission times so that the first job is submitted at ``start``."""
    if start < 0:
        raise WorkloadError(f"start must be >= 0, got {start}")
    if not workload.jobs:
        return Workload(workload.name, workload.cluster, [])
    first = min(spec.submit_time for spec in workload.jobs)
    shifted = [
        replace(spec, submit_time=spec.submit_time - first + start)
        for spec in workload.jobs
    ]
    return Workload(workload.name, workload.cluster, shifted)


def truncate_after(workload: Workload, duration_seconds: float) -> Workload:
    """Keep only the jobs submitted within ``duration_seconds`` of the first job."""
    if duration_seconds <= 0:
        raise WorkloadError(f"duration_seconds must be > 0, got {duration_seconds}")
    if not workload.jobs:
        return Workload(workload.name, workload.cluster, [])
    first = min(spec.submit_time for spec in workload.jobs)
    return filter_jobs(
        workload,
        lambda spec: spec.submit_time - first <= duration_seconds,
        name=f"{workload.name}-first{int(duration_seconds)}s",
    )


def merge_workloads(
    name: str,
    workloads: Sequence[Workload],
    *,
    sequential: bool = False,
    gap_seconds: float = 0.0,
) -> Workload:
    """Merge several workloads targeting the same cluster into one.

    Job ids are re-numbered to stay unique.  With ``sequential=False``
    (default) submission times are kept as they are, which interleaves the
    workloads; with ``sequential=True`` each workload is shifted to start
    ``gap_seconds`` after the previous one ends its submissions.
    """
    if not workloads:
        raise WorkloadError("need at least one workload to merge")
    if gap_seconds < 0:
        raise WorkloadError(f"gap_seconds must be >= 0, got {gap_seconds}")
    cluster = workloads[0].cluster
    for workload in workloads[1:]:
        if workload.cluster != cluster:
            raise WorkloadError("all merged workloads must target the same cluster")
    merged: List[JobSpec] = []
    next_id = 0
    offset = 0.0
    for workload in workloads:
        rebased = rebase_submit_times(workload) if sequential else workload
        for spec in rebased.jobs:
            submit = spec.submit_time + (offset if sequential else 0.0)
            merged.append(replace(spec, job_id=next_id, submit_time=submit))
            next_id += 1
        if sequential and rebased.jobs:
            offset += rebased.span_seconds + gap_seconds
    return Workload(name, cluster, merged)
