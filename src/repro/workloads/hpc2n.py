"""HPC2N real-world workload: preprocessing rules and a synthetic stand-in.

The paper's real-world experiments use the HPC2N trace from the Parallel
Workloads Archive: 182 weeks of jobs from a 120-node dual-core Linux cluster
with 2 GB of memory per node.  Two pieces are implemented here:

* :func:`swf_to_dfrs_jobs` applies the paper's exact preprocessing (§IV-C) to
  any SWF record list — in particular to a genuine HPC2N file if one is
  available locally:

  - per-processor memory = ``max(requested, used) / 2 GB``, floored at 10 %;
    ~1 % of jobs report no memory at all and are assigned 10 %;
  - jobs with an even processor count and per-processor memory below 50 %
    become ``processors / 2`` dual-threaded tasks with a 100 % CPU need and a
    doubled memory requirement;
  - all other jobs keep one task per processor with a 50 % CPU need (one of
    the two cores).

* :class:`Hpc2nLikeTraceGenerator` produces a *synthetic HPC2N-like* SWF
  trace with the characteristics the paper relies on (many short serial
  jobs, nearly complete memory information, 120 dual-core nodes), for use
  when the real log cannot be redistributed.  DESIGN.md documents this
  substitution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..core.cluster import Cluster
from ..core.job import JobSpec
from ..exceptions import WorkloadError
from .model import Workload
from .swf import SwfRecord

__all__ = [
    "HPC2N_CLUSTER",
    "Hpc2nPreprocessingOptions",
    "record_to_jobspec",
    "swf_to_dfrs_jobs",
    "Hpc2nLikeTraceGenerator",
    "WEEK_SECONDS",
]

#: The HPC2N cluster as described in the paper: 120 dual-core nodes, 2 GB.
HPC2N_CLUSTER = Cluster(num_nodes=120, cores_per_node=2, node_memory_gb=2.0)

#: One week, used to split the long trace into independent instances.
WEEK_SECONDS = 7 * 24 * 3600.0


@dataclass(frozen=True)
class Hpc2nPreprocessingOptions:
    """Knobs of the §IV-C preprocessing (defaults reproduce the paper)."""

    node_memory_kb: float = 2.0 * 1024 * 1024
    minimum_memory_fraction: float = 0.10
    #: Per-processor memory threshold below which an even-processor job is
    #: converted to multi-threaded dual-core tasks.
    pairing_threshold: float = 0.50
    #: CPU need of a task occupying a single core of a dual-core node.
    single_core_need: float = 0.50


def record_to_jobspec(
    record: SwfRecord,
    cluster: Cluster = HPC2N_CLUSTER,
    *,
    job_id: int,
    options: Optional[Hpc2nPreprocessingOptions] = None,
) -> Optional[JobSpec]:
    """Convert a single SWF record with the paper's §IV-C rules.

    Returns ``None`` for unusable records (no runtime or processor count).
    This is the per-record kernel of :func:`swf_to_dfrs_jobs`, exposed
    separately so the streaming trace sources in :mod:`repro.traces` can
    convert records one at a time without materializing the trace.
    """
    opts = options or Hpc2nPreprocessingOptions()
    if not record.is_usable():
        return None
    processors = record.processors
    per_proc_memory = _per_processor_memory(record, opts)
    if processors % 2 == 0 and per_proc_memory < opts.pairing_threshold:
        num_tasks = processors // 2
        cpu_need = 1.0
        memory = min(1.0, 2.0 * per_proc_memory)
    else:
        num_tasks = processors
        cpu_need = opts.single_core_need
        memory = min(1.0, per_proc_memory)
    num_tasks = min(num_tasks, cluster.num_nodes)
    return JobSpec(
        job_id=job_id,
        submit_time=float(record.submit_time),
        num_tasks=int(num_tasks),
        cpu_need=cpu_need,
        mem_requirement=memory,
        execution_time=float(record.run_time),
    )


def swf_to_dfrs_jobs(
    records: Sequence[SwfRecord],
    cluster: Cluster = HPC2N_CLUSTER,
    *,
    options: Optional[Hpc2nPreprocessingOptions] = None,
    name: str = "hpc2n",
) -> Workload:
    """Convert SWF records to a DFRS workload using the paper's rules."""
    opts = options or Hpc2nPreprocessingOptions()
    jobs: List[JobSpec] = []
    for record in records:
        spec = record_to_jobspec(record, cluster, job_id=len(jobs), options=opts)
        if spec is not None:
            jobs.append(spec)
    if not jobs:
        raise WorkloadError("no usable jobs found in the SWF records")
    return Workload(name, cluster, jobs)


def _per_processor_memory(
    record: SwfRecord, opts: Hpc2nPreprocessingOptions
) -> float:
    """Per-processor memory fraction, floored at the paper's 10 % minimum."""
    observed_kb = max(record.used_memory_kb, record.requested_memory_kb)
    if observed_kb <= 0:
        return opts.minimum_memory_fraction
    fraction = observed_kb / opts.node_memory_kb
    return min(1.0, max(opts.minimum_memory_fraction, fraction))


class Hpc2nLikeTraceGenerator:
    """Synthetic stand-in for the HPC2N SWF log.

    The generated trace mimics the properties the paper's discussion depends
    on rather than the exact distributions of the original log:

    * a large majority of short, serial (single-processor) jobs — the trait
      the paper invokes to explain why greedy algorithms do comparatively
      well on HPC2N;
    * a minority of parallel jobs with power-of-two processor counts up to
      the full machine;
    * memory information present for ~99 % of jobs, expressed in KB per
      processor against 2 GB nodes;
    * Poisson-like arrivals tuned to a configurable weekly job count.
    """

    def __init__(
        self,
        cluster: Cluster = HPC2N_CLUSTER,
        *,
        serial_fraction: float = 0.75,
        short_job_fraction: float = 0.60,
        missing_memory_fraction: float = 0.01,
        jobs_per_week: int = 1100,
    ) -> None:
        if not (0.0 <= serial_fraction <= 1.0):
            raise WorkloadError("serial_fraction must be in [0, 1]")
        if not (0.0 <= short_job_fraction <= 1.0):
            raise WorkloadError("short_job_fraction must be in [0, 1]")
        if not (0.0 <= missing_memory_fraction <= 1.0):
            raise WorkloadError("missing_memory_fraction must be in [0, 1]")
        if jobs_per_week < 1:
            raise WorkloadError("jobs_per_week must be >= 1")
        self.cluster = cluster
        self.serial_fraction = serial_fraction
        self.short_job_fraction = short_job_fraction
        self.missing_memory_fraction = missing_memory_fraction
        self.jobs_per_week = jobs_per_week

    @property
    def total_processors(self) -> int:
        return self.cluster.num_nodes * self.cluster.cores_per_node

    def _sample_processors(self, rng: np.random.Generator) -> int:
        if rng.random() < self.serial_fraction:
            return 1
        max_log = int(math.log2(self.total_processors))
        log_size = rng.integers(1, max_log + 1)
        processors = int(2 ** log_size)
        if rng.random() < 0.2:
            # A minority of odd, non-power-of-two sizes.
            processors = max(1, processors - int(rng.integers(1, 4)))
        return min(processors, self.total_processors)

    def _sample_runtime(self, rng: np.random.Generator) -> float:
        if rng.random() < self.short_job_fraction:
            # Short jobs: seconds to a few minutes (many fail right away).
            return float(max(1.0, rng.lognormal(mean=3.0, sigma=1.2)))
        # Long jobs: tens of minutes to a couple of days.
        return float(min(2 * 24 * 3600.0, rng.lognormal(mean=9.0, sigma=1.0)))

    def _sample_memory_kb(self, rng: np.random.Generator) -> float:
        if rng.random() < self.missing_memory_fraction:
            return -1.0
        node_kb = self.cluster.node_memory_gb * 1024 * 1024
        # Most jobs use a small share of the node memory; a few use most of it.
        fraction = min(1.0, max(0.02, rng.beta(1.2, 6.0)))
        return float(fraction * node_kb)

    def iter_records(
        self, num_weeks: int = 1, *, seed: int = 0
    ) -> Iterator[SwfRecord]:
        """Stream SWF records spanning ``num_weeks`` weeks one at a time.

        Byte-identical to :meth:`generate_records` (same RNG draw order);
        this is the bounded-memory intake used by the streaming trace
        sources of :mod:`repro.traces`.
        """
        if num_weeks < 1:
            raise WorkloadError(f"num_weeks must be >= 1, got {num_weeks}")
        rng = np.random.default_rng(seed)
        total_jobs = self.jobs_per_week * num_weeks
        mean_gap = (num_weeks * WEEK_SECONDS) / total_jobs
        current_time = 0.0
        for job_number in range(1, total_jobs + 1):
            current_time += float(rng.exponential(mean_gap))
            processors = self._sample_processors(rng)
            runtime = self._sample_runtime(rng)
            memory_kb = self._sample_memory_kb(rng)
            yield SwfRecord(
                job_number=job_number,
                submit_time=round(current_time, 1),
                wait_time=0.0,
                run_time=round(runtime, 1),
                allocated_processors=processors,
                average_cpu_time=round(runtime, 1),
                used_memory_kb=round(memory_kb, 1),
                requested_processors=processors,
                requested_time=round(runtime * 1.5, 1),
                requested_memory_kb=round(memory_kb, 1),
                status=1,
            )

    def generate_records(
        self, num_weeks: int = 1, *, seed: int = 0
    ) -> List[SwfRecord]:
        """Generate SWF records spanning ``num_weeks`` weeks."""
        return list(self.iter_records(num_weeks, seed=seed))

    def generate_workload(
        self, num_weeks: int = 1, *, seed: int = 0, name: str = "hpc2n-like"
    ) -> Workload:
        """Generate records and convert them with the paper's preprocessing."""
        records = self.generate_records(num_weeks, seed=seed)
        return swf_to_dfrs_jobs(records, self.cluster, name=f"{name}-seed{seed}")
