"""Online, mergeable statistics — the bounded-memory metrics subsystem.

The paper evaluates schedulers by distributional summaries (max/average
stretch, degradation factors, utilization); this package computes those
summaries *online*, so neither the engine nor the campaign layer has to keep
per-job records for million-job traces:

* :mod:`~repro.metrics.accumulators` — the :class:`Accumulator` contract
  (O(1) ``add``, associative ``merge``, canonical ``to_dict``/``from_dict``
  via a registry) and the standard set: Welford :class:`Moments`, exact
  :class:`SumAccumulator` tallies, :class:`FixedHistogram`,
  :class:`TopK` trackers, mergeable bottom-k :class:`ReservoirSample`
  exemplars, and the O(observations) :class:`ExactDistribution` reference
  mode that keeps legacy outputs byte-identical;
* :mod:`~repro.metrics.quantiles` — :class:`QuantileSketch`, a log-binned
  DDSketch-style quantile sketch with a proven relative-error bound and an
  exactly associative merge;
* :mod:`~repro.metrics.jobs` — :class:`JobMetricsAccumulator`, the composite
  the engine feeds in ``SimulationConfig(streaming_metrics=True)`` mode, and
  the bundle helpers streaming metric collectors use to ship partials across
  the multiprocessing pool.

Everything merges associatively, so ``merge(worker_1, merge(worker_2,
worker_3))`` equals ``merge(merge(worker_1, worker_2), worker_3)`` — the
property that makes campaign fan-out exact.
"""

from .accumulators import (
    Accumulator,
    ExactDistribution,
    FixedHistogram,
    Moments,
    ReservoirSample,
    SumAccumulator,
    TimeWeightedValue,
    TopK,
    accumulator_from_dict,
    available_accumulators,
    merge_accumulators,
    register_accumulator,
)
from .jobs import (
    JobMetricsAccumulator,
    bundle_from_dict,
    bundle_to_dict,
    merge_bundles,
)
from .quantiles import DEFAULT_RELATIVE_ERROR, QuantileSketch, nearest_rank

__all__ = [
    "Accumulator",
    "Moments",
    "SumAccumulator",
    "ExactDistribution",
    "FixedHistogram",
    "TopK",
    "ReservoirSample",
    "TimeWeightedValue",
    "QuantileSketch",
    "DEFAULT_RELATIVE_ERROR",
    "nearest_rank",
    "JobMetricsAccumulator",
    "bundle_to_dict",
    "bundle_from_dict",
    "merge_bundles",
    "register_accumulator",
    "accumulator_from_dict",
    "available_accumulators",
    "merge_accumulators",
]
