"""Mergeable streaming quantile sketch with a proven relative-error bound.

:class:`QuantileSketch` is a logarithmically-binned histogram sketch in the
style of DDSketch (Masson, Rim, Lee, VLDB 2019): each positive value ``x``
is mapped to the bucket ``ceil(log_gamma(x))`` with
``gamma = (1 + alpha) / (1 - alpha)``.  Every value in bucket ``i`` lies in
``(gamma^(i-1), gamma^i]``, and the bucket's representative value
``2·gamma^i / (gamma + 1)`` is within a factor ``(1 ± alpha)`` of *every*
point of the bucket.  This yields the sketch's guarantee:

    **Error bound.**  For a stream of ``n`` values and any ``q ∈ [0, 1]``,
    ``quantile(q)`` returns an estimate ``x̂`` with
    ``|x̂ − x_(r)| ≤ alpha · x_(r)``, where ``x_(r)`` is the exact
    nearest-rank quantile (the ``r``-th smallest value,
    ``r = max(1, ceil(q·n))``).  Zero values are counted exactly;
    negative values use a mirrored bucket array with the same bound on
    ``|x|``.

Unlike P² (not mergeable) or sampling-based KLL (randomized, merge-order
dependent), the sketch state is a plain bucket→count mapping, so ``merge``
is bucket-wise integer addition — **exactly associative and commutative**.
Per-worker partials therefore combine into precisely the sketch of the
concatenated stream, which is what the streaming campaign executor relies
on.  Memory is O(buckets) = O(log(max/min) / alpha): ~700 buckets cover six
decades at the default 1 % accuracy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

from ..exceptions import ConfigurationError, ReproError
from .accumulators import Accumulator, register_accumulator

__all__ = ["QuantileSketch", "DEFAULT_RELATIVE_ERROR", "nearest_rank"]

#: Default accuracy: estimates within 1 % of the exact quantile value.
DEFAULT_RELATIVE_ERROR = 0.01


def nearest_rank(q: float, n: int) -> int:
    """1-based nearest rank of quantile ``q`` in a sample of ``n`` values.

    ``max(1, ceil(q·n))`` with an epsilon guard against ``q·n`` landing one
    ulp above an integer.  The single definition shared by the sketch and
    the exact-mode quantile paths — the cross-mode agreement the acceptance
    tests pin ("streamed quantiles within the bound of the exact values")
    only holds while both use identical rank semantics.
    """
    return max(1, int(math.ceil(q * n - 1e-9)))


@dataclass
class QuantileSketch(Accumulator):
    """Log-binned quantile sketch; see the module docstring for the bound.

    ``relative_error`` (``alpha``) fixes the accuracy/memory trade-off at
    construction time; sketches only merge with sketches of the same
    ``alpha``.  ``quantile(q)`` takes ``q`` in ``[0, 1]``;
    ``percentile(p)`` takes ``p`` in ``[0, 100]``.
    """

    relative_error: float = DEFAULT_RELATIVE_ERROR
    n: int = 0
    zeros: int = 0
    buckets: Dict[int, int] = field(default_factory=dict)
    negative_buckets: Dict[int, int] = field(default_factory=dict)
    minimum: float = math.inf
    maximum: float = -math.inf

    kind = "quantile-sketch"

    def __post_init__(self) -> None:
        if not (0.0 < self.relative_error < 1.0):
            raise ConfigurationError(
                f"relative_error must be in (0, 1), got {self.relative_error}"
            )
        gamma = (1.0 + self.relative_error) / (1.0 - self.relative_error)
        # Derived constants are recomputed from relative_error (not
        # serialized) so equality of alpha implies identical bucketing.
        self._gamma = gamma
        self._log_gamma = math.log(gamma)

    @property
    def count(self) -> int:
        return self.n

    # -- intake ----------------------------------------------------------------
    def _bucket_of(self, magnitude: float) -> int:
        return int(math.ceil(math.log(magnitude) / self._log_gamma - 1e-12))

    def add(self, value: float) -> None:
        value = float(value)
        if math.isnan(value) or math.isinf(value):
            raise ReproError(f"cannot sketch non-finite value {value!r}")
        self.n += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value == 0.0:
            self.zeros += 1
        elif value > 0.0:
            index = self._bucket_of(value)
            self.buckets[index] = self.buckets.get(index, 0) + 1
        else:
            index = self._bucket_of(-value)
            self.negative_buckets[index] = self.negative_buckets.get(index, 0) + 1

    # -- merge -----------------------------------------------------------------
    def merge(self, other: Accumulator) -> "QuantileSketch":
        self._require_same_type(other)
        assert isinstance(other, QuantileSketch)
        if other.relative_error != self.relative_error:
            raise ReproError(
                "cannot merge quantile sketches with different accuracies: "
                f"{self.relative_error} vs {other.relative_error}"
            )
        self.n += other.n
        self.zeros += other.zeros
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        for index, count in other.negative_buckets.items():
            self.negative_buckets[index] = self.negative_buckets.get(index, 0) + count
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    # -- queries ---------------------------------------------------------------
    def _representative(self, index: int) -> float:
        # Geometric "midpoint" of (gamma^(i-1), gamma^i]: within (1 ± alpha)
        # of every value of the bucket.
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def quantile(self, q: float) -> float:
        """Estimate of the nearest-rank ``q``-quantile; ``q`` in [0, 1].

        Guaranteed within ``relative_error`` (relatively) of the exact
        ``max(1, ceil(q·n))``-th smallest value; clamped into the exact
        observed ``[min, max]``, so ``quantile(0.0)`` and ``quantile(1.0)``
        are exact.
        """
        if not (0.0 <= q <= 1.0):
            raise ReproError(f"quantile q must be in [0, 1], got {q}")
        if self.n == 0:
            raise ReproError("cannot take a quantile of an empty sketch")
        # The extremes are tracked exactly, so return them exactly.
        if q == 0.0:
            return self.minimum
        if q == 1.0:
            return self.maximum
        estimate = self._value_at_rank(nearest_rank(q, self.n))
        return min(self.maximum, max(self.minimum, estimate))

    def percentile(self, p: float) -> float:
        """Estimate of the ``p``-th percentile; ``p`` in [0, 100]."""
        if not (0.0 <= p <= 100.0):
            raise ReproError(f"percentile p must be in [0, 100], got {p}")
        return self.quantile(p / 100.0)

    def _value_at_rank(self, rank: int) -> float:
        cumulative = 0
        # Negative values first, from most negative (largest |x| bucket) up.
        for index in sorted(self.negative_buckets, reverse=True):
            cumulative += self.negative_buckets[index]
            if cumulative >= rank:
                return -self._representative(index)
        cumulative += self.zeros
        if cumulative >= rank:
            return 0.0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                return self._representative(index)
        # Unreachable when rank <= n, kept as a defensive fallback.
        return self.maximum  # pragma: no cover

    def bucket_masses(self) -> List[Tuple[float, int]]:
        """``(representative value, count)`` pairs in ascending value order.

        The sketch viewed as a weighted sample: negative buckets (most
        negative first), the exact zero count, then positive buckets.  Each
        representative is within the sketch's relative-error bound of every
        value it stands for, so distribution statistics computed over the
        masses (e.g. a weighted Gini coefficient) inherit a bound of the
        same order.  Total mass equals ``count``.
        """
        masses: List[Tuple[float, int]] = [
            (-self._representative(index), self.negative_buckets[index])
            for index in sorted(self.negative_buckets, reverse=True)
        ]
        if self.zeros:
            masses.append((0.0, self.zeros))
        masses.extend(
            (self._representative(index), self.buckets[index])
            for index in sorted(self.buckets)
        )
        return masses

    # -- serialisation ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "relative_error": self.relative_error,
            "n": self.n,
            "zeros": self.zeros,
            # Sorted [index, count] pairs: JSON keys must be strings and the
            # canonical form should not depend on insertion order.
            "buckets": [[index, self.buckets[index]] for index in sorted(self.buckets)],
            "negative_buckets": [
                [index, self.negative_buckets[index]]
                for index in sorted(self.negative_buckets)
            ],
            "min": self.minimum if self.n else None,
            "max": self.maximum if self.n else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QuantileSketch":
        n = int(data.get("n", 0))
        return cls(
            relative_error=float(data.get("relative_error", DEFAULT_RELATIVE_ERROR)),
            n=n,
            zeros=int(data.get("zeros", 0)),
            buckets={int(index): int(count) for index, count in data.get("buckets", ())},
            negative_buckets={
                int(index): int(count)
                for index, count in data.get("negative_buckets", ())
            },
            minimum=float(data["min"]) if n else math.inf,
            maximum=float(data["max"]) if n else -math.inf,
        )

    def summary(self) -> Dict[str, float]:
        if self.n == 0:
            return {"count": 0.0}
        return {
            "count": float(self.n),
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "min": self.minimum,
            "max": self.maximum,
        }


register_accumulator("quantile-sketch", QuantileSketch.from_dict)
