"""Online, mergeable statistics accumulators.

Every accumulator in this module follows one contract:

* ``add(value, ...)`` consumes one observation in O(1) (amortised) time and
  O(1) (or O(k)) memory — never O(observations);
* ``merge(other)`` folds another accumulator of the same type (and
  configuration) into this one, **associatively and commutatively**: merging
  per-worker partials in any grouping yields the same summary, which is what
  lets a multiprocessing campaign combine partial results exactly.  The only
  caveat is :class:`Moments`, whose mean/variance merge is associative up to
  floating-point rounding (documented on the class);
* ``to_dict()`` returns a canonical JSON-serialisable form (with a ``type``
  field) that round-trips through :func:`accumulator_from_dict`, so
  accumulator *state* can cross process boundaries and live in campaign run
  caches;
* ``summary()`` returns a flat ``{statistic: value}`` dictionary for
  reporting.

The quantile sketch lives in :mod:`repro.metrics.quantiles` (it is big
enough to deserve its own module) and registers itself here on import.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError, ReproError

__all__ = [
    "Accumulator",
    "Moments",
    "SumAccumulator",
    "ExactDistribution",
    "FixedHistogram",
    "TopK",
    "ReservoirSample",
    "TimeWeightedValue",
    "register_accumulator",
    "accumulator_from_dict",
    "available_accumulators",
    "merge_accumulators",
]


class Accumulator:
    """Abstract mergeable online statistic.

    Subclasses set ``kind`` (the registry/spec name), implement ``add``,
    ``merge``, ``to_dict``/``from_dict``, and ``summary``, and register
    themselves with :func:`register_accumulator`.
    """

    kind: str = "abstract"

    @property
    def count(self) -> int:
        """Number of observations consumed so far."""
        raise NotImplementedError

    def add(self, value: float) -> None:
        raise NotImplementedError

    def update(self, values: Iterable[float]) -> None:
        """Consume an iterable of observations."""
        for value in values:
            self.add(value)

    def merge(self, other: "Accumulator") -> "Accumulator":
        """Fold ``other`` into this accumulator (in place); returns ``self``."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Accumulator":
        raise NotImplementedError

    def summary(self) -> Dict[str, float]:
        raise NotImplementedError

    def _require_same_type(self, other: "Accumulator") -> None:
        if type(other) is not type(self):
            raise ReproError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )


# --------------------------------------------------------------------------- #
# Registry                                                                     #
# --------------------------------------------------------------------------- #
_ACCUMULATOR_TYPES: Dict[str, Callable[[Mapping[str, Any]], Accumulator]] = {}


def register_accumulator(kind: str, loader: Callable[[Mapping[str, Any]], Accumulator]) -> None:
    """Register an accumulator type under its spec ``type`` name."""
    if kind in _ACCUMULATOR_TYPES:
        raise ConfigurationError(f"accumulator type {kind!r} already registered")
    _ACCUMULATOR_TYPES[kind] = loader


def available_accumulators() -> List[str]:
    """Registered accumulator type names, sorted."""
    return sorted(_ACCUMULATOR_TYPES)


def accumulator_from_dict(data: Mapping[str, Any]) -> Accumulator:
    """Rebuild an accumulator from its ``to_dict`` form (state included)."""
    kind = data.get("type")
    if kind is None:
        raise ConfigurationError("accumulator spec needs a 'type' field")
    try:
        loader = _ACCUMULATOR_TYPES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown accumulator type {kind!r}; known types: "
            f"{', '.join(available_accumulators())}"
        ) from None
    return loader(data)


def merge_accumulators(parts: Sequence[Accumulator]) -> Accumulator:
    """Merge a non-empty sequence of same-type accumulators left to right."""
    if not parts:
        raise ReproError("cannot merge an empty sequence of accumulators")
    merged = parts[0]
    for part in parts[1:]:
        merged.merge(part)
    return merged


# --------------------------------------------------------------------------- #
# Welford moments                                                              #
# --------------------------------------------------------------------------- #
@dataclass
class Moments(Accumulator):
    """Count / mean / variance / min / max via Welford's online algorithm.

    ``merge`` uses Chan's parallel-variance formula, so per-worker partials
    combine into exactly the moments of the concatenated stream — up to
    floating-point rounding (count, min, and max merge exactly; mean and
    variance are associative to within a few ulps).
    """

    n: int = 0
    mean: float = 0.0
    m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    kind = "moments"

    @property
    def count(self) -> int:
        return self.n

    @property
    def variance(self) -> float:
        """Population variance (``ddof=0``); 0 for fewer than two values."""
        return self.m2 / self.n if self.n > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        """Sum of observations, reconstructed as ``mean × count``."""
        return self.mean * self.n

    def add(self, value: float) -> None:
        value = float(value)
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def update(self, values: Iterable[float]) -> None:
        """Bulk Welford over local variables — identical arithmetic to
        repeated :meth:`add`, but one attribute write-back per batch instead
        of six attribute round-trips per sample (telemetry flushes push tens
        of thousands of phase durations through here)."""
        n = self.n
        mean = self.mean
        m2 = self.m2
        minimum = self.minimum
        maximum = self.maximum
        for value in values:
            value = float(value)
            n += 1
            delta = value - mean
            mean += delta / n
            m2 += delta * (value - mean)
            if value < minimum:
                minimum = value
            if value > maximum:
                maximum = value
        self.n = n
        self.mean = mean
        self.m2 = m2
        self.minimum = minimum
        self.maximum = maximum

    def merge(self, other: Accumulator) -> "Moments":
        self._require_same_type(other)
        assert isinstance(other, Moments)
        if other.n == 0:
            return self
        if self.n == 0:
            self.n, self.mean, self.m2 = other.n, other.mean, other.m2
            self.minimum, self.maximum = other.minimum, other.maximum
            return self
        total = self.n + other.n
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * self.n * other.n / total
        self.mean += delta * other.n / total
        self.n = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "n": self.n,
            "mean": self.mean,
            "m2": self.m2,
            # JSON has no +-inf literal; the empty sentinel travels as None.
            "min": self.minimum if self.n else None,
            "max": self.maximum if self.n else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Moments":
        n = int(data.get("n", 0))
        return cls(
            n=n,
            mean=float(data.get("mean", 0.0)),
            m2=float(data.get("m2", 0.0)),
            minimum=float(data["min"]) if n else math.inf,
            maximum=float(data["max"]) if n else -math.inf,
        )

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.n),
            "mean": self.mean if self.n else 0.0,
            "std": self.std,
            "min": self.minimum if self.n else 0.0,
            "max": self.maximum if self.n else 0.0,
        }


# --------------------------------------------------------------------------- #
# Plain sums                                                                   #
# --------------------------------------------------------------------------- #
@dataclass
class SumAccumulator(Accumulator):
    """Exact running total (and count) — for tallies such as cost counters.

    Unlike :class:`Moments`, the total is tracked directly, so integer tallies
    (preemption counts, job counts) merge without floating-point drift.
    """

    total: float = 0.0
    n: int = 0

    kind = "sum"

    @property
    def count(self) -> int:
        return self.n

    def add(self, value: float) -> None:
        self.total += value
        self.n += 1

    def merge(self, other: Accumulator) -> "SumAccumulator":
        self._require_same_type(other)
        assert isinstance(other, SumAccumulator)
        self.total += other.total
        self.n += other.n
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "total": self.total, "n": self.n}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SumAccumulator":
        return cls(total=float(data.get("total", 0.0)), n=int(data.get("n", 0)))

    def summary(self) -> Dict[str, float]:
        return {"count": float(self.n), "total": self.total}


# --------------------------------------------------------------------------- #
# Exact distribution (the non-streaming reference mode)                        #
# --------------------------------------------------------------------------- #
# eq=False: the generated __eq__ would compare `values` fields, and
# `ndarray == list` evaluates element-wise (ambiguous truth value) for the
# documented zero-copy ndarray wrap.  Compare via to_dict() instead.
@dataclass(eq=False)
class ExactDistribution(Accumulator):
    """Keeps every value — exact percentiles, O(observations) memory.

    This is the *exact mode* backing :func:`repro.analysis.stats.summarize`
    and friends: it computes with the same NumPy operations as the historical
    ad-hoc code, so routing existing call sites through it keeps their
    outputs byte-identical.  ``values`` accepts a list or an ndarray — an
    ndarray is wrapped zero-copy (query-only call sites pay nothing) and is
    normalised to a list only when a mutation (``add``/``merge``) needs
    one.  Use it when the sample is known to be small; use
    :class:`~repro.metrics.quantiles.QuantileSketch` when it is not.
    """

    values: Sequence[float] = field(default_factory=list)

    kind = "exact"

    @property
    def count(self) -> int:
        return len(self.values)

    def _ensure_list(self) -> List[float]:
        if not isinstance(self.values, list):
            self.values = [float(value) for value in self.values]
        return self.values

    def add(self, value: float) -> None:
        self._ensure_list().append(float(value))

    def merge(self, other: Accumulator) -> "ExactDistribution":
        self._require_same_type(other)
        assert isinstance(other, ExactDistribution)
        self._ensure_list().extend(float(value) for value in other.values)
        return self

    def as_array(self) -> np.ndarray:
        # Cached so repeated percentile queries (summarize asks for four)
        # convert the sample once; every intake path appends, so a length
        # check is a sufficient invalidation rule.
        cached = getattr(self, "_array_cache", None)
        if cached is None or cached.size != len(self.values):
            cached = np.asarray(self.values, dtype=float)
            self._array_cache = cached
        return cached

    def percentile(self, q: float) -> float:
        """Exact linear-interpolation percentile (NumPy semantics), ``q`` in [0, 100]."""
        if len(self.values) == 0:
            raise ReproError("cannot take a percentile of an empty sample")
        return float(np.percentile(self.as_array(), q))

    def quantile(self, q: float) -> float:
        """Exact quantile, ``q`` in [0, 1] (sketch-compatible signature)."""
        return self.percentile(100.0 * q)

    def to_dict(self) -> Dict[str, Any]:
        # float() each entry so an ndarray-backed sample serialises to plain
        # JSON numbers, not numpy scalars.
        return {"type": self.kind, "values": [float(value) for value in self.values]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExactDistribution":
        return cls(values=[float(value) for value in data.get("values", ())])

    def summary(self) -> Dict[str, float]:
        if len(self.values) == 0:
            return {"count": 0.0}
        array = self.as_array()
        return {
            "count": float(array.size),
            "mean": float(array.mean()),
            "std": float(array.std(ddof=0)),
            "min": float(array.min()),
            "p50": float(np.percentile(array, 50)),
            "max": float(array.max()),
        }


# --------------------------------------------------------------------------- #
# Fixed-bin streaming histogram                                                #
# --------------------------------------------------------------------------- #
@dataclass
class FixedHistogram(Accumulator):
    """Streaming histogram with a fixed number of equal-width bins.

    Values below ``low`` and at-or-above ``high`` are tallied in dedicated
    underflow/overflow counters, so the configuration (and therefore exact
    mergeability) never depends on the data.  Bin ``i`` covers
    ``[low + i·w, low + (i+1)·w)`` with ``w = (high - low) / bins``.
    """

    low: float = 0.0
    high: float = 1.0
    bins: int = 10
    counts: List[int] = field(default_factory=list)
    underflow: int = 0
    overflow: int = 0

    kind = "histogram"

    def __post_init__(self) -> None:
        if self.bins < 1:
            raise ConfigurationError(f"bins must be >= 1, got {self.bins}")
        if not self.high > self.low:
            raise ConfigurationError(
                f"high ({self.high}) must be > low ({self.low})"
            )
        if not self.counts:
            self.counts = [0] * self.bins
        elif len(self.counts) != self.bins:
            raise ConfigurationError(
                f"counts length {len(self.counts)} != bins {self.bins}"
            )

    @property
    def count(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow

    def add(self, value: float) -> None:
        value = float(value)
        if value < self.low:
            self.underflow += 1
        elif value >= self.high:
            self.overflow += 1
        else:
            width = (self.high - self.low) / self.bins
            index = min(self.bins - 1, int((value - self.low) / width))
            self.counts[index] += 1

    def merge(self, other: Accumulator) -> "FixedHistogram":
        self._require_same_type(other)
        assert isinstance(other, FixedHistogram)
        if (other.low, other.high, other.bins) != (self.low, self.high, self.bins):
            raise ReproError(
                "cannot merge histograms with different bin configurations: "
                f"({self.low}, {self.high}, {self.bins}) vs "
                f"({other.low}, {other.high}, {other.bins})"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.underflow += other.underflow
        self.overflow += other.overflow
        return self

    def edges(self) -> List[float]:
        """The ``bins + 1`` bin edges, ``low`` through ``high``."""
        width = (self.high - self.low) / self.bins
        return [self.low + index * width for index in range(self.bins)] + [self.high]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "low": self.low,
            "high": self.high,
            "bins": self.bins,
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FixedHistogram":
        return cls(
            low=float(data["low"]),
            high=float(data["high"]),
            bins=int(data["bins"]),
            counts=[int(value) for value in data.get("counts", ())],
            underflow=int(data.get("underflow", 0)),
            overflow=int(data.get("overflow", 0)),
        )

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "underflow": float(self.underflow),
            "overflow": float(self.overflow),
        }


# --------------------------------------------------------------------------- #
# Top-k tracker                                                                #
# --------------------------------------------------------------------------- #
@dataclass
class TopK(Accumulator):
    """The ``k`` largest ``(value, key)`` observations seen so far.

    Keys must be unique across the stream (job ids are); ties in value are
    broken by smaller key — numerically for numeric keys (job ids), then
    lexicographically for everything else — which makes the selection a
    total order and the merge exactly associative.  ``items()`` returns the
    retained pairs, largest first.
    """

    k: int = 10
    n: int = 0
    # Kept sorted by descending value, ascending key (see _order).
    _items: List[Tuple[float, Any]] = field(default_factory=list)

    kind = "top-k"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")

    @property
    def count(self) -> int:
        return self.n

    @staticmethod
    def _order(item: Tuple[float, Any]) -> Tuple[float, int, float, str]:
        value, key = item
        if isinstance(key, (int, float)) and not isinstance(key, bool):
            return (-value, 0, float(key), "")
        return (-value, 1, 0.0, str(key))

    def _truncate(self) -> None:
        self._items.sort(key=self._order)
        del self._items[self.k:]

    def add(self, value: float, key: Any = None) -> None:  # type: ignore[override]
        self.n += 1
        self._items.append((float(value), key))
        if len(self._items) > 2 * self.k:
            self._truncate()

    def merge(self, other: Accumulator) -> "TopK":
        self._require_same_type(other)
        assert isinstance(other, TopK)
        if other.k != self.k:
            raise ReproError(f"cannot merge top-{other.k} into top-{self.k}")
        self.n += other.n
        self._items.extend(other._items)
        self._truncate()
        return self

    def items(self) -> List[Tuple[float, Any]]:
        """Retained ``(value, key)`` pairs, largest value first."""
        self._truncate()
        return list(self._items)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "k": self.k,
            "n": self.n,
            "items": [[value, key] for value, key in self.items()],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopK":
        out = cls(k=int(data["k"]), n=int(data.get("n", 0)))
        out._items = [(float(value), key) for value, key in data.get("items", ())]
        out._truncate()
        return out

    def summary(self) -> Dict[str, float]:
        items = self.items()
        return {
            "count": float(self.n),
            "max": items[0][0] if items else 0.0,
            "kth": items[-1][0] if items else 0.0,
        }


# --------------------------------------------------------------------------- #
# Mergeable uniform reservoir (bottom-k priority sample)                       #
# --------------------------------------------------------------------------- #
def _priority(seed: int, key: Any) -> int:
    """Deterministic pseudo-random priority of one keyed observation."""
    digest = hashlib.blake2b(
        f"{seed}:{key!r}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass
class ReservoirSample(Accumulator):
    """Uniform sample of ``k`` keyed observations, exactly mergeable.

    Implemented as a *bottom-k priority sample*: each observation's priority
    is a deterministic hash of ``(seed, key)`` and the ``k`` smallest
    priorities are retained.  Because selection depends only on the per-item
    priorities, merging partial reservoirs in any grouping retains exactly
    the same items as a single pass — unlike the classic algorithm-R
    reservoir, which is neither deterministic nor mergeable.  Keys must be
    unique across the stream (job ids are); the sampled ``value`` travels
    with the key and may be any JSON-serialisable payload.
    """

    k: int = 16
    seed: int = 2010
    n: int = 0
    # Kept sorted ascending by priority: List[(priority, key, value)].
    _items: List[Tuple[int, Any, Any]] = field(default_factory=list)

    kind = "reservoir"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")

    @property
    def count(self) -> int:
        return self.n

    @staticmethod
    def _sort_key(item: Tuple[int, Any, Any]) -> Tuple[int, str]:
        # Priorities are 64-bit hashes, so collisions are vanishingly rare;
        # the stringified key makes the order total even then.
        return (item[0], str(item[1]))

    def add(self, value: Any, key: Any = None) -> None:  # type: ignore[override]
        if key is None:
            raise ReproError(
                "ReservoirSample.add needs a unique key per observation "
                "(e.g. the job id)"
            )
        self.n += 1
        entry = (_priority(self.seed, key), key, value)
        if len(self._items) >= self.k and self._sort_key(entry) >= self._sort_key(self._items[-1]):
            return
        self._items.append(entry)
        self._items.sort(key=self._sort_key)
        del self._items[self.k:]

    def merge(self, other: Accumulator) -> "ReservoirSample":
        self._require_same_type(other)
        assert isinstance(other, ReservoirSample)
        if (other.k, other.seed) != (self.k, self.seed):
            raise ReproError(
                "cannot merge reservoirs with different (k, seed): "
                f"({self.k}, {self.seed}) vs ({other.k}, {other.seed})"
            )
        self.n += other.n
        combined = {item[1]: item for item in self._items}
        for item in other._items:
            combined.setdefault(item[1], item)
        self._items = sorted(combined.values(), key=self._sort_key)
        del self._items[self.k:]
        return self

    def sample(self) -> List[Any]:
        """The retained values, in priority order (stable across merges)."""
        return [value for _, _, value in self._items]

    def keys(self) -> List[Any]:
        return [key for _, key, _ in self._items]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "k": self.k,
            "seed": self.seed,
            "n": self.n,
            "items": [[key, value] for _, key, value in self._items],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ReservoirSample":
        out = cls(k=int(data["k"]), seed=int(data.get("seed", 2010)), n=int(data.get("n", 0)))
        out._items = sorted(
            ((_priority(out.seed, key), key, value) for key, value in data.get("items", ())),
            key=cls._sort_key,
        )
        del out._items[out.k:]
        return out

    def summary(self) -> Dict[str, float]:
        return {"count": float(self.n), "sampled": float(len(self._items))}


# --------------------------------------------------------------------------- #
# Time-weighted value (piecewise-constant signal statistics)                   #
# --------------------------------------------------------------------------- #
@dataclass
class TimeWeightedValue(Accumulator):
    """Statistics of a piecewise-constant signal, weighted by duration.

    Built for time series the engine already integrates analytically — the
    busy-node count between two events, for example: each constant segment
    is consumed as ``add_segment(value, duration)`` in O(1), and the
    time-weighted mean is ``∫ value dt / ∫ dt``.  Segments from disjoint
    runs merge exactly (sums of integrals are associative and commutative),
    which is what lets the streaming ``utilization`` collector combine
    per-instance busy-node partials across the campaign worker pool.
    """

    integral: float = 0.0
    duration: float = 0.0
    n: int = 0
    minimum: float = math.inf
    maximum: float = -math.inf

    kind = "time-weighted"

    @property
    def count(self) -> int:
        return self.n

    @property
    def mean(self) -> float:
        """Time-weighted mean value; 0 with no elapsed duration."""
        return self.integral / self.duration if self.duration > 0 else 0.0

    def add(self, value: float) -> None:
        raise ReproError(
            "TimeWeightedValue observations carry a duration; use "
            "add_segment(value, duration) instead of add(value)"
        )

    def add_segment(self, value: float, duration: float) -> None:
        """Consume one constant segment of the signal (duration in seconds)."""
        duration = float(duration)
        if duration < 0:
            raise ReproError(f"segment duration must be >= 0, got {duration}")
        value = float(value)
        self.integral += value * duration
        self.duration += duration
        self.n += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: Accumulator) -> "TimeWeightedValue":
        self._require_same_type(other)
        assert isinstance(other, TimeWeightedValue)
        self.integral += other.integral
        self.duration += other.duration
        self.n += other.n
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "integral": self.integral,
            "duration": self.duration,
            "n": self.n,
            # JSON has no +-inf literal; the empty sentinel travels as None.
            "min": self.minimum if self.n else None,
            "max": self.maximum if self.n else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TimeWeightedValue":
        n = int(data.get("n", 0))
        return cls(
            integral=float(data.get("integral", 0.0)),
            duration=float(data.get("duration", 0.0)),
            n=n,
            minimum=float(data["min"]) if n else math.inf,
            maximum=float(data["max"]) if n else -math.inf,
        )

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.n),
            "mean": self.mean,
            "min": self.minimum if self.n else 0.0,
            "max": self.maximum if self.n else 0.0,
            "duration": self.duration,
        }


register_accumulator("moments", Moments.from_dict)
register_accumulator("sum", SumAccumulator.from_dict)
register_accumulator("exact", ExactDistribution.from_dict)
register_accumulator("histogram", FixedHistogram.from_dict)
register_accumulator("top-k", TopK.from_dict)
register_accumulator("reservoir", ReservoirSample.from_dict)
register_accumulator("time-weighted", TimeWeightedValue.from_dict)
