"""Composite accumulator over per-job simulation outcomes.

:class:`JobMetricsAccumulator` is what the engine feeds in streaming-metrics
mode (``SimulationConfig(streaming_metrics=True)``) instead of materialising
one :class:`~repro.core.records.JobRecord` per job: Welford moments over
stretch / turnaround / wait time, a mergeable quantile sketch over stretch
and turnaround, a top-k tracker of the worst-stretch jobs, and a mergeable
reservoir of exemplar jobs.  It is itself an :class:`Accumulator` — it
merges field-wise, serialises to a JSON dictionary, and registers under the
``"job-metrics"`` type — so per-worker partials from a campaign combine
exactly into per-cell summaries.

The module also provides the *bundle* helpers used by streaming metric
collectors: a bundle is a plain ``{name: Accumulator}`` mapping, merged
name-wise across workers and serialised with
:func:`bundle_to_dict`/:func:`bundle_from_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence

from ..exceptions import ReproError
from .accumulators import (
    Accumulator,
    Moments,
    ReservoirSample,
    TopK,
    accumulator_from_dict,
    register_accumulator,
)
from .quantiles import DEFAULT_RELATIVE_ERROR, QuantileSketch

__all__ = [
    "JobMetricsAccumulator",
    "bundle_to_dict",
    "bundle_from_dict",
    "merge_bundles",
]

#: Streaming defaults: worst-job tracker depth and exemplar-reservoir size.
_DEFAULT_TOP_K = 10
_DEFAULT_RESERVOIR_K = 32


@dataclass
class JobMetricsAccumulator(Accumulator):
    """Bounded-memory summary of every completed job of a simulation.

    Beyond the flat :meth:`summary`, two drill-down structures ride along:
    ``worst_stretch.items()`` names the worst-stretch job ids (surfaced as
    the ``worst_job_id`` column of streaming campaign rows) and
    ``exemplars.sample()`` is a uniform reservoir of per-job payloads for
    eyeballing.  Job ids are unique within one simulation; when cells merge
    several instances, colliding ids across instances are deduplicated
    deterministically in the exemplar reservoir (it keys on the id), so
    treat merged exemplars as per-instance-ambiguous debugging aids.
    """

    relative_error: float = DEFAULT_RELATIVE_ERROR
    stretch: Moments = field(default_factory=Moments)
    turnaround: Moments = field(default_factory=Moments)
    wait: Moments = field(default_factory=Moments)
    stretch_sketch: QuantileSketch = None  # type: ignore[assignment]
    turnaround_sketch: QuantileSketch = None  # type: ignore[assignment]
    worst_stretch: TopK = field(default_factory=lambda: TopK(k=_DEFAULT_TOP_K))
    exemplars: ReservoirSample = field(
        default_factory=lambda: ReservoirSample(k=_DEFAULT_RESERVOIR_K)
    )

    kind = "job-metrics"

    def __post_init__(self) -> None:
        if self.stretch_sketch is None:
            self.stretch_sketch = QuantileSketch(relative_error=self.relative_error)
        if self.turnaround_sketch is None:
            self.turnaround_sketch = QuantileSketch(relative_error=self.relative_error)

    @property
    def count(self) -> int:
        return self.stretch.count

    # -- intake ----------------------------------------------------------------
    def observe(
        self, *, job_id: int, stretch: float, turnaround: float, wait: float
    ) -> None:
        """Consume the outcome of one completed job."""
        self.stretch.add(stretch)
        self.turnaround.add(turnaround)
        self.wait.add(wait)
        self.stretch_sketch.add(stretch)
        self.turnaround_sketch.add(turnaround)
        self.worst_stretch.add(stretch, key=job_id)
        self.exemplars.add(
            {"job_id": job_id, "stretch": stretch, "turnaround": turnaround},
            key=job_id,
        )

    def add(self, value: float) -> None:  # pragma: no cover - composite intake
        raise ReproError("JobMetricsAccumulator consumes jobs via observe(), not add()")

    # -- merge -----------------------------------------------------------------
    def merge(self, other: Accumulator) -> "JobMetricsAccumulator":
        self._require_same_type(other)
        assert isinstance(other, JobMetricsAccumulator)
        self.stretch.merge(other.stretch)
        self.turnaround.merge(other.turnaround)
        self.wait.merge(other.wait)
        self.stretch_sketch.merge(other.stretch_sketch)
        self.turnaround_sketch.merge(other.turnaround_sketch)
        self.worst_stretch.merge(other.worst_stretch)
        self.exemplars.merge(other.exemplars)
        return self

    # -- queries ---------------------------------------------------------------
    def stretch_quantile(self, q: float) -> float:
        """Sketched stretch quantile, ``q`` in [0, 1] (see QuantileSketch)."""
        return self.stretch_sketch.quantile(q)

    # -- serialisation ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "relative_error": self.relative_error,
            "stretch": self.stretch.to_dict(),
            "turnaround": self.turnaround.to_dict(),
            "wait": self.wait.to_dict(),
            "stretch_sketch": self.stretch_sketch.to_dict(),
            "turnaround_sketch": self.turnaround_sketch.to_dict(),
            "worst_stretch": self.worst_stretch.to_dict(),
            "exemplars": self.exemplars.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobMetricsAccumulator":
        return cls(
            relative_error=float(data.get("relative_error", DEFAULT_RELATIVE_ERROR)),
            stretch=Moments.from_dict(data["stretch"]),
            turnaround=Moments.from_dict(data["turnaround"]),
            wait=Moments.from_dict(data["wait"]),
            stretch_sketch=QuantileSketch.from_dict(data["stretch_sketch"]),
            turnaround_sketch=QuantileSketch.from_dict(data["turnaround_sketch"]),
            worst_stretch=TopK.from_dict(data["worst_stretch"]),
            exemplars=ReservoirSample.from_dict(data["exemplars"]),
        )

    def summary(self) -> Dict[str, float]:
        """Flat headline statistics; quantiles carry the sketch's error bound."""
        if self.count == 0:
            return {"num_jobs": 0.0}
        return {
            "num_jobs": float(self.count),
            "max_stretch": self.stretch.maximum,
            "mean_stretch": self.stretch.mean,
            "stretch_p50": self.stretch_sketch.quantile(0.50),
            "stretch_p90": self.stretch_sketch.quantile(0.90),
            "stretch_p99": self.stretch_sketch.quantile(0.99),
            "mean_turnaround": self.turnaround.mean,
            "turnaround_p99": self.turnaround_sketch.quantile(0.99),
            "mean_wait": self.wait.mean,
        }


register_accumulator("job-metrics", JobMetricsAccumulator.from_dict)


# --------------------------------------------------------------------------- #
# Bundles: named accumulator sets shipped between campaign workers             #
# --------------------------------------------------------------------------- #
def bundle_to_dict(bundle: Mapping[str, Accumulator]) -> Dict[str, Dict[str, Any]]:
    """Serialise a ``{name: Accumulator}`` mapping (what workers ship back)."""
    return {name: accumulator.to_dict() for name, accumulator in bundle.items()}


def bundle_from_dict(data: Mapping[str, Mapping[str, Any]]) -> Dict[str, Accumulator]:
    """Inverse of :func:`bundle_to_dict`, via the accumulator registry."""
    return {name: accumulator_from_dict(payload) for name, payload in data.items()}


def merge_bundles(
    bundles: Sequence[Mapping[str, Accumulator]]
) -> Dict[str, Accumulator]:
    """Merge same-shape bundles name-wise (partials from parallel workers)."""
    if not bundles:
        raise ReproError("cannot merge an empty sequence of bundles")
    names = set(bundles[0])
    for bundle in bundles[1:]:
        if set(bundle) != names:
            raise ReproError(
                "cannot merge bundles with different accumulator sets: "
                f"{sorted(names)} vs {sorted(bundle)}"
            )
    merged: Dict[str, Accumulator] = dict(bundles[0])
    for bundle in bundles[1:]:
        for name, accumulator in bundle.items():
            merged[name] = merged[name].merge(accumulator)
    return merged
