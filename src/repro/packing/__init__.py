"""Vector-packing heuristics (MCB8 and baselines) and DFRS binary searches."""

from .bounds import (
    cpu_capacity_yield_bound,
    infeasibility_reasons,
    memory_feasible,
    memory_lower_bound_bins,
    total_cpu_need,
    total_memory_requirement,
)
from .first_fit import best_fit_decreasing_pack, first_fit_decreasing_pack
from .item import Bin, PackingItem, PackingResult, job_items
from .mcb8 import mcb8_pack
from .variants import (
    PACKER_NAMES,
    get_packer,
    mcb_family_pack,
    worst_fit_decreasing_pack,
)
from .yield_search import (
    YIELD_SEARCH_ACCURACY,
    PackingJob,
    StretchSearchResult,
    YieldSearchResult,
    maximize_min_yield,
    minimize_estimated_stretch,
    stretch_target_yields,
)

__all__ = [
    "cpu_capacity_yield_bound",
    "infeasibility_reasons",
    "memory_feasible",
    "memory_lower_bound_bins",
    "total_cpu_need",
    "total_memory_requirement",
    "best_fit_decreasing_pack",
    "first_fit_decreasing_pack",
    "Bin",
    "PackingItem",
    "PackingResult",
    "job_items",
    "mcb8_pack",
    "PACKER_NAMES",
    "get_packer",
    "mcb_family_pack",
    "worst_fit_decreasing_pack",
    "YIELD_SEARCH_ACCURACY",
    "PackingJob",
    "StretchSearchResult",
    "YieldSearchResult",
    "maximize_min_yield",
    "minimize_estimated_stretch",
    "stretch_target_yields",
]
