"""First-fit and best-fit decreasing vector-packing baselines.

These are not part of the paper's algorithm suite; they exist to ablate the
MCB8 balance heuristic (see DESIGN.md §4).  Both treat the two resource
dimensions independently of each other when choosing a bin, which is exactly
the behaviour MCB8 was designed to improve upon.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..obs.telemetry import timed_phase
from .item import Bin, PackingItem, PackingResult
from .mcb8 import (
    BinCapacities,
    _check_capacities,
    _collect_assignments,
    _count_used_bins,
    _open_until_fits,
)

__all__ = ["first_fit_decreasing_pack", "best_fit_decreasing_pack"]


def _decreasing(items: Sequence[PackingItem]) -> List[PackingItem]:
    return sorted(
        items, key=lambda item: (-item.max_requirement, item.job_id, item.task_index)
    )


def _pack(
    items: Sequence[PackingItem],
    num_bins: int,
    choose_bin: Callable[[List[Bin], PackingItem], Optional[Bin]],
    capacities: BinCapacities = None,
) -> PackingResult:
    if not items:
        return PackingResult(success=True, assignments={}, bins_used=0)
    if num_bins <= 0:
        return PackingResult.failure()
    _check_capacities(capacities, num_bins)
    bins: List[Bin] = []
    for item in _decreasing(items):
        target = choose_bin(bins, item)
        if target is None:
            if capacities is None:
                # Unit bins: one fresh bin either hosts the item or nothing
                # ever will.
                if len(bins) >= num_bins:
                    return PackingResult.failure()
                target = Bin(len(bins))
                bins.append(target)
                if not target.fits(item):
                    return PackingResult.failure()
            else:
                target = _open_until_fits(bins, item, num_bins, capacities)
                if target is None:
                    return PackingResult.failure()
        target.add(item)
    assignments = _collect_assignments(bins)
    if assignments is None:
        return PackingResult.failure()
    return PackingResult(
        success=True, assignments=assignments, bins_used=_count_used_bins(bins)
    )


@timed_phase("packing.first_fit_decreasing")
def first_fit_decreasing_pack(
    items: Sequence[PackingItem],
    num_bins: int,
    *,
    capacities: BinCapacities = None,
) -> PackingResult:
    """First-fit decreasing: place each item in the first bin where it fits."""

    def choose(bins: List[Bin], item: PackingItem) -> Optional[Bin]:
        for bin_ in bins:
            if bin_.fits(item):
                return bin_
        return None

    return _pack(items, num_bins, choose, capacities)


@timed_phase("packing.best_fit_decreasing")
def best_fit_decreasing_pack(
    items: Sequence[PackingItem],
    num_bins: int,
    *,
    capacities: BinCapacities = None,
) -> PackingResult:
    """Best-fit decreasing: place each item in the fullest bin where it fits.

    "Fullest" is measured by the remaining capacity in the item's dominant
    dimension, which is the conventional generalisation of best-fit to vector
    packing.
    """

    def choose(bins: List[Bin], item: PackingItem) -> Optional[Bin]:
        best: Optional[Bin] = None
        best_slack = float("inf")
        for bin_ in bins:
            if not bin_.fits(item):
                continue
            slack = (
                bin_.cpu_free - item.cpu
                if item.cpu_dominant
                else bin_.memory_free - item.memory
            )
            if slack < best_slack:
                best_slack = slack
                best = bin_
        return best

    return _pack(items, num_bins, choose, capacities)
