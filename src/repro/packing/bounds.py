"""Analytic bounds and feasibility checks for the DFRS packing problem.

The binary search of :func:`repro.packing.yield_search.maximize_min_yield`
finds the best yield a given *heuristic* can realise.  The bounds in this
module are heuristic-independent necessary conditions; they are used

* in tests, to verify that no packer ever claims a yield above what the
  aggregate CPU capacity allows;
* in the packing ablation experiments, to report how close each heuristic
  gets to the capacity bound;
* by schedulers, as a cheap early-exit test before running a full search.

All bounds treat the cluster as ``num_nodes`` bins of capacity 1.0 × 1.0 and
a job as ``num_tasks`` identical (CPU-need, memory) items, exactly as in
§III-B of the paper.  On heterogeneous platforms pass the per-node
``capacities`` (the :meth:`repro.core.cluster.Cluster.node_capacities`
pairs): the aggregate bounds then sum real capacities instead of counting
unit nodes.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

from ..exceptions import ReproError
from .item import PackingItem
from .yield_search import PackingJob

__all__ = [
    "total_cpu_need",
    "total_memory_requirement",
    "cpu_capacity_yield_bound",
    "memory_lower_bound_bins",
    "memory_feasible",
    "infeasibility_reasons",
]


def total_cpu_need(jobs: Sequence[PackingJob]) -> float:
    """Sum of CPU needs over all tasks of all jobs (in node units)."""
    return sum(job.num_tasks * job.cpu_need for job in jobs)


def total_memory_requirement(jobs: Sequence[PackingJob]) -> float:
    """Sum of memory requirements over all tasks of all jobs (in node units)."""
    return sum(job.num_tasks * job.mem_requirement for job in jobs)


def cpu_capacity_yield_bound(
    jobs: Sequence[PackingJob],
    num_nodes: int,
    *,
    capacities: Optional[Sequence[Tuple[float, float]]] = None,
) -> float:
    """Upper bound on the achievable minimum yield when all yields are equal.

    If every job receives yield ``Y`` then the total allocated CPU is
    ``Y × Σ (tasks × need)``, which cannot exceed the cluster's aggregate
    CPU capacity (``num_nodes`` units when homogeneous, the sum of per-node
    CPU capacities otherwise).  Hence ``Y ≤ capacity / Σ need`` (and never
    above 1).  An empty job set has a bound of 1.0 by convention.
    """
    if num_nodes < 1:
        raise ReproError(f"num_nodes must be >= 1, got {num_nodes}")
    total_capacity = (
        float(num_nodes)
        if capacities is None
        else sum(cpu for cpu, _ in capacities)
    )
    demand = total_cpu_need(jobs)
    if demand <= 0.0:
        return 1.0
    return min(1.0, total_capacity / demand)


def memory_lower_bound_bins(items: Sequence[PackingItem]) -> int:
    """Lower bound on the number of bins any packing of ``items`` must use.

    Combines the volume bound (total memory rounded up) with the pairing
    bound (two items each requiring more than half a node can never share).
    Only the memory dimension is considered because memory requirements are
    yield-independent; the CPU dimension shrinks as the yield decreases.
    """
    if not items:
        return 0
    volume = sum(item.memory for item in items)
    volume_bound = int(math.ceil(volume - 1e-9))
    pairing_bound = sum(1 for item in items if item.memory > 0.5 + 1e-9)
    return max(1, volume_bound, pairing_bound)


def memory_feasible(
    jobs: Sequence[PackingJob],
    num_nodes: int,
    *,
    capacities: Optional[Sequence[Tuple[float, float]]] = None,
) -> bool:
    """Quick necessary test: can the memory footprint possibly fit?

    This only checks necessary conditions (per-task fit, volume bound, and
    pairing bound); a ``True`` answer does not guarantee that a packing
    exists, but a ``False`` answer proves that none does, whatever the yield.
    """
    return not infeasibility_reasons(jobs, num_nodes, capacities=capacities)


def infeasibility_reasons(
    jobs: Sequence[PackingJob],
    num_nodes: int,
    *,
    capacities: Optional[Sequence[Tuple[float, float]]] = None,
) -> Dict[str, str]:
    """Machine-checkable reasons why no allocation can exist, if any.

    Returns an empty mapping when no necessary condition is violated.  Keys
    identify the violated condition (``"task-memory"``, ``"volume"``,
    ``"pairing"``); values are human-readable explanations.  On
    heterogeneous platforms the per-task bound uses the *largest* node's
    memory, the volume bound uses the aggregate memory capacity, and the
    pairing bound pairs big tasks with the nodes that can host two of them.
    """
    if num_nodes < 1:
        raise ReproError(f"num_nodes must be >= 1, got {num_nodes}")
    mem_caps = (
        [1.0] * num_nodes
        if capacities is None
        else [memory for _, memory in capacities]
    )
    largest_node = max(mem_caps)
    total_memory_capacity = sum(mem_caps)
    reasons: Dict[str, str] = {}
    oversized = [
        job.job_id
        for job in jobs
        if job.mem_requirement > largest_node + 1e-9
    ]
    if oversized:
        reasons["task-memory"] = (
            f"jobs {oversized} have tasks whose memory requirement exceeds "
            "the largest node"
        )
    volume = total_memory_requirement(jobs)
    if volume > total_memory_capacity + 1e-9:
        reasons["volume"] = (
            f"total memory requirement {volume:.2f} node-units exceeds the "
            f"{total_memory_capacity:g} node-units available"
        )
    big = [job for job in jobs if job.mem_requirement > 0.5 + 1e-9]
    if big:
        big_tasks = sum(job.num_tasks for job in big)
        # Every big task needs at least the smallest big requirement, so a
        # node of capacity c hosts at most floor(c / m_min) of them; on unit
        # nodes (m_min > 0.5 so floor(1/m_min) = 1) this is exactly the
        # classical two-big-items-cannot-share pairing bound.
        smallest = min(job.mem_requirement for job in big)
        hosting_slots = sum(int((cap + 1e-9) / smallest) for cap in mem_caps)
        if big_tasks > hosting_slots:
            reasons["pairing"] = (
                f"{big_tasks} tasks each need more than half a reference "
                f"node's memory but at most {hosting_slots} such tasks fit "
                "the cluster"
            )
    return reasons
