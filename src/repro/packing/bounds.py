"""Analytic bounds and feasibility checks for the DFRS packing problem.

The binary search of :func:`repro.packing.yield_search.maximize_min_yield`
finds the best yield a given *heuristic* can realise.  The bounds in this
module are heuristic-independent necessary conditions; they are used

* in tests, to verify that no packer ever claims a yield above what the
  aggregate CPU capacity allows;
* in the packing ablation experiments, to report how close each heuristic
  gets to the capacity bound;
* by schedulers, as a cheap early-exit test before running a full search.

All bounds treat the cluster as ``num_nodes`` bins of capacity 1.0 × 1.0 and
a job as ``num_tasks`` identical (CPU-need, memory) items, exactly as in
§III-B of the paper.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from ..exceptions import ReproError
from .item import PackingItem
from .yield_search import PackingJob

__all__ = [
    "total_cpu_need",
    "total_memory_requirement",
    "cpu_capacity_yield_bound",
    "memory_lower_bound_bins",
    "memory_feasible",
    "infeasibility_reasons",
]


def total_cpu_need(jobs: Sequence[PackingJob]) -> float:
    """Sum of CPU needs over all tasks of all jobs (in node units)."""
    return sum(job.num_tasks * job.cpu_need for job in jobs)


def total_memory_requirement(jobs: Sequence[PackingJob]) -> float:
    """Sum of memory requirements over all tasks of all jobs (in node units)."""
    return sum(job.num_tasks * job.mem_requirement for job in jobs)


def cpu_capacity_yield_bound(jobs: Sequence[PackingJob], num_nodes: int) -> float:
    """Upper bound on the achievable minimum yield when all yields are equal.

    If every job receives yield ``Y`` then the total allocated CPU is
    ``Y × Σ (tasks × need)``, which cannot exceed the cluster's ``num_nodes``
    units of CPU.  Hence ``Y ≤ num_nodes / Σ need`` (and never above 1).
    An empty job set has a bound of 1.0 by convention.
    """
    if num_nodes < 1:
        raise ReproError(f"num_nodes must be >= 1, got {num_nodes}")
    demand = total_cpu_need(jobs)
    if demand <= 0.0:
        return 1.0
    return min(1.0, num_nodes / demand)


def memory_lower_bound_bins(items: Sequence[PackingItem]) -> int:
    """Lower bound on the number of bins any packing of ``items`` must use.

    Combines the volume bound (total memory rounded up) with the pairing
    bound (two items each requiring more than half a node can never share).
    Only the memory dimension is considered because memory requirements are
    yield-independent; the CPU dimension shrinks as the yield decreases.
    """
    if not items:
        return 0
    volume = sum(item.memory for item in items)
    volume_bound = int(math.ceil(volume - 1e-9))
    pairing_bound = sum(1 for item in items if item.memory > 0.5 + 1e-9)
    return max(1, volume_bound, pairing_bound)


def memory_feasible(jobs: Sequence[PackingJob], num_nodes: int) -> bool:
    """Quick necessary test: can the memory footprint possibly fit?

    This only checks necessary conditions (per-task fit, volume bound, and
    pairing bound); a ``True`` answer does not guarantee that a packing
    exists, but a ``False`` answer proves that none does, whatever the yield.
    """
    return not infeasibility_reasons(jobs, num_nodes)


def infeasibility_reasons(
    jobs: Sequence[PackingJob], num_nodes: int
) -> Dict[str, str]:
    """Machine-checkable reasons why no allocation can exist, if any.

    Returns an empty mapping when no necessary condition is violated.  Keys
    identify the violated condition (``"task-memory"``, ``"volume"``,
    ``"pairing"``); values are human-readable explanations.
    """
    if num_nodes < 1:
        raise ReproError(f"num_nodes must be >= 1, got {num_nodes}")
    reasons: Dict[str, str] = {}
    oversized = [
        job.job_id
        for job in jobs
        if job.mem_requirement > 1.0 + 1e-9
    ]
    if oversized:
        reasons["task-memory"] = (
            f"jobs {oversized} have tasks whose memory requirement exceeds a full node"
        )
    volume = total_memory_requirement(jobs)
    if volume > num_nodes + 1e-9:
        reasons["volume"] = (
            f"total memory requirement {volume:.2f} node-units exceeds the "
            f"{num_nodes} available nodes"
        )
    big_tasks = sum(
        job.num_tasks for job in jobs if job.mem_requirement > 0.5 + 1e-9
    )
    if big_tasks > num_nodes:
        reasons["pairing"] = (
            f"{big_tasks} tasks each need more than half a node's memory but "
            f"only {num_nodes} nodes exist"
        )
    return reasons
