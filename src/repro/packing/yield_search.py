"""Binary searches coupling the MCB8 packer to the DFRS objectives.

Fixing a yield ``Y`` turns fluid CPU *needs* into firm CPU *requirements*
(need × Y), which reduces minimum-yield maximization to a sequence of vector
packing feasibility tests (paper §III-B).  :func:`maximize_min_yield` finds
the largest feasible ``Y`` with the paper's 0.01 accuracy.

:func:`minimize_estimated_stretch` is the analogous search used by
DYNMCB8-STRETCH-PER: it looks for the smallest achievable maximum *estimated
stretch* at the next scheduling event, where the per-job yield needed to hit
a target stretch is derived from the job's flow time and virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.job import MINIMUM_YIELD
from .item import PackingItem, PackingResult, job_items
from .mcb8 import BinCapacities, mcb8_pack

__all__ = [
    "PackingJob",
    "YieldSearchResult",
    "StretchSearchResult",
    "maximize_min_yield",
    "minimize_estimated_stretch",
    "stretch_target_yields",
    "YIELD_SEARCH_ACCURACY",
]

#: Accuracy threshold of the binary searches (paper §III-B).
YIELD_SEARCH_ACCURACY = 0.01

#: A packing routine: ``(items, num_bins, *, capacities=None) ->
#: PackingResult`` (``capacities`` is only passed when set, so plain
#: two-argument packers keep working on homogeneous clusters).
Packer = Callable[..., PackingResult]


@dataclass(frozen=True)
class PackingJob:
    """Job description used by the binary searches (no execution time!)."""

    job_id: int
    num_tasks: int
    cpu_need: float
    mem_requirement: float
    #: Time since submission; only used by the stretch-oriented search.
    flow_time: float = 0.0
    #: Accumulated virtual time; only used by the stretch-oriented search.
    virtual_time: float = 0.0

    def items(self, yield_value: float) -> List[PackingItem]:
        """Items of this job when each task requires ``cpu_need × yield``."""
        return job_items(
            self.job_id,
            self.num_tasks,
            min(1.0, self.cpu_need * yield_value),
            self.mem_requirement,
        )


@dataclass(frozen=True)
class YieldSearchResult:
    """Outcome of :func:`maximize_min_yield`."""

    success: bool
    yield_value: float
    assignments: Dict[int, Tuple[int, ...]]


@dataclass(frozen=True)
class StretchSearchResult:
    """Outcome of :func:`minimize_estimated_stretch`."""

    success: bool
    target_stretch: float
    yields: Dict[int, float]
    assignments: Dict[int, Tuple[int, ...]]


def _pack_at_yield(
    jobs: Sequence[PackingJob],
    yield_value: float,
    num_nodes: int,
    packer: Packer,
    capacities: BinCapacities = None,
) -> PackingResult:
    items: List[PackingItem] = []
    for job in jobs:
        items.extend(job.items(yield_value))
    if capacities is None:
        return packer(items, num_nodes)
    return packer(items, num_nodes, capacities=capacities)


def maximize_min_yield(
    jobs: Sequence[PackingJob],
    num_nodes: int,
    *,
    packer: Packer = mcb8_pack,
    accuracy: float = YIELD_SEARCH_ACCURACY,
    min_yield: float = MINIMUM_YIELD,
    capacities: BinCapacities = None,
) -> YieldSearchResult:
    """Largest yield for which all jobs can be packed onto ``num_nodes``.

    ``capacities`` carries per-node ``(cpu, memory)`` bin capacities on
    heterogeneous or partially-failed platforms; ``None`` keeps the paper's
    unit bins.  Returns ``success=False`` when even the minimum yield (a
    memory-only packing problem) is infeasible, in which case the caller
    removes the lowest-priority job and retries (paper §III-B, DYNMCB8).
    """
    if not jobs:
        return YieldSearchResult(True, 1.0, {})

    baseline = _pack_at_yield(jobs, min_yield, num_nodes, packer, capacities)
    if not baseline.success:
        return YieldSearchResult(False, 0.0, {})

    # Try full yield first: under light load the search is then free.
    full = _pack_at_yield(jobs, 1.0, num_nodes, packer, capacities)
    if full.success:
        return YieldSearchResult(True, 1.0, full.assignments)

    low, high = min_yield, 1.0
    best_yield, best_assignments = min_yield, baseline.assignments
    while high - low > accuracy:
        mid = (low + high) / 2.0
        attempt = _pack_at_yield(jobs, mid, num_nodes, packer, capacities)
        if attempt.success:
            low = mid
            best_yield, best_assignments = mid, attempt.assignments
        else:
            high = mid
    return YieldSearchResult(True, best_yield, best_assignments)


def stretch_target_yields(
    jobs: Sequence[PackingJob],
    target_stretch: float,
    period: float,
    *,
    min_yield: float = MINIMUM_YIELD,
) -> Dict[int, float]:
    """Per-job yields required to reach ``target_stretch`` at the next event.

    The estimated stretch of job *j* at the next scheduling event (one period
    ``T`` away) is ``(flow_j + T) / (vt_j + y_j * T)``; solving for the yield
    gives ``y_j = ((flow_j + T) / S - vt_j) / T``.  Negative values are
    clamped to the minimum yield ("so that no job consumes memory without
    making progress") and values above one are clamped to one.
    """
    if target_stretch <= 0:
        raise ValueError(f"target_stretch must be > 0, got {target_stretch}")
    if period <= 0:
        raise ValueError(f"period must be > 0, got {period}")
    yields: Dict[int, float] = {}
    for job in jobs:
        needed = ((job.flow_time + period) / target_stretch - job.virtual_time) / period
        yields[job.job_id] = min(1.0, max(min_yield, needed))
    return yields


def minimize_estimated_stretch(
    jobs: Sequence[PackingJob],
    num_nodes: int,
    period: float,
    *,
    packer: Packer = mcb8_pack,
    accuracy: float = YIELD_SEARCH_ACCURACY,
    min_yield: float = MINIMUM_YIELD,
    max_stretch_bound: float = 1e9,
    capacities: BinCapacities = None,
) -> StretchSearchResult:
    """Smallest feasible maximum estimated stretch at the next event.

    Feasibility of a target stretch ``S`` is tested by computing the per-job
    yields required to achieve ``S`` (see :func:`stretch_target_yields`) and
    packing the resulting CPU requirements with MCB8.  Returns
    ``success=False`` when no value of ``S`` admits a packing, in which case
    the caller evicts the lowest-priority job and retries.
    """
    if not jobs:
        return StretchSearchResult(True, 1.0, {}, {})

    def attempt(target: float) -> Optional[Tuple[Dict[int, float], PackingResult]]:
        yields = stretch_target_yields(jobs, target, period, min_yield=min_yield)
        items: List[PackingItem] = []
        for job in jobs:
            items.extend(job.items(yields[job.job_id]))
        if capacities is None:
            result = packer(items, num_nodes)
        else:
            result = packer(items, num_nodes, capacities=capacities)
        if result.success:
            return yields, result
        return None

    # The most permissive target: every job at the minimum yield.
    ceiling = attempt(max_stretch_bound)
    if ceiling is None:
        return StretchSearchResult(False, float("inf"), {}, {})

    # The most demanding target: stretch 1 (every job at full progress).
    floor = attempt(1.0)
    if floor is not None:
        yields, result = floor
        return StretchSearchResult(True, 1.0, yields, result.assignments)

    low, high = 1.0, max_stretch_bound
    best_yields, best_result = ceiling
    best_target = max_stretch_bound
    # Bisect in log-ish fashion: the feasible region is [some S*, inf), so a
    # plain bisection on the huge interval converges too slowly; first shrink
    # the upper bound geometrically, then bisect.
    probe = 2.0
    while probe < high:
        outcome = attempt(probe)
        if outcome is not None:
            high = probe
            best_yields, best_result = outcome
            best_target = probe
            break
        low = probe
        probe *= 4.0
    while high - low > accuracy * max(1.0, low):
        mid = (low + high) / 2.0
        outcome = attempt(mid)
        if outcome is not None:
            high = mid
            best_yields, best_result = outcome
            best_target = mid
        else:
            low = mid
    return StretchSearchResult(
        True, best_target, best_yields, best_result.assignments
    )
