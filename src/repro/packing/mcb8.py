"""MCB8 multi-capacity bin-packing heuristic (Leinberger et al., 1999).

This is the two-resource variant used by the paper (§III-B) and by the
earlier off-line work it builds on (Stillwell et al., "Resource allocation
using virtual clusters", CCGrid 2009).  The heuristic:

1. splits the items into two lists — items whose CPU requirement is at least
   their memory requirement, and items whose memory requirement is larger;
2. sorts each list by non-increasing order of the item's *largest*
   requirement;
3. fills nodes one at a time: the first item placed on a fresh node is the
   largest remaining item; subsequently the heuristic always tries to pick
   the first fitting item from the list that goes *against* the node's
   current imbalance (if free memory exceeds free CPU, pick a memory-heavy
   item, and vice versa), falling back to the other list, and moving to the
   next node when neither list has a fitting item;
4. succeeds when every item has been placed within the available nodes.

The goal of step 3 is to keep the consumption of both resources balanced on
every node so that neither dimension is exhausted while the other is still
underutilized.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .item import Bin, PackingItem, PackingResult

__all__ = ["mcb8_pack"]


def _sorted_lists(
    items: Sequence[PackingItem],
) -> Tuple[List[PackingItem], List[PackingItem]]:
    """Split and sort items as required by MCB8 (step 1 and 2)."""
    cpu_heavy = [item for item in items if item.cpu_dominant]
    mem_heavy = [item for item in items if not item.cpu_dominant]
    # Stable sort by decreasing max requirement; ties broken by job/task id so
    # that packing is fully deterministic.
    key = lambda item: (-item.max_requirement, item.job_id, item.task_index)
    cpu_heavy.sort(key=key)
    mem_heavy.sort(key=key)
    return cpu_heavy, mem_heavy


def _first_fitting(bin_: Bin, items: List[PackingItem]) -> Optional[int]:
    """Index of the first item of ``items`` that fits in ``bin_``, or None."""
    for index, item in enumerate(items):
        if bin_.fits(item):
            return index
    return None


def mcb8_pack(
    items: Sequence[PackingItem],
    num_bins: int,
) -> PackingResult:
    """Pack ``items`` into at most ``num_bins`` unit bins using MCB8.

    Returns a :class:`PackingResult`; on success ``assignments`` maps each job
    id to the tuple of bin (node) indices assigned to its tasks in task-index
    order.
    """
    if not items:
        return PackingResult(success=True, assignments={}, bins_used=0)
    if num_bins <= 0:
        return PackingResult.failure()

    cpu_list, mem_list = _sorted_lists(items)
    bins: List[Bin] = []
    bin_index = 0

    while cpu_list or mem_list:
        if bin_index >= num_bins:
            return PackingResult.failure()
        bin_ = Bin(bin_index)
        bins.append(bin_)
        bin_index += 1

        # Seed the fresh node with the largest remaining item overall.
        seed_list = _pick_seed_list(cpu_list, mem_list)
        if seed_list is None:
            return PackingResult.failure()
        seed = seed_list.pop(0)
        if not bin_.fits(seed):
            # An item that does not fit in an empty node can never be placed.
            return PackingResult.failure()
        bin_.add(seed)

        # Fill the node, balancing the two resource dimensions.
        while True:
            if bin_.imbalance_favors_memory():
                primary, secondary = mem_list, cpu_list
            else:
                primary, secondary = cpu_list, mem_list
            index = _first_fitting(bin_, primary)
            if index is not None:
                bin_.add(primary.pop(index))
                continue
            index = _first_fitting(bin_, secondary)
            if index is not None:
                bin_.add(secondary.pop(index))
                continue
            break

    assignments = _collect_assignments(bins)
    if assignments is None:
        return PackingResult.failure()
    return PackingResult(
        success=True, assignments=assignments, bins_used=len(bins)
    )


def _pick_seed_list(
    cpu_list: List[PackingItem], mem_list: List[PackingItem]
) -> Optional[List[PackingItem]]:
    """List whose head is the largest remaining item (paper: arbitrary pick)."""
    if not cpu_list and not mem_list:
        return None
    if not cpu_list:
        return mem_list
    if not mem_list:
        return cpu_list
    if cpu_list[0].max_requirement >= mem_list[0].max_requirement:
        return cpu_list
    return mem_list


def _collect_assignments(
    bins: Sequence[Bin],
) -> Optional[Dict[int, Tuple[int, ...]]]:
    """Rebuild per-job assignments from filled bins."""
    per_job: Dict[int, Dict[int, int]] = {}
    for bin_ in bins:
        for item in bin_.items:
            per_job.setdefault(item.job_id, {})[item.task_index] = bin_.index
    assignments: Dict[int, Tuple[int, ...]] = {}
    for job_id, mapping in per_job.items():
        num_tasks = max(mapping) + 1
        if len(mapping) != num_tasks:
            return None
        assignments[job_id] = tuple(mapping[i] for i in range(num_tasks))
    return assignments
