"""MCB8 multi-capacity bin-packing heuristic (Leinberger et al., 1999).

This is the two-resource variant used by the paper (§III-B) and by the
earlier off-line work it builds on (Stillwell et al., "Resource allocation
using virtual clusters", CCGrid 2009).  The heuristic:

1. splits the items into two lists — items whose CPU requirement is at least
   their memory requirement, and items whose memory requirement is larger;
2. sorts each list by non-increasing order of the item's *largest*
   requirement;
3. fills nodes one at a time: the first item placed on a fresh node is the
   largest remaining item; subsequently the heuristic always tries to pick
   the first fitting item from the list that goes *against* the node's
   current imbalance (if free memory exceeds free CPU, pick a memory-heavy
   item, and vice versa), falling back to the other list, and moving to the
   next node when neither list has a fitting item;
4. succeeds when every item has been placed within the available nodes.

The goal of step 3 is to keep the consumption of both resources balanced on
every node so that neither dimension is exhausted while the other is still
underutilized.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import AllocationError
from ..obs.telemetry import timed_phase
from .item import Bin, PackingItem, PackingResult

__all__ = ["mcb8_pack"]

#: Per-bin ``(cpu, memory)`` capacities for heterogeneous packing.
BinCapacities = Optional[Sequence[Tuple[float, float]]]


def _check_capacities(capacities: BinCapacities, num_bins: int) -> None:
    if capacities is not None and len(capacities) != num_bins:
        raise AllocationError(
            f"capacities must list one (cpu, memory) pair per bin "
            f"({num_bins}), got {len(capacities)}"
        )


def _make_bin(index: int, capacities: BinCapacities) -> Bin:
    if capacities is None:
        return Bin(index)
    cpu_capacity, memory_capacity = capacities[index]
    return Bin(index, cpu_capacity=cpu_capacity, memory_capacity=memory_capacity)


def _open_until_fits(
    bins: List[Bin], item: PackingItem, num_bins: int, capacities: BinCapacities
) -> Optional[Bin]:
    """Open variable-capacity bins in index order until one hosts ``item``.

    Shared by the decreasing-fit packers: unlike unit bins (where a fresh
    bin either hosts the item or nothing ever will), a too-small bin is kept
    open — later, smaller items may still land in it.  Returns ``None`` when
    the bin budget runs out before a fitting bin appears.
    """
    while True:
        if len(bins) >= num_bins:
            return None
        fresh = _make_bin(len(bins), capacities)
        bins.append(fresh)
        if fresh.fits(item):
            return fresh


def _count_used_bins(bins: List[Bin]) -> int:
    """Bins that actually host items (capacity-skipped bins stay empty)."""
    return sum(1 for bin_ in bins if bin_.items)


def _pop_largest_fitting_by(
    bin_: Bin,
    cpu_list: List[PackingItem],
    mem_list: List[PackingItem],
    sort_value,
) -> Optional[PackingItem]:
    """Remove and return the largest remaining item that fits ``bin_``.

    The heterogeneous seeding rule: where unit bins seed with the globally
    largest item (which fits any empty unit bin or no bin at all), a
    variable-capacity bin seeds with the largest item *it can host* — a bin
    too small for every remaining item is simply skipped.  "Largest" is
    measured by ``sort_value`` (the list ordering key), with CPU-heavy items
    winning ties like the unit-bin seed rule.
    """
    cpu_index = _first_fitting(bin_, cpu_list)
    mem_index = _first_fitting(bin_, mem_list)
    if cpu_index is None and mem_index is None:
        return None
    if mem_index is None:
        return cpu_list.pop(cpu_index)
    if cpu_index is None:
        return mem_list.pop(mem_index)
    if sort_value(cpu_list[cpu_index]) >= sort_value(mem_list[mem_index]):
        return cpu_list.pop(cpu_index)
    return mem_list.pop(mem_index)


def _pop_largest_fitting(
    bin_: Bin, cpu_list: List[PackingItem], mem_list: List[PackingItem]
) -> Optional[PackingItem]:
    """MCB8's heterogeneous seed: largest fitting item by max requirement."""
    return _pop_largest_fitting_by(
        bin_, cpu_list, mem_list, lambda item: item.max_requirement
    )


def _sorted_lists(
    items: Sequence[PackingItem],
) -> Tuple[List[PackingItem], List[PackingItem]]:
    """Split and sort items as required by MCB8 (step 1 and 2)."""
    cpu_heavy = [item for item in items if item.cpu_dominant]
    mem_heavy = [item for item in items if not item.cpu_dominant]
    # Stable sort by decreasing max requirement; ties broken by job/task id so
    # that packing is fully deterministic.
    key = lambda item: (-item.max_requirement, item.job_id, item.task_index)
    cpu_heavy.sort(key=key)
    mem_heavy.sort(key=key)
    return cpu_heavy, mem_heavy


def _first_fitting(bin_: Bin, items: List[PackingItem]) -> Optional[int]:
    """Index of the first item of ``items`` that fits in ``bin_``, or None."""
    for index, item in enumerate(items):
        if bin_.fits(item):
            return index
    return None


@timed_phase("packing.mcb8")
def mcb8_pack(
    items: Sequence[PackingItem],
    num_bins: int,
    *,
    capacities: BinCapacities = None,
) -> PackingResult:
    """Pack ``items`` into at most ``num_bins`` bins using MCB8.

    With ``capacities=None`` (the default) every bin is the paper's 1.0 ×
    1.0 unit node and the algorithm is the original MCB8 exactly.  With a
    per-bin ``(cpu, memory)`` capacity list — heterogeneous platforms, down
    nodes as zero-capacity bins — bins are opened in index order and each
    fresh bin is seeded with the largest remaining item *it can host* (a
    bin too small for every remaining item is skipped); the balance-driven
    fill rule is unchanged.

    Returns a :class:`PackingResult`; on success ``assignments`` maps each job
    id to the tuple of bin (node) indices assigned to its tasks in task-index
    order.
    """
    if not items:
        return PackingResult(success=True, assignments={}, bins_used=0)
    if num_bins <= 0:
        return PackingResult.failure()
    _check_capacities(capacities, num_bins)

    cpu_list, mem_list = _sorted_lists(items)
    bins: List[Bin] = []
    bin_index = 0

    while cpu_list or mem_list:
        if bin_index >= num_bins:
            return PackingResult.failure()
        bin_ = _make_bin(bin_index, capacities)
        bin_index += 1

        if capacities is None:
            # Seed the fresh node with the largest remaining item overall.
            seed_list = _pick_seed_list(cpu_list, mem_list)
            if seed_list is None:
                return PackingResult.failure()
            seed = seed_list.pop(0)
            if not bin_.fits(seed):
                # An item that does not fit in an empty node can never be placed.
                return PackingResult.failure()
        else:
            seed = _pop_largest_fitting(bin_, cpu_list, mem_list)
            if seed is None:
                # Nothing fits this (possibly zero-capacity) bin; try the next.
                continue
        bins.append(bin_)
        bin_.add(seed)

        # Fill the node, balancing the two resource dimensions.
        while True:
            if bin_.imbalance_favors_memory():
                primary, secondary = mem_list, cpu_list
            else:
                primary, secondary = cpu_list, mem_list
            index = _first_fitting(bin_, primary)
            if index is not None:
                bin_.add(primary.pop(index))
                continue
            index = _first_fitting(bin_, secondary)
            if index is not None:
                bin_.add(secondary.pop(index))
                continue
            break

    assignments = _collect_assignments(bins)
    if assignments is None:
        return PackingResult.failure()
    return PackingResult(
        success=True, assignments=assignments, bins_used=len(bins)
    )


def _pick_seed_list(
    cpu_list: List[PackingItem], mem_list: List[PackingItem]
) -> Optional[List[PackingItem]]:
    """List whose head is the largest remaining item (paper: arbitrary pick)."""
    if not cpu_list and not mem_list:
        return None
    if not cpu_list:
        return mem_list
    if not mem_list:
        return cpu_list
    if cpu_list[0].max_requirement >= mem_list[0].max_requirement:
        return cpu_list
    return mem_list


def _collect_assignments(
    bins: Sequence[Bin],
) -> Optional[Dict[int, Tuple[int, ...]]]:
    """Rebuild per-job assignments from filled bins."""
    per_job: Dict[int, Dict[int, int]] = {}
    for bin_ in bins:
        for item in bin_.items:
            per_job.setdefault(item.job_id, {})[item.task_index] = bin_.index
    assignments: Dict[int, Tuple[int, ...]] = {}
    for job_id, mapping in per_job.items():
        num_tasks = max(mapping) + 1
        if len(mapping) != num_tasks:
            return None
        assignments[job_id] = tuple(mapping[i] for i in range(num_tasks))
    return assignments
