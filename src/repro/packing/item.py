"""Items and bins for two-dimensional (CPU × memory) vector packing.

The DFRS allocation problem reduces to vector packing once a target yield is
fixed (paper §III-B): every task becomes an item with a *CPU requirement*
(CPU need × yield) and a *memory requirement*, and every node is a bin with
capacity 1.0 in both dimensions.  Tasks of the same job are distinct items
that may land on the same or different bins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import AllocationError

__all__ = ["PackingItem", "Bin", "PackingResult", "job_items"]


@dataclass(frozen=True)
class PackingItem:
    """One task to be placed on a node.

    ``job_id``/``task_index`` identify the task; ``cpu`` and ``memory`` are
    the resource requirements as fractions of one node.
    """

    job_id: int
    task_index: int
    cpu: float
    memory: float

    def __post_init__(self) -> None:
        if self.cpu < 0 or self.memory < 0:
            raise AllocationError(
                f"item ({self.job_id}, {self.task_index}): requirements must be >= 0"
            )
        if self.memory > 1.0 + 1e-9:
            raise AllocationError(
                f"item ({self.job_id}, {self.task_index}): memory requirement "
                f"{self.memory} exceeds a full node"
            )

    @property
    def max_requirement(self) -> float:
        """Larger of the two requirements — MCB8's sort key."""
        return max(self.cpu, self.memory)

    @property
    def cpu_dominant(self) -> bool:
        """True when the CPU requirement is at least the memory requirement."""
        return self.cpu >= self.memory


class Bin:
    """One node being filled during packing.

    Bins default to the paper's 1.0 × 1.0 unit capacity; heterogeneous
    platforms (:mod:`repro.platform`) pass per-node ``(cpu, memory)``
    capacities instead, and a zero-capacity bin (a down node) fits nothing.
    """

    __slots__ = (
        "index",
        "cpu_used",
        "memory_used",
        "items",
        "epsilon",
        "cpu_capacity",
        "memory_capacity",
    )

    def __init__(
        self,
        index: int,
        epsilon: float = 1e-9,
        cpu_capacity: float = 1.0,
        memory_capacity: float = 1.0,
    ) -> None:
        self.index = index
        self.cpu_used = 0.0
        self.memory_used = 0.0
        self.items: List[PackingItem] = []
        self.epsilon = epsilon
        self.cpu_capacity = cpu_capacity
        self.memory_capacity = memory_capacity

    @property
    def cpu_free(self) -> float:
        return self.cpu_capacity - self.cpu_used

    @property
    def memory_free(self) -> float:
        return self.memory_capacity - self.memory_used

    def fits(self, item: PackingItem) -> bool:
        """True if the item fits in the remaining capacity of this bin."""
        return (
            self.cpu_used + item.cpu <= self.cpu_capacity + self.epsilon
            and self.memory_used + item.memory <= self.memory_capacity + self.epsilon
        )

    def add(self, item: PackingItem) -> None:
        """Place ``item`` in this bin (caller must have checked :meth:`fits`)."""
        if not self.fits(item):
            raise AllocationError(
                f"item ({item.job_id}, {item.task_index}) does not fit in bin "
                f"{self.index}"
            )
        self.cpu_used += item.cpu
        self.memory_used += item.memory
        self.items.append(item)

    def imbalance_favors_memory(self) -> bool:
        """True when free memory exceeds free CPU (pick a memory-heavy item)."""
        return self.memory_free > self.cpu_free


@dataclass
class PackingResult:
    """Outcome of a packing attempt."""

    success: bool
    #: For each job id, the node index assigned to each of its tasks, in task
    #: order.  Only meaningful when ``success`` is True.
    assignments: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    #: Number of bins that received at least one item.
    bins_used: int = 0

    @staticmethod
    def failure() -> "PackingResult":
        return PackingResult(success=False)


def job_items(
    job_id: int, num_tasks: int, cpu: float, memory: float
) -> List[PackingItem]:
    """Build the ``num_tasks`` identical items of one job."""
    if num_tasks < 1:
        raise AllocationError(f"job {job_id}: num_tasks must be >= 1")
    return [
        PackingItem(job_id=job_id, task_index=i, cpu=cpu, memory=memory)
        for i in range(num_tasks)
    ]


def assignments_from_bins(bins: Sequence[Bin]) -> Dict[int, List[Optional[int]]]:
    """Group bin contents back into per-job task assignments.

    Returns a mapping job id -> list indexed by task_index containing the bin
    index of each task (``None`` for unplaced tasks, which callers treat as a
    failure).
    """
    per_job: Dict[int, Dict[int, int]] = {}
    sizes: Dict[int, int] = {}
    for bin_ in bins:
        for item in bin_.items:
            per_job.setdefault(item.job_id, {})[item.task_index] = bin_.index
            sizes[item.job_id] = max(sizes.get(item.job_id, 0), item.task_index + 1)
    result: Dict[int, List[Optional[int]]] = {}
    for job_id, mapping in per_job.items():
        result[job_id] = [mapping.get(i) for i in range(sizes[job_id])]
    return result
