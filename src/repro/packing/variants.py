"""Alternative vector-packing heuristics and the packer registry.

The paper uses the two-resource MCB8 heuristic of Leinberger et al.; the
original MCB family differs in how items are ordered within each list (by
largest component for MCB8, by sum of components, by a single component, ...).
This module implements that family in a parameterised form, adds a
load-balancing worst-fit baseline, and exposes a registry used by the packing
ablation experiment and by scheduler construction (``dynmcb8`` can be asked to
pack with any registered heuristic).

Every packer shares the signature ``(items, num_bins) -> PackingResult`` of
:func:`repro.packing.mcb8.mcb8_pack`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..obs.telemetry import timed_phase
from .first_fit import best_fit_decreasing_pack, first_fit_decreasing_pack
from .item import Bin, PackingItem, PackingResult
from .mcb8 import (
    BinCapacities,
    _check_capacities,
    _collect_assignments,
    _count_used_bins,
    _make_bin,
    _open_until_fits,
    _pop_largest_fitting_by,
    mcb8_pack,
)

__all__ = [
    "mcb_family_pack",
    "worst_fit_decreasing_pack",
    "PACKER_NAMES",
    "get_packer",
]

#: Ordering keys of the MCB family.  Each maps an item to a sort value; items
#: are considered in non-increasing order of that value.
_ORDERINGS: Dict[str, Callable[[PackingItem], float]] = {
    # MCB8: order by the largest of the two requirements (the paper's choice).
    "max": lambda item: item.max_requirement,
    # MCB6-style: order by the sum of the requirements.
    "sum": lambda item: item.cpu + item.memory,
    # Single-dimension orderings (MCB2/MCB4-style degenerate variants).
    "cpu": lambda item: item.cpu,
    "memory": lambda item: item.memory,
    # Order by the imbalance between the two requirements.
    "difference": lambda item: abs(item.cpu - item.memory),
}


@timed_phase("packing.mcb_family")
def mcb_family_pack(
    items: Sequence[PackingItem],
    num_bins: int,
    *,
    ordering: str = "max",
    capacities: BinCapacities = None,
) -> PackingResult:
    """Multi-capacity balancing pack with a configurable item ordering.

    The algorithm is the same as :func:`repro.packing.mcb8.mcb8_pack` — split
    items into CPU-heavy and memory-heavy lists, fill one node at a time,
    always drawing from the list that goes against the node's current
    imbalance — but the two lists are sorted by the requested ``ordering``
    key instead of MCB8's largest-component key.
    """
    if ordering not in _ORDERINGS:
        raise ConfigurationError(
            f"unknown MCB ordering {ordering!r}; known orderings: "
            f"{', '.join(sorted(_ORDERINGS))}"
        )
    if not items:
        return PackingResult(success=True, assignments={}, bins_used=0)
    if num_bins <= 0:
        return PackingResult.failure()
    _check_capacities(capacities, num_bins)

    sort_value = _ORDERINGS[ordering]
    key = lambda item: (-sort_value(item), item.job_id, item.task_index)
    cpu_list = sorted((item for item in items if item.cpu_dominant), key=key)
    mem_list = sorted((item for item in items if not item.cpu_dominant), key=key)

    bins: List[Bin] = []
    bin_index = 0
    while cpu_list or mem_list:
        if bin_index >= num_bins:
            return PackingResult.failure()
        bin_ = _make_bin(bin_index, capacities)
        bin_index += 1

        if capacities is None:
            seed_list = _seed_list(cpu_list, mem_list, sort_value)
            seed = seed_list.pop(0)
            if not bin_.fits(seed):
                return PackingResult.failure()
        else:
            seed = _pop_largest_fitting_by(bin_, cpu_list, mem_list, sort_value)
            if seed is None:
                # Nothing fits this (possibly zero-capacity) bin; try the next.
                continue
        bins.append(bin_)
        bin_.add(seed)

        while True:
            if bin_.imbalance_favors_memory():
                primary, secondary = mem_list, cpu_list
            else:
                primary, secondary = cpu_list, mem_list
            index = _first_fitting_index(bin_, primary)
            if index is not None:
                bin_.add(primary.pop(index))
                continue
            index = _first_fitting_index(bin_, secondary)
            if index is not None:
                bin_.add(secondary.pop(index))
                continue
            break

    assignments = _collect_assignments(bins)
    if assignments is None:
        return PackingResult.failure()
    return PackingResult(success=True, assignments=assignments, bins_used=len(bins))


def _seed_list(
    cpu_list: List[PackingItem],
    mem_list: List[PackingItem],
    sort_value: Callable[[PackingItem], float],
) -> List[PackingItem]:
    """The list whose head has the larger ordering value."""
    if not cpu_list:
        return mem_list
    if not mem_list:
        return cpu_list
    if sort_value(cpu_list[0]) >= sort_value(mem_list[0]):
        return cpu_list
    return mem_list


def _first_fitting_index(bin_: Bin, items: List[PackingItem]) -> Optional[int]:
    for index, item in enumerate(items):
        if bin_.fits(item):
            return index
    return None


@timed_phase("packing.worst_fit_decreasing")
def worst_fit_decreasing_pack(
    items: Sequence[PackingItem],
    num_bins: int,
    *,
    capacities: BinCapacities = None,
) -> PackingResult:
    """Worst-fit decreasing: place each item in the *emptiest* open bin.

    "Emptiest" is measured by the remaining capacity in the item's dominant
    dimension.  This load-balancing flavour spreads items across nodes, which
    tends to use more bins than MCB8 but keeps per-node contention low; it is
    included as an ablation endpoint, not as a recommended policy.
    """
    if not items:
        return PackingResult(success=True, assignments={}, bins_used=0)
    if num_bins <= 0:
        return PackingResult.failure()
    _check_capacities(capacities, num_bins)

    ordered = sorted(
        items, key=lambda item: (-item.max_requirement, item.job_id, item.task_index)
    )
    bins: List[Bin] = []
    for item in ordered:
        best: Optional[Bin] = None
        best_slack = -1.0
        for bin_ in bins:
            if not bin_.fits(item):
                continue
            slack = bin_.cpu_free if item.cpu_dominant else bin_.memory_free
            if slack > best_slack:
                best_slack = slack
                best = bin_
        if best is None:
            if capacities is None:
                if len(bins) >= num_bins:
                    return PackingResult.failure()
                best = Bin(len(bins))
                bins.append(best)
                if not best.fits(item):
                    return PackingResult.failure()
            else:
                best = _open_until_fits(bins, item, num_bins, capacities)
                if best is None:
                    return PackingResult.failure()
        best.add(item)
    assignments = _collect_assignments(bins)
    if assignments is None:
        return PackingResult.failure()
    return PackingResult(
        success=True, assignments=assignments, bins_used=_count_used_bins(bins)
    )


#: Registry of named packers usable by the ablation experiments and by the
#: scheduler factory.  All share the ``(items, num_bins, *, capacities=None)
#: -> PackingResult`` signature (``capacities`` carries per-bin capacities on
#: heterogeneous platforms; None means the paper's unit bins).
_PACKERS: Dict[str, Callable[..., PackingResult]] = {
    "mcb8": mcb8_pack,
    "mcb-sum": lambda items, bins, **kw: mcb_family_pack(
        items, bins, ordering="sum", **kw
    ),
    "mcb-cpu": lambda items, bins, **kw: mcb_family_pack(
        items, bins, ordering="cpu", **kw
    ),
    "mcb-memory": lambda items, bins, **kw: mcb_family_pack(
        items, bins, ordering="memory", **kw
    ),
    "mcb-difference": lambda items, bins, **kw: mcb_family_pack(
        items, bins, ordering="difference", **kw
    ),
    "first-fit": first_fit_decreasing_pack,
    "best-fit": best_fit_decreasing_pack,
    "worst-fit": worst_fit_decreasing_pack,
}

#: Names accepted by :func:`get_packer`, in a stable order.
PACKER_NAMES: Tuple[str, ...] = tuple(sorted(_PACKERS))


def get_packer(name: str) -> Callable[..., PackingResult]:
    """Look up a packer by registry name."""
    key = name.strip().lower()
    if key not in _PACKERS:
        raise ConfigurationError(
            f"unknown packer {name!r}; known packers: {', '.join(PACKER_NAMES)}"
        )
    return _PACKERS[key]
